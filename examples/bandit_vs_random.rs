//! Table-3 style comparison: after the contextual bandit has trained through
//! the daily loop, evaluate its single-day recommendations against the
//! uniform-at-random baseline on identical jobs.
//!
//! ```text
//! cargo run --release --example bandit_vs_random
//! ```

use flighting::{FlightBudget, FlightingService};
use qo_advisor::{PipelineConfig, QoAdvisor, RecommendStrategy};
use scope_runtime::Cluster;
use scope_workload::{build_view, WorkloadConfig};

fn main() {
    let workload = WorkloadConfig {
        // qo-lint: allow(seed-salt) — top-level demo seed, not a derivation salt
        seed: 31_337,
        num_templates: 40,
        adhoc_per_day: 8,
        max_instances_per_day: 2,
        ..WorkloadConfig::default()
    };
    let mut sim = qo_advisor::ProductionSim::new(workload, PipelineConfig::default());
    sim.bootstrap_validation_model(3, 16)
        .expect("generated workloads compile on the default path");
    println!(
        "training the contextual bandit through {} daily loops...",
        20
    );
    for _ in 0..20 {
        sim.advance_day()
            .expect("generated workloads compile on the default path");
    }
    println!(
        "  CB absorbed {} reward events\n",
        sim.advisor.personalizer().events()
    );

    // Evaluation day: same jobs, no hints, both policies.
    let day = sim.day;
    let jobs = sim.workload.jobs_for_day(day);
    let view = build_view(
        &jobs,
        sim.advisor.caching_optimizer(),
        &Default::default(),
        sim.prod_executor(),
    )
    .expect("generated workloads compile on the default path");
    let cb_report = sim.advisor.run_day(&view, day).expect("pipeline day runs");

    let mut random = QoAdvisor::new(
        sim.optimizer().clone(),
        FlightingService::new(Cluster::preproduction(), FlightBudget::default()),
        PipelineConfig {
            strategy: RecommendStrategy::UniformRandom,
            ..PipelineConfig::default()
        },
    );
    let rd_report = random.run_day(&view, day).expect("pipeline day runs");

    println!("{:>18} {:>10} {:>10}", "", "Random", "CB");
    let row = |name: &str, a: usize, b: usize| println!("{name:>18} {a:>10} {b:>10}");
    row("lower cost", rd_report.lower_cost, cb_report.lower_cost);
    row("equal cost", rd_report.equal_cost, cb_report.equal_cost);
    row("higher cost", rd_report.higher_cost, cb_report.higher_cost);
    row(
        "recompile fail",
        rd_report.recompile_failures,
        cb_report.recompile_failures,
    );
    row("no-op chosen", rd_report.noop_chosen, cb_report.noop_chosen);
    println!(
        "{:>18} {:>10.3e} {:>10.3e}",
        "total est cost", rd_report.total_chosen_cost, cb_report.total_chosen_cost
    );
    println!(
        "\n(paper Table 3: Random 10.6% lower / 36.0% higher / 18.0% fail;\n \
          CB 34.5% lower / 19.5% higher / 13.9% fail; total cost 1.7e11 -> 1.0e9)"
    );
}

//! The §5.1 variance study in miniature: A/A-test a job ten times and watch
//! latency bounce while PNhours (and bytes moved) barely move — the
//! observation that made QO-Advisor optimize PNhours and regress its deltas
//! on DataRead/DataWritten.
//!
//! ```text
//! cargo run --release --example variance_study
//! ```

use flighting::aa::coefficient_of_variation;
use flighting::run_aa;
use scope_ir::stats::DualStats;
use scope_lang::{bind_script, Catalog, TableInfo};
use scope_opt::Optimizer;
use scope_runtime::Cluster;

fn main() {
    let mut catalog = Catalog::default();
    catalog.register(
        "logs/clicks",
        TableInfo {
            rows: DualStats::exact(4.0e8),
        },
    );
    let plan = bind_script(
        r#"
        clicks = EXTRACT user:int, page:int, dwell:float FROM "logs/clicks";
        good   = SELECT user, dwell FROM clicks WHERE dwell > 3;
        rpt    = SELECT user, SUM(dwell) AS total FROM good GROUP BY user;
        OUTPUT rpt TO "out/engagement";
    "#,
        &catalog,
    )
    .unwrap();
    let optimizer = Optimizer::default();
    let compiled = optimizer
        .compile(&plan, &optimizer.default_config())
        .unwrap();

    for (name, cluster) in [
        ("production", Cluster::default()),
        ("pre-production (flighting)", Cluster::preproduction()),
    ] {
        let runs = run_aa(&compiled.physical, &cluster, 77, 10);
        println!("== {name}: 10 A/A runs ==");
        println!(
            "{:>4} {:>12} {:>10} {:>14} {:>14}",
            "run", "latency_s", "pn_hours", "read_B", "written_B"
        );
        for (i, m) in runs.iter().enumerate() {
            println!(
                "{:>4} {:>12.1} {:>10.4} {:>14.3e} {:>14.3e}",
                i, m.latency_sec, m.pn_hours, m.data_read, m.data_written
            );
        }
        let lat: Vec<f64> = runs.iter().map(|m| m.latency_sec).collect();
        let pn: Vec<f64> = runs.iter().map(|m| m.pn_hours).collect();
        println!(
            "latency CV {:.1}%  |  PNhours CV {:.1}%  |  bytes CV 0.0% (invariant)\n",
            100.0 * coefficient_of_variation(&lat),
            100.0 * coefficient_of_variation(&pn)
        );
    }
    println!(
        "latency is a max statistic over noisy vertices (high variance); PNhours sums\n\
         CPU+IO where IO is fixed by bytes moved (low variance) — paper Figs 3 & 5."
    );
}

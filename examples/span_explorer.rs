//! Explore rule signatures and job spans across workload patterns: which of
//! the 256 optimizer rules fire, which are flippable, and how large the
//! action space of each job really is (paper §2.1: spans average ~10 with a
//! long tail).
//!
//! ```text
//! cargo run --release --example span_explorer
//! ```

use scope_lang::bind_script;
use scope_opt::{compute_span, Optimizer};
use scope_workload::{TemplateSpec, Workload, WorkloadConfig};

fn main() {
    let optimizer = Optimizer::default();
    let workload = Workload::new(WorkloadConfig {
        seed: 9,
        num_templates: 30,
        adhoc_per_day: 0,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    });

    println!(
        "{:>22} {:>6} {:>10} {:>6} {:>7} {:>9}",
        "pattern", "nodes", "signature", "span", "iters", "stopped"
    );
    let mut sizes = Vec::new();
    for job in workload.jobs_for_day(0) {
        let Ok(span) = compute_span(&optimizer, &job.plan, 6) else {
            continue;
        };
        let pattern = job.name.split('_').next().unwrap_or("?").to_string();
        println!(
            "{:>22} {:>6} {:>10} {:>6} {:>7} {:>9}",
            pattern,
            job.plan.len(),
            span.default_signature.len(),
            span.len(),
            span.iterations,
            span.stopped_on_failure,
        );
        sizes.push(span.len() as f64);
    }
    sizes.sort_by(|a, b| a.total_cmp(b));
    let mean = sizes.iter().sum::<f64>() / sizes.len().max(1) as f64;
    println!(
        "\nspan size: mean {:.1}, median {:.0}, max {:.0}  (paper: mean ~10, long tail)",
        mean,
        sizes.get(sizes.len() / 2).copied().unwrap_or(0.0),
        sizes.last().copied().unwrap_or(0.0)
    );

    // Drill into one template: name every rule in its span.
    let spec = TemplateSpec::generate(0xBEEF);
    let (script, catalog) = spec.instantiate(0, 0);
    let plan = bind_script(&script, &catalog).unwrap();
    let span = compute_span(&optimizer, &plan, 6).unwrap();
    println!(
        "\ntemplate {} ({}):",
        spec.base_name,
        spec.stats.pattern.name()
    );
    for rule in span.span.iter() {
        let def = optimizer.rules().rule(rule);
        let state = if optimizer.default_config().enabled(rule) {
            "on "
        } else {
            "off"
        };
        println!("  {rule} [{state}] {:28} {}", def.name, def.category.name());
    }
}

//! Quickstart: write a SCOPE-like script, compile it, inspect the plan, the
//! rule signature and the job span, then steer it with a single rule flip.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qo_advisor::{span_block, FeatureCache, FeatureCacheConfig};
use scope_ir::display::{explain_logical, explain_physical};
use scope_ir::stats::DualStats;
use scope_lang::{bind_script, Catalog, TableInfo};
use scope_opt::{
    compute_span, CacheConfig, CachingOptimizer, CompileBudget, DeltaConfig, Hint, HintSet,
    Optimizer, RuleConfig, RuleFlip,
};
use scope_runtime::{CachingExecutor, Cluster, ExecCacheConfig, Executor};

const SCRIPT: &str = r#"
    // Daily revenue rollup: filter the fact table, join the dimension,
    // aggregate by region, and keep the top spenders on the side.
    sales = EXTRACT user:int, item:int, spend:float FROM "store/sales";
    users = EXTRACT user:int, region:string FROM "store/users";
    big   = SELECT user, spend FROM sales WHERE spend > 100;
    j     = SELECT * FROM big AS b JOIN users AS u ON b.user == u.user;
    rpt   = SELECT region, SUM(spend) AS total, COUNT(*) AS n FROM j GROUP BY region;
    hot   = SELECT TOP 100 user, spend FROM big ORDER BY spend DESC;
    OUTPUT rpt TO "out/by_region";
    OUTPUT hot TO "out/top_spenders";
"#;

fn main() {
    // 1. Bind the script against a catalog (stale estimates included).
    let mut catalog = Catalog::default();
    catalog.register(
        "store/sales",
        TableInfo {
            rows: DualStats::new(3.0e8, 2.0e8),
        },
    );
    catalog.register(
        "store/users",
        TableInfo {
            rows: DualStats::exact(5.0e6),
        },
    );
    let plan = bind_script(SCRIPT, &catalog).expect("script binds");
    println!("== logical plan (a DAG: two outputs share the filtered scan) ==");
    println!("{}", explain_logical(&plan));

    // 2. Compile with the default rule configuration.
    let optimizer = Optimizer::default();
    let default = optimizer.default_config();
    let compiled = optimizer
        .compile(&plan, &default)
        .expect("default compiles");
    println!("== physical plan ==");
    println!("{}", explain_physical(&compiled.physical));
    println!("estimated cost: {:.3e}", compiled.est_cost);
    println!(
        "rule signature ({} rules): {:?}",
        compiled.signature.len(),
        compiled
            .signature
            .iter()
            .map(|r| optimizer.rules().rule(r).name.clone())
            .collect::<Vec<_>>()
    );

    // 2b. Anytime compilation: `QO_COMPILE_BUDGET=N` caps the task-queue
    // cascade at N exploration tasks and extracts the best plan from the
    // partial memo (unlimited by default). At unlimited budget the result
    // is byte-identical to `compile`; at a finite budget the compile may be
    // truncated but still yields a valid executable plan.
    let budget = std::env::var("QO_COMPILE_BUDGET").map_or_else(
        |_| CompileBudget::unlimited(),
        |value| {
            CompileBudget::parse(&value).unwrap_or_else(|e| {
                eprintln!("bad QO_COMPILE_BUDGET: {e}");
                std::process::exit(2);
            })
        },
    );
    let budgeted = optimizer
        .compile_budgeted(&plan, &default, budget)
        .expect("budgeted compile shares the default path's success");
    budgeted.compiled.physical.validate().expect("anytime plan");
    if budget.is_unlimited() {
        assert_eq!(budgeted.compiled.physical, compiled.physical);
    }
    println!(
        "anytime compile: {} tasks, objective {:.3e}{}",
        budgeted.tasks_executed,
        budgeted.objective,
        if budgeted.outcome.is_truncated() {
            " (truncated by budget)"
        } else {
            " (complete)"
        }
    );

    // 3. Compute the job span: every rule whose flip can change this plan.
    let span = compute_span(&optimizer, &plan, 6).expect("span");
    println!("\njob span ({} flippable rules):", span.len());
    for rule in span.span.iter() {
        let def = optimizer.rules().rule(rule);
        println!("  {rule}  {:24} [{}]", def.name, def.category.name());
    }

    // 3b. The contextual bandit describes this span to its model as a
    // co-occurrence feature block (pairs + triples of span rules, §3.2/§6).
    // The block is template-stable, so the daily pipeline memoizes it in a
    // span-feature cache; `QO_FEATURE_CACHE=off` disables the cache (on by
    // default) — the features are byte-identical either way.
    let fc = std::env::var("QO_FEATURE_CACHE").map_or_else(
        |_| FeatureCacheConfig::default(),
        |value| {
            FeatureCacheConfig::parse_switch(&value).unwrap_or_else(|e| {
                eprintln!("bad QO_FEATURE_CACHE: {e}");
                std::process::exit(2);
            })
        },
    );
    let block = match fc.enabled.then(|| FeatureCache::new(fc)) {
        Some(cache) => {
            let first = cache.span_block_for(plan.template_id(), &span, 6);
            // A recurrence of the template hits the cached block.
            let again = cache.span_block_for(plan.template_id(), &span, 6);
            assert_eq!(first.items(), again.items());
            assert_eq!(cache.stats().hits, 1);
            first
        }
        None => std::sync::Arc::new(span_block(&span, 6)),
    };
    println!(
        "\nspan co-occurrence block: {} features (span-feature cache {})",
        block.len(),
        if fc.enabled { "on" } else { "off" }
    );

    // 4. Price every span flip as ONE treatment slate against the default
    // configuration's shared base memo. `QO_DELTA=off` disables delta
    // compilation (on by default) — the results are byte-identical either
    // way, only throughput differs.
    let delta = std::env::var("QO_DELTA").map_or_else(
        |_| DeltaConfig::default(),
        |value| {
            DeltaConfig::parse_switch(&value).unwrap_or_else(|e| {
                eprintln!("bad QO_DELTA: {e}");
                std::process::exit(2);
            })
        },
    );
    let steering =
        CachingOptimizer::new(optimizer.clone(), CacheConfig::default()).with_delta(delta);
    let flips: Vec<RuleFlip> = span
        .span
        .iter()
        .map(|rule| RuleFlip {
            rule,
            enable: !default.enabled(rule),
        })
        .collect();
    let treatments: Vec<RuleConfig> = flips.iter().map(|f| default.with_flip(*f)).collect();
    println!(
        "\nsingle-flip recompilations (one slate, delta {}):",
        delta.enabled
    );
    let mut best: Option<(RuleFlip, f64)> = None;
    for (flip, result) in flips
        .iter()
        .zip(steering.compile_slate(&plan, &default, &treatments))
    {
        match result {
            Ok(c) => {
                let delta = c.est_cost / compiled.est_cost - 1.0;
                println!("  {flip}: est cost {:+.2}%", delta * 100.0);
                if delta < best.map_or(0.0, |(_, d)| d) {
                    best = Some((*flip, delta));
                }
            }
            Err(e) => println!("  {flip}: {e}"),
        }
    }
    let dstats = steering.delta_stats();
    println!(
        "slate resolution: {} pruned, {} delta, {} full ({} base build)",
        dstats.pruned, dstats.delta, dstats.full, dstats.base_builds
    );

    // 5. Execute default vs steered on the simulated cluster, through the
    // Executor trait. `QO_EXEC_CACHE=off` disables the execution-result
    // cache (on by default) — results are bit-identical either way.
    let exec_cache = std::env::var("QO_EXEC_CACHE").map_or_else(
        |_| ExecCacheConfig::default(),
        |value| {
            ExecCacheConfig::parse_switch(&value).unwrap_or_else(|e| {
                eprintln!("bad QO_EXEC_CACHE: {e}");
                std::process::exit(2);
            })
        },
    );
    let executor = CachingExecutor::with_config(Cluster::default(), exec_cache);
    let base = executor.execute(&compiled.physical, 42, 1);
    println!(
        "\ndefault run:  latency {:>7.1}s  PNhours {:>7.3}  vertices {:>4}  read {:.2e} B",
        base.latency_sec, base.pn_hours, base.vertices, base.data_read
    );
    if let Some((flip, delta)) = best {
        let steered = optimizer.compile(&plan, &default.with_flip(flip)).unwrap();
        let m = executor.execute(&steered.physical, 42, 1);
        println!(
            "steered run:  latency {:>7.1}s  PNhours {:>7.3}  vertices {:>4}  read {:.2e} B",
            m.latency_sec, m.pn_hours, m.vertices, m.data_read
        );
        println!(
            "best flip {flip} promised {:+.1}% est cost; delivered {:+.1}% PNhours",
            delta * 100.0,
            (m.pn_hours / base.pn_hours - 1.0) * 100.0
        );

        // 6. Package the flip as a SIS-style hint: future compilations of
        // this template pick it up automatically.
        let hints = HintSet::from_hints([Hint {
            template: plan.template_id(),
            flip,
        }]);
        let cfg = hints.config_for(plan.template_id(), &default);
        let rehinted = optimizer.compile(&plan, &cfg).unwrap();
        assert_eq!(rehinted.est_cost, steered.est_cost);
        println!(
            "hint stored for template {} and applied on recompile",
            plan.template_id()
        );
    } else {
        println!("no estimated-cost-improving flip in the span for this job");
    }
}

//! The paper's headline scenario end to end: a recurring production
//! workload, a validation-model bootstrap, and the QO-Advisor daily loop
//! publishing hints that steer future occurrences — with counterfactual
//! default runs quantifying the impact (Table 2 style).
//!
//! ```text
//! cargo run --release --example steered_workload
//! ```

use qo_advisor::{aggregate_impact, PipelineConfig, ProductionSim};
use scope_workload::WorkloadConfig;

fn main() {
    let workload = WorkloadConfig {
        // qo-lint: allow(seed-salt) — top-level demo seed, not a derivation salt
        seed: 7_2022,
        num_templates: 40,
        adhoc_per_day: 10,
        max_instances_per_day: 2,
        ..WorkloadConfig::default()
    };
    let mut sim = ProductionSim::new(workload, PipelineConfig::default());

    println!("bootstrapping the validation model from random flights...");
    let samples = sim
        .bootstrap_validation_model(5, 24)
        .expect("generated workloads compile on the default path");
    let model = sim.advisor.validation_model().expect("model fitted");
    println!(
        "  {} samples  ->  pn_delta = {:+.3} {:+.3}*data_read_delta {:+.3}*data_written_delta\n",
        samples.len(),
        model.intercept,
        model.w_read,
        model.w_written
    );

    println!(
        "{:>4} {:>6} {:>6} {:>7} {:>8} {:>7} {:>6} {:>6} {:>8}",
        "day", "jobs", "spans", "lower", "flighted", "valid", "hints", "live", "steered"
    );
    let mut all = Vec::new();
    for _ in 0..15 {
        let out = sim
            .advance_day()
            .expect("generated workloads compile on the default path");
        let r = &out.report;
        println!(
            "{:>4} {:>6} {:>6} {:>7} {:>8} {:>7} {:>6} {:>6} {:>8}",
            r.day,
            r.jobs_total,
            r.jobs_with_span,
            r.lower_cost,
            r.flighted,
            r.validated,
            r.hints_published,
            sim.advisor.sis().len(),
            out.comparisons.len(),
        );
        all.extend(out.comparisons);
    }

    let agg = aggregate_impact(&all);
    println!(
        "\n== aggregate impact on the {} hint-matched jobs (Table 2 analogue) ==",
        agg.jobs
    );
    println!("  PNhours:  {:+.1}%   (paper: -14.3%)", agg.pn_hours_pct);
    println!("  Latency:  {:+.1}%   (paper:  -8.9%)", agg.latency_pct);
    println!("  Vertices: {:+.1}%   (paper: -52.8%)", agg.vertices_pct);

    let improved = all.iter().filter(|c| c.pn_delta() < 0.0).count();
    if !all.is_empty() {
        println!(
            "  {} / {} steered jobs improved PNhours; worst case {:+.1}%",
            improved,
            all.len(),
            all.iter().map(|c| c.pn_delta()).fold(f64::MIN, f64::max) * 100.0
        );
    }
}

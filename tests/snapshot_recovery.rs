//! Crash-recovery equivalence of the durable steering state: a simulation
//! killed at *any* day boundary and restored from its snapshot must finish
//! the run byte-identical to one that was never interrupted — same daily
//! reports, same published SIS hint files.
//!
//! This is the contract that makes the snapshot a correctness feature
//! rather than an approximation: every durable component (bandit weights
//! and pending events, SIS version + installed hints, flighting batch
//! salt, validation model, explored set, regression-monitor baselines, day
//! counter, workload identity) round-trips exactly, and the warm span
//! cache either restores bit-identically or is dropped without changing
//! any steering output.
//!
//! Structure mirrors `tests/determinism.rs`: reports are compared after
//! `normalized` zeroes the telemetry-only fields (cache counters and
//! wall-clock timings — observability about the machinery, not steering
//! outputs), and hint files are compared as raw bytes.
//!
//! Legs:
//!   * exhaustive: the 20-day sticky-literal run (the regime with cross-day
//!     literal-epoch state), killed at *every* boundary 1..=19;
//!   * cross: fresh + sticky literals × caches on/off × 1/8 worker
//!     threads over a 6-day run, killed at every boundary 1..=5.

use qo_advisor::{
    CacheConfig, CacheCounters, CacheStats, DailyReport, DeltaConfig, DeltaStats, ExecCacheConfig,
    ExecCounters, FeatureCacheConfig, ParallelismConfig, PipelineConfig, ProductionSim,
    SnapshotPolicy, StageTimings,
};
use scope_workload::{LiteralPolicy, WorkloadConfig};
use sis::SisStore;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn workload() -> WorkloadConfig {
    // Same parameters as tests/determinism.rs: several hint files get
    // published, so the file comparison below is not vacuous.
    WorkloadConfig {
        seed: 99,
        num_templates: 24,
        adhoc_per_day: 3,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    }
}

fn sticky_workload() -> WorkloadConfig {
    WorkloadConfig {
        literals: LiteralPolicy::Sticky {
            redraw_every_days: 0,
        },
        ..workload()
    }
}

fn config_with(threads: Option<usize>, caches: bool) -> PipelineConfig {
    if caches {
        PipelineConfig {
            parallelism: ParallelismConfig { threads },
            ..PipelineConfig::default()
        }
    } else {
        PipelineConfig {
            parallelism: ParallelismConfig { threads },
            cache: CacheConfig::disabled(),
            exec_cache: ExecCacheConfig::disabled(),
            delta: DeltaConfig::disabled(),
            feature_cache: FeatureCacheConfig::disabled(),
            ..PipelineConfig::default()
        }
    }
}

/// Removes the test's temp tree on drop, so snapshot files and hint-file
/// directories do not accumulate in the system temp dir even when an
/// assertion fails.
struct TempTree(PathBuf);

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn normalized(report: &DailyReport) -> String {
    let mut report = report.clone();
    report.compile_cache = CacheCounters::default();
    report.exec_cache = ExecCounters::default();
    report.delta_compile = DeltaStats::default();
    report.feature_cache = CacheStats::default();
    report.timings = StageTimings::default();
    format!("{report:?}")
}

/// All published hint files in a SIS directory, name → raw bytes.
fn hint_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("sis dir exists")
        .map(|entry| {
            let entry = entry.expect("readable dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(entry.path()).expect("readable hint file");
            (name, bytes)
        })
        .collect()
}

fn fresh_sim(wl: &WorkloadConfig, config: &PipelineConfig, sis_dir: &Path) -> ProductionSim {
    ProductionSim::with_sis_store(
        wl.clone(),
        config.clone(),
        SisStore::at_dir(sis_dir).expect("create sis dir"),
    )
}

fn advance(sim: &mut ProductionSim) -> DailyReport {
    sim.advance_day()
        .expect("generated workloads compile on the default path")
        .report
}

/// Copy every regular file in `src` to `dst` (the SIS hint directories are
/// flat), so each kill boundary gets its own on-disk replica of the hint
/// files published up to that point.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create boundary sis dir");
    for entry in std::fs::read_dir(src).expect("source sis dir exists") {
        let entry = entry.expect("readable dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy hint file");
    }
}

/// The kill/restore equivalence check for one (workload, config) regime:
///
/// 1. run an uninterrupted `days`-day golden simulation;
/// 2. run a second "victim" simulation, writing a snapshot and replicating
///    the SIS directory at every day boundary (this also re-proves the
///    golden run's determinism: the victim's own reports must match);
/// 3. for every requested boundary `k`, build a *fresh* process-equivalent
///    simulation over boundary `k`'s SIS replica, restore its snapshot,
///    finish the remaining days, and require the resumed tail's reports
///    and the final hint-file tree to be byte-identical to the golden
///    run's.
fn assert_kill_restore_equivalence(
    label: &str,
    wl: &WorkloadConfig,
    config: &PipelineConfig,
    days: u32,
    boundaries: impl IntoIterator<Item = u32>,
    base: &Path,
) {
    // Golden: never interrupted.
    let golden_dir = base.join("golden");
    let mut golden = fresh_sim(wl, config, &golden_dir);
    let golden_reports: Vec<String> = (0..days)
        .map(|_| normalized(&advance(&mut golden)))
        .collect();
    let golden_files = hint_files(&golden_dir);
    assert!(
        !golden_files.is_empty(),
        "{label}: the golden simulation must publish at least one hint file, \
         or this test compares nothing"
    );

    // Victim: same run, but snapshotted (and its SIS directory replicated)
    // at every boundary, as if the process could die at any of them.
    let victim_dir = base.join("victim");
    let mut victim = fresh_sim(wl, config, &victim_dir);
    for day in 0..days {
        let report = normalized(&advance(&mut victim));
        assert_eq!(
            report, golden_reports[day as usize],
            "{label}: victim day-{day} report diverged from golden before any \
             kill — the regime itself is nondeterministic"
        );
        let boundary = day + 1;
        victim
            .snapshot(base.join(format!("boundary-{boundary}.qosnap")))
            .expect("snapshot write succeeds");
        copy_dir(&victim_dir, &base.join(format!("sis-{boundary}")));
    }
    assert_eq!(
        hint_files(&victim_dir),
        golden_files,
        "{label}: victim hint files diverged from golden before any kill"
    );

    for boundary in boundaries {
        assert!(
            (1..days).contains(&boundary),
            "{label}: boundary {boundary} outside 1..{days}"
        );
        let snap = base.join(format!("boundary-{boundary}.qosnap"));
        let sis_dir = base.join(format!("sis-{boundary}"));
        // A fresh simulation stands in for the restarted process: nothing
        // survives the kill except the snapshot file and the SIS directory.
        let mut resumed = fresh_sim(wl, config, &sis_dir);
        resumed.restore(&snap).expect("snapshot restores");
        assert_eq!(
            resumed.day, boundary,
            "{label}: restore at boundary {boundary} resumed at the wrong day"
        );
        for day in boundary..days {
            let report = normalized(&advance(&mut resumed));
            assert_eq!(
                report, golden_reports[day as usize],
                "{label}: day-{day} report diverged after kill/restore at \
                 boundary {boundary}"
            );
        }
        assert_eq!(
            hint_files(&sis_dir),
            golden_files,
            "{label}: final hint files diverged after kill/restore at \
             boundary {boundary}"
        );
    }
}

/// The headline leg: a 20-day sticky-literal production run (recurring
/// scripts, cross-day literal-epoch state, warm caches) killed at *every*
/// day boundary.
#[test]
fn sticky_20_day_run_survives_a_kill_at_every_boundary() {
    let base = TempTree(
        std::env::temp_dir().join(format!("qo-snapshot-exhaustive-{}", std::process::id())),
    );
    let _ = std::fs::remove_dir_all(&base.0);

    const DAYS: u32 = 20;
    assert_kill_restore_equivalence(
        "sticky/caches-on/serial",
        &sticky_workload(),
        &config_with(None, true),
        DAYS,
        1..DAYS,
        &base.0,
    );
}

/// The cross leg: fresh + sticky literals × caches on/off × 1/8 worker
/// threads, each killed at every boundary of a 6-day run. Shorter than the
/// headline leg so the full 8-regime cross stays cheap in debug builds.
#[test]
fn kill_restore_equivalence_across_literals_caches_and_threads() {
    let base =
        TempTree(std::env::temp_dir().join(format!("qo-snapshot-cross-{}", std::process::id())));
    let _ = std::fs::remove_dir_all(&base.0);

    const DAYS: u32 = 6;
    for (policy, wl) in [("fresh", workload()), ("sticky", sticky_workload())] {
        for caches in [true, false] {
            for threads in [1usize, 8] {
                let label = format!(
                    "{policy}/caches-{}/t{threads}",
                    if caches { "on" } else { "off" }
                );
                assert_kill_restore_equivalence(
                    &label,
                    &wl,
                    &config_with(Some(threads), caches),
                    DAYS,
                    1..DAYS,
                    &base.0.join(label.replace('/', "-")),
                );
            }
        }
    }
}

/// A `SnapshotPolicy` installed on the simulation is purely an operational
/// knob: it bills its wall-clock into `timings.snapshot_ns`, keeps the
/// snapshot file current at every boundary, and changes no steering output
/// (the normalized reports already proved that above — here we pin the
/// telemetry and the file's freshness).
#[test]
fn snapshot_policy_bills_timing_and_keeps_the_file_current() {
    let base =
        TempTree(std::env::temp_dir().join(format!("qo-snapshot-policy-{}", std::process::id())));
    let _ = std::fs::remove_dir_all(&base.0);
    std::fs::create_dir_all(&base.0).expect("create temp tree");

    let snap = base.0.join("state.qosnap");
    let mut sim = fresh_sim(
        &sticky_workload(),
        &config_with(None, true),
        &base.0.join("sis"),
    );
    sim.set_snapshot_policy(Some(SnapshotPolicy::every_day(&snap)));
    for day in 0..3u32 {
        let report = advance(&mut sim);
        assert!(
            report.timings.snapshot_ns > 0,
            "day {day}: an installed every-day policy must bill snapshot time"
        );
        // The file on disk is always the state at the *latest* boundary: a
        // fresh process restoring it resumes at the next day to run.
        let mut probe = fresh_sim(
            &sticky_workload(),
            &config_with(None, true),
            &base.0.join(format!("probe-sis-{day}")),
        );
        probe
            .restore(&snap)
            .expect("policy-written snapshot restores");
        assert_eq!(probe.day, day + 1, "snapshot file is stale after day {day}");
    }

    // Without a policy the telemetry stays zero.
    let mut bare = fresh_sim(
        &sticky_workload(),
        &config_with(None, true),
        &base.0.join("bare-sis"),
    );
    let report = advance(&mut bare);
    assert_eq!(
        report.timings.snapshot_ns, 0,
        "no policy installed: snapshot_ns must stay zero"
    );
}

//! End-to-end pipeline integration: the closed steering loop over a
//! multi-day workload, with the safety properties the paper deploys on.

use qo_advisor::{
    aggregate_impact, PipelineConfig, ProductionSim, RecommendStrategy, ValidationModel,
};
use scope_workload::WorkloadConfig;

fn workload(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        seed,
        num_templates: 16,
        adhoc_per_day: 4,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    }
}

#[test]
fn closed_loop_publishes_hints_and_improves_pnhours() {
    let mut sim = ProductionSim::new(workload(2024), PipelineConfig::default());
    sim.bootstrap_validation_model(4, 16).unwrap();
    let outcomes = sim.run(12).unwrap();

    let hints: usize = outcomes.iter().map(|o| o.report.hints_published).sum();
    let comparisons: Vec<_> = outcomes
        .iter()
        .flat_map(|o| o.comparisons.iter().copied())
        .collect();
    assert!(hints > 0, "the pipeline must find and validate some flips");
    assert!(
        !comparisons.is_empty(),
        "hints must match future recurring instances"
    );

    let agg = aggregate_impact(&comparisons);
    assert!(
        agg.pn_hours_pct < -2.0,
        "steered jobs must reduce aggregate PNhours, got {:+.1}%",
        agg.pn_hours_pct
    );
}

#[test]
fn validated_flips_rarely_regress_pnhours() {
    let mut sim = ProductionSim::new(workload(77), PipelineConfig::default());
    sim.bootstrap_validation_model(4, 16).unwrap();
    let outcomes = sim.run(12).unwrap();
    let comparisons: Vec<_> = outcomes
        .iter()
        .flat_map(|o| o.comparisons.iter().copied())
        .collect();
    if comparisons.is_empty() {
        return; // nothing validated on this seed; covered by other seeds
    }
    let regressed = comparisons.iter().filter(|c| c.pn_delta() > 0.15).count();
    assert!(
        (regressed as f64) < 0.15 * comparisons.len() as f64,
        "{regressed}/{} steered jobs regressed >15% PNhours",
        comparisons.len()
    );
}

#[test]
fn pipeline_without_validation_model_is_more_conservative_than_broken() {
    // Before the model is bootstrapped the pipeline falls back to the raw
    // flight measurement, which still gates on the -0.1 threshold.
    let mut sim = ProductionSim::new(workload(3), PipelineConfig::default());
    let out = sim.advance_day().unwrap();
    assert!(out.report.validated <= out.report.flight_success);
}

#[test]
fn daily_reports_are_internally_consistent_across_strategies() {
    for strategy in [
        RecommendStrategy::ContextualBandit,
        RecommendStrategy::UniformRandom,
    ] {
        let mut sim = ProductionSim::new(
            workload(11),
            PipelineConfig {
                strategy,
                ..PipelineConfig::default()
            },
        );
        let out = sim.advance_day().unwrap();
        let r = &out.report;
        assert_eq!(
            r.lower_cost + r.equal_cost + r.higher_cost + r.recompile_failures + r.noop_chosen,
            r.jobs_with_span,
            "classification partitions spanned jobs ({strategy:?})"
        );
        assert_eq!(
            r.flight_success + r.flight_timeout + r.flight_failure + r.flight_filtered,
            r.flighted
        );
        assert!(r.total_default_cost > 0.0);
    }
}

#[test]
fn hostile_validation_model_blocks_all_hints() {
    let mut sim = ProductionSim::new(workload(5), PipelineConfig::default());
    sim.advisor.set_validation_model(ValidationModel {
        intercept: 99.0,
        w_read: 0.0,
        w_written: 0.0,
    });
    let outcomes = sim.run(4).unwrap();
    let hints: usize = outcomes.iter().map(|o| o.report.hints_published).sum();
    assert_eq!(hints, 0, "nothing passes a model that predicts +9900%");
    assert_eq!(sim.advisor.sis().version(), 0);
}

#[test]
fn simulation_is_reproducible() {
    let run = || {
        let mut sim = ProductionSim::new(workload(123), PipelineConfig::default());
        sim.bootstrap_validation_model(2, 8).unwrap();
        let outcomes = sim.run(4).unwrap();
        outcomes
            .iter()
            .map(|o| {
                (
                    o.report.hints_published,
                    o.report.lower_cost,
                    o.comparisons.len(),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn sis_version_grows_monotonically_with_publishes() {
    let mut sim = ProductionSim::new(workload(2024), PipelineConfig::default());
    sim.bootstrap_validation_model(3, 16).unwrap();
    let mut last = 0;
    for _ in 0..8 {
        let out = sim.advance_day().unwrap();
        let v = out.report.sis_version;
        assert!(v >= last, "SIS version never rewinds");
        last = v;
    }
}

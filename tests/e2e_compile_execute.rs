//! Cross-crate integration: script → binder → optimizer → runtime, with
//! signatures, spans, and hints behaving consistently along the way.

use scope_ir::stats::DualStats;
use scope_lang::{bind_script, Catalog, TableInfo};
use scope_opt::{compute_span, Hint, HintSet, Optimizer, RuleFlip};
use scope_runtime::{execute, Cluster};

const SCRIPT: &str = r#"
    fact = EXTRACT k:int, m:int, v:float FROM "t/fact";
    dim  = EXTRACT k:int, g:int FROM "t/dim";
    flt  = SELECT k, m, v FROM fact WHERE v > 50;
    j    = SELECT * FROM flt AS f JOIN dim AS d ON f.k == d.k;
    rpt  = SELECT g, SUM(v) AS total FROM j GROUP BY g;
    OUTPUT rpt TO "out/rpt";
"#;

fn catalog() -> Catalog {
    let mut c = Catalog::default();
    c.register(
        "t/fact",
        TableInfo {
            rows: DualStats::new(2.0e8, 1.2e8),
        },
    );
    c.register(
        "t/dim",
        TableInfo {
            rows: DualStats::exact(1.0e6),
        },
    );
    c
}

#[test]
fn script_to_metrics_roundtrip() {
    let plan = bind_script(SCRIPT, &catalog()).unwrap();
    let optimizer = Optimizer::default();
    let compiled = optimizer
        .compile(&plan, &optimizer.default_config())
        .unwrap();
    compiled.physical.validate().unwrap();
    let metrics = execute(&compiled.physical, &Cluster::default(), 1, 1);
    assert!(metrics.latency_sec > 0.0);
    assert!(metrics.pn_hours > 0.0);
    assert!(metrics.data_read > 0.0, "scans read data");
    assert!(
        metrics.vertices > 1,
        "distributed job uses multiple vertices"
    );
    assert!(metrics.tokens <= metrics.vertices);
}

#[test]
fn every_span_flip_compiles_or_fails_deterministically() {
    let plan = bind_script(SCRIPT, &catalog()).unwrap();
    let optimizer = Optimizer::default();
    let default = optimizer.default_config();
    let span = compute_span(&optimizer, &plan, 6).unwrap();
    assert!(!span.is_empty());
    for rule in span.span.iter() {
        let flip = RuleFlip {
            rule,
            enable: !default.enabled(rule),
        };
        let cfg = default.with_flip(flip);
        let first = optimizer.compile(&plan, &cfg).map(|c| c.est_cost.to_bits());
        let second = optimizer.compile(&plan, &cfg).map(|c| c.est_cost.to_bits());
        assert_eq!(first.is_ok(), second.is_ok(), "{flip} determinism");
        if let (Ok(a), Ok(b)) = (first, second) {
            assert_eq!(a, b, "{flip} estimated cost must be bit-identical");
        }
    }
}

#[test]
fn steering_changes_runtime_profile_not_just_estimates() {
    let plan = bind_script(SCRIPT, &catalog()).unwrap();
    let optimizer = Optimizer::default();
    let default = optimizer.default_config();
    let base_compiled = optimizer.compile(&plan, &default).unwrap();
    let base = execute(&base_compiled.physical, &Cluster::deterministic(), 1, 1);
    let span = compute_span(&optimizer, &plan, 6).unwrap();

    let mut changed_runtime = 0;
    for rule in span.span.iter() {
        let flip = RuleFlip {
            rule,
            enable: !default.enabled(rule),
        };
        let Ok(c) = optimizer.compile(&plan, &default.with_flip(flip)) else {
            continue;
        };
        if c.physical == base_compiled.physical {
            continue;
        }
        let m = execute(&c.physical, &Cluster::deterministic(), 1, 1);
        if (m.pn_hours - base.pn_hours).abs() / base.pn_hours > 1e-6 {
            changed_runtime += 1;
        }
    }
    assert!(
        changed_runtime > 0,
        "some flip must change ground-truth PNhours"
    );
}

#[test]
fn hints_steer_future_compilations_of_the_template_only() {
    let plan = bind_script(SCRIPT, &catalog()).unwrap();
    let other = bind_script(
        r#"
        a = EXTRACT x:int, v:float FROM "t/other";
        f = SELECT x, v FROM a WHERE v > 1;
        OUTPUT f TO "out/o";
    "#,
        &catalog(),
    )
    .unwrap();
    let optimizer = Optimizer::default();
    let default = optimizer.default_config();
    let span = compute_span(&optimizer, &plan, 6).unwrap();
    let rule = span.span.iter().next().unwrap();
    let flip = RuleFlip {
        rule,
        enable: !default.enabled(rule),
    };
    let hints = HintSet::from_hints([Hint {
        template: plan.template_id(),
        flip,
    }]);

    let hinted_cfg = hints.config_for(plan.template_id(), &default);
    assert_ne!(hinted_cfg, default);
    let other_cfg = hints.config_for(other.template_id(), &default);
    assert_eq!(other_cfg, default, "hints are template-scoped");
}

#[test]
fn recurring_instances_share_template_and_span() {
    use scope_workload::TemplateSpec;
    let spec = TemplateSpec::generate(555);
    let optimizer = Optimizer::default();
    let (s1, c1) = spec.instantiate(0, 0);
    let (s2, c2) = spec.instantiate(9, 1);
    let p1 = bind_script(&s1, &c1).unwrap();
    let p2 = bind_script(&s2, &c2).unwrap();
    assert_eq!(p1.template_id(), p2.template_id());
    let span1 = compute_span(&optimizer, &p1, 6).unwrap();
    let span2 = compute_span(&optimizer, &p2, 6).unwrap();
    assert_eq!(span1.span, span2.span, "spans are template-stable");
}

#[test]
fn estimated_and_actual_costs_disagree_per_design() {
    // The q-error between estimated and actual rows must be non-trivial for
    // realistic templates (it is the premise of the whole paper).
    let plan = bind_script(SCRIPT, &catalog()).unwrap();
    let optimizer = Optimizer::default();
    let compiled = optimizer
        .compile(&plan, &optimizer.default_config())
        .unwrap();
    let mut max_q: f64 = 1.0;
    for id in compiled.physical.topo_order() {
        let s = compiled.physical.node(id).stats;
        if s.rows.actual > 1.0 {
            let q = (s.rows.estimated / s.rows.actual).max(s.rows.actual / s.rows.estimated);
            max_q = max_q.max(q);
        }
    }
    assert!(
        max_q > 1.2,
        "mis-estimation must exist (max q-error {max_q})"
    );
}

//! Integration tests for the §8 future-work extensions implemented on top of
//! the paper's pipeline: stateful skip-explored mode, hint reversion, and
//! the optimistic post-deployment monitoring loop.

use qo_advisor::{MonitorConfig, PipelineConfig, ProductionSim};
use scope_workload::WorkloadConfig;

fn workload(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        seed,
        num_templates: 14,
        adhoc_per_day: 3,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    }
}

#[test]
fn skip_explored_reduces_daily_work() {
    let mut sim = ProductionSim::new(
        workload(61),
        PipelineConfig {
            skip_explored: true,
            ..PipelineConfig::default()
        },
    );
    sim.bootstrap_validation_model(2, 10).unwrap();
    let first = sim.advance_day().unwrap();
    let later = sim.advance_day().unwrap();
    // Daily recurring templates flighted on the first day are skipped later
    // (day 2 schedules a different template subset, so only templates that
    // reappear can be skipped).
    assert!(
        later.report.skipped_explored > 0 || first.report.flighted == 0,
        "day2 skipped {} (day1 flighted {})",
        later.report.skipped_explored,
        first.report.flighted
    );
}

#[test]
fn default_mode_does_not_skip() {
    let mut sim = ProductionSim::new(workload(61), PipelineConfig::default());
    sim.bootstrap_validation_model(2, 10).unwrap();
    sim.advance_day().unwrap();
    let later = sim.advance_day().unwrap();
    assert_eq!(later.report.skipped_explored, 0);
}

#[test]
fn revert_hint_removes_sis_entry_and_bumps_version() {
    let mut sim = ProductionSim::new(workload(2024), PipelineConfig::default());
    sim.bootstrap_validation_model(4, 16).unwrap();
    // Run until some hint is live.
    let mut live_template = None;
    for _ in 0..12 {
        sim.advance_day().unwrap();
        if let Some(h) = sim.advisor.sis().snapshot().hints().first() {
            live_template = Some(h.template);
            break;
        }
    }
    let Some(template) = live_template else {
        return; // seed produced no hints; covered by other tests
    };
    let version_before = sim.advisor.sis().version();
    let len_before = sim.advisor.sis().len();
    assert!(sim.advisor.revert_hint(template).expect("revert publishes"));
    assert_eq!(sim.advisor.sis().len(), len_before - 1);
    assert!(sim.advisor.sis().version() > version_before);
    // Reverting again is a no-op.
    assert!(!sim.advisor.revert_hint(template).expect("revert publishes"));
}

#[test]
fn monitoring_loop_runs_and_never_reverts_healthy_hints_spuriously() {
    let mut with_monitor = ProductionSim::new(workload(2024), PipelineConfig::default())
        .with_monitoring(MonitorConfig::default());
    with_monitor.bootstrap_validation_model(4, 16).unwrap();
    let outcomes = with_monitor.run(12).unwrap();
    let reverted: usize = outcomes.iter().map(|o| o.reverted.len()).sum();
    let hinted_runs: usize = outcomes.iter().map(|o| o.comparisons.len()).sum();
    // Validated hints genuinely improve PNhours in this simulator, so the
    // monitor should intervene rarely relative to the hinted volume.
    assert!(
        reverted * 4 <= hinted_runs.max(4),
        "monitor reverted {reverted} of {hinted_runs} hinted runs"
    );
    // The monitor tracked baselines for recurring templates.
    assert!(with_monitor.monitor.as_ref().unwrap().tracked_templates() > 0);
}

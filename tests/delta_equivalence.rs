//! Slate-equivalence suite: delta treatment compilation must be
//! **byte-identical** to from-scratch compilation for every template ×
//! treatment of a seeded workload day — plans, estimated costs, signatures,
//! and errors (`RuleInstability` replays with the same rule) alike — and the
//! pruner must only ever skip flips that are provably no-ops on the plan.
//!
//! `tests/determinism.rs` proves the same property end-to-end through the
//! closed loop (delta on/off × threads × literal policies); this suite
//! proves it exhaustively at the compiler level, treatment by treatment,
//! where a divergence is attributable to one (plan, flip) pair.

use scope_opt::delta::PricedTreatment;
use scope_opt::{
    compute_span, BaseMemo, CacheConfig, CachingOptimizer, Compiler, DeltaCompiler, DeltaConfig,
    Optimizer, RuleConfig, RuleFlip,
};
use scope_workload::{Workload, WorkloadConfig};

fn seeded_day() -> (Optimizer, Vec<scope_workload::JobInstance>) {
    let optimizer = Optimizer::default();
    let workload = Workload::new(WorkloadConfig {
        seed: 2022,
        num_templates: 24,
        adhoc_per_day: 4,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    });
    (optimizer, workload.jobs_for_day(0))
}

/// The realistic slate for a job: one treatment per span rule (exactly what
/// recommendation prices), in span order.
fn span_slate(optimizer: &Optimizer, plan: &scope_ir::LogicalPlan) -> Vec<RuleConfig> {
    let default = optimizer.default_config();
    let Ok(span) = compute_span(optimizer, plan, 6) else {
        return Vec::new();
    };
    span.span
        .iter()
        .map(|rule| {
            default.with_flip(RuleFlip {
                rule,
                enable: !default.enabled(rule),
            })
        })
        .collect()
}

/// Every template × span treatment of the seeded day, priced through a
/// [`BaseMemo`], must match from-scratch compilation byte-for-byte —
/// successes and `RuleInstability` failures alike. Also asserts the pruner's
/// soundness claim directly: a pruned `Ok` is the base plan itself.
#[test]
fn every_template_treatment_is_byte_identical_and_pruner_is_sound() {
    let (optimizer, jobs) = seeded_day();
    let default = optimizer.default_config();
    let mut treatments_total = 0usize;
    let mut pruned = 0usize;
    let mut delta = 0usize;
    let mut full = 0usize;
    let mut failures_replayed = 0usize;
    for job in &jobs {
        let slate = span_slate(&optimizer, &job.plan);
        if slate.is_empty() {
            continue;
        }
        let base = BaseMemo::build(&optimizer, &job.plan, &default)
            .expect("generated workloads compile on the default path");
        for treatment in &slate {
            treatments_total += 1;
            let scratch = optimizer.compile(&job.plan, treatment);
            let priced = match base.price(&optimizer, treatment) {
                PricedTreatment::Pruned(result) => {
                    pruned += 1;
                    if let Ok(compiled) = &result {
                        // Pruner soundness: a pruned flip is a provable
                        // no-op — the treatment's plan IS the base plan.
                        assert_eq!(
                            compiled,
                            base.compiled(),
                            "pruned treatment of template {} must reuse the \
                             base compilation unchanged",
                            job.template
                        );
                    }
                    result
                }
                PricedTreatment::Delta(result) => {
                    delta += 1;
                    result
                }
                PricedTreatment::NeedsFull => {
                    full += 1;
                    optimizer.compile(&job.plan, treatment)
                }
            };
            if scratch.is_err() {
                failures_replayed += 1;
            }
            assert_eq!(
                priced, scratch,
                "template {} treatment diverged from from-scratch compile",
                job.template
            );
        }
    }
    assert!(
        treatments_total > 100,
        "the seeded day must produce a real slate corpus, got {treatments_total}"
    );
    assert!(pruned > 0, "some span flips must prune");
    assert!(delta > 0, "some span flips must delta-compile");
    assert!(
        failures_replayed > 0,
        "the corpus must include RuleInstability failures (≈15% of span \
         flips fail), or the error-replay path went untested"
    );
    assert!(
        full < treatments_total / 2,
        "full fallbacks must be the minority: {full} of {treatments_total} \
         ({pruned} pruned, {delta} delta)"
    );
}

/// The same corpus through the `Compiler`-facing slate API with cache and
/// delta in every combination: identical results everywhere, and the
/// delta-path counters actually move when delta is on.
#[test]
fn compile_slate_matches_per_treatment_compiles_in_every_configuration() {
    let (optimizer, jobs) = seeded_day();
    let default = optimizer.default_config();
    let variants = [
        (
            "cache+delta",
            CacheConfig::default(),
            DeltaConfig::default(),
        ),
        (
            "delta-only",
            CacheConfig::disabled(),
            DeltaConfig::default(),
        ),
        (
            "cache-only",
            CacheConfig::default(),
            DeltaConfig::disabled(),
        ),
    ];
    for (name, cache, delta) in variants {
        let caching = CachingOptimizer::new(optimizer.clone(), cache).with_delta(delta);
        for job in jobs.iter().take(8) {
            let slate = span_slate(&optimizer, &job.plan);
            if slate.is_empty() {
                continue;
            }
            let via_slate = caching.compile_slate(&job.plan, &default, &slate);
            assert_eq!(via_slate.len(), slate.len());
            for (treatment, result) in slate.iter().zip(&via_slate) {
                assert_eq!(
                    *result,
                    optimizer.compile(&job.plan, treatment),
                    "[{name}] slate result diverged for template {}",
                    job.template
                );
            }
            // Slates resolve from the cache on repeat — and stay identical.
            let repeat = caching.compile_slate(&job.plan, &default, &slate);
            assert_eq!(via_slate, repeat, "[{name}] repeat slate diverged");
        }
        if delta.enabled {
            let stats = caching.delta_stats();
            assert!(
                stats.treatments() > 0,
                "[{name}] delta compiler saw no treatments"
            );
            assert!(
                stats.base_builds > 0,
                "[{name}] delta compiler built no base memos"
            );
        } else {
            assert_eq!(caching.delta_stats(), Default::default());
        }
    }
}

/// The trait-default `compile_slate` (used by bare `Optimizer` callers such
/// as the experiment binaries) is the per-treatment loop.
#[test]
fn trait_default_compile_slate_is_per_treatment_compilation() {
    let (optimizer, jobs) = seeded_day();
    let default = optimizer.default_config();
    let job = &jobs[0];
    let slate = span_slate(&optimizer, &job.plan);
    let via_trait = Compiler::compile_slate(&optimizer, &job.plan, &default, &slate);
    for (treatment, result) in slate.iter().zip(&via_trait) {
        assert_eq!(*result, optimizer.compile(&job.plan, treatment));
    }
}

/// A `DeltaCompiler` shared across the day (the pipeline's shape: one
/// compiler, many jobs, many slates) builds each plan's base memo exactly
/// once and still matches from-scratch everywhere.
#[test]
fn shared_delta_compiler_amortizes_base_memos_across_slates() {
    let (optimizer, jobs) = seeded_day();
    let default = optimizer.default_config();
    let dc = DeltaCompiler::new(DeltaConfig::default());
    let mut plans_with_slates = 0usize;
    for job in jobs.iter().take(10) {
        let slate = span_slate(&optimizer, &job.plan);
        if slate.is_empty() {
            continue;
        }
        plans_with_slates += 1;
        // Price the slate twice: the second pass must be pure base reuse.
        let first = dc.compile_slate(&optimizer, &job.plan, &default, &slate);
        let second = dc.compile_slate(&optimizer, &job.plan, &default, &slate);
        assert_eq!(first, second);
        for (treatment, result) in slate.iter().zip(&first) {
            assert_eq!(*result, optimizer.compile(&job.plan, treatment));
        }
    }
    let stats = dc.stats();
    assert_eq!(
        stats.base_builds as usize, plans_with_slates,
        "one base memo per plan"
    );
    assert_eq!(
        stats.base_hits as usize, plans_with_slates,
        "the second slate of each plan reuses the cached base"
    );
}

//! End-to-end coverage of the WINDOW statement: parse, bind, optimize
//! (WindowImpl adds a hash exchange on the partition keys), and execute.

use scope_lang::{bind_script, parse_script, Catalog};
use scope_opt::Optimizer;
use scope_runtime::{execute, Cluster};

const SCRIPT: &str = r#"
    t = EXTRACT k:int, g:int, v:float FROM "data/t";
    f = SELECT k, g, v FROM t WHERE v > 10;
    w = WINDOW f PARTITION BY g AGGREGATE SUM(v) AS running, COUNT(*) AS n;
    OUTPUT w TO "out/w";
"#;

#[test]
fn window_statement_parses() {
    let script = parse_script(SCRIPT).unwrap();
    let stmt = script
        .statements
        .iter()
        .find_map(|s| match s {
            scope_lang::ast::Statement::Window {
                partition_by,
                funcs,
                ..
            } => Some((partition_by.len(), funcs.len())),
            _ => None,
        })
        .expect("window statement present");
    assert_eq!(stmt, (1, 2));
}

#[test]
fn window_binds_with_appended_columns() {
    let plan = bind_script(SCRIPT, &Catalog::default()).unwrap();
    plan.validate().unwrap();
    assert_eq!(plan.count_tag("Window"), 1);
    // Output schema = 3 input columns + 2 window aggregates.
    let schemas = plan.schemas();
    let window_node = plan
        .topo_order()
        .into_iter()
        .find(|id| plan.node(*id).op.tag() == "Window")
        .unwrap();
    assert_eq!(schemas[window_node.index()].len(), 5);
    assert_eq!(schemas[window_node.index()].index_of("running"), Some(3));
    assert_eq!(schemas[window_node.index()].index_of("n"), Some(4));
}

#[test]
fn window_compiles_and_executes() {
    let plan = bind_script(SCRIPT, &Catalog::default()).unwrap();
    let optimizer = Optimizer::default();
    let compiled = optimizer
        .compile(&plan, &optimizer.default_config())
        .unwrap();
    compiled.physical.validate().unwrap();
    assert!(
        compiled.physical.count_tag("WindowExec") >= 1,
        "window implemented"
    );
    assert!(
        compiled.physical.exchange_count() >= 1,
        "partitioned on the window keys"
    );
    let m = execute(&compiled.physical, &Cluster::default(), 3, 3);
    assert!(m.pn_hours > 0.0 && m.latency_sec > 0.0);
}

#[test]
fn window_rejects_unknown_aggregate_and_column() {
    let bad_func = r#"
        t = EXTRACT k:int FROM "d";
        w = WINDOW t PARTITION BY k AGGREGATE MEDIAN(k) AS m;
        OUTPUT w TO "o";
    "#;
    assert!(
        parse_script(bad_func).is_err(),
        "MEDIAN is not a known aggregate"
    );
    let bad_col = r#"
        t = EXTRACT k:int FROM "d";
        w = WINDOW t PARTITION BY nope AGGREGATE SUM(k) AS s;
        OUTPUT w TO "o";
    "#;
    let err = bind_script(bad_col, &Catalog::default()).unwrap_err();
    assert!(err.to_string().contains("unknown column"), "{err}");
}

//! Service-layer integration: flighting outcomes feeding the validation
//! model, SIS persistence across restarts, and counterfactual evaluation of
//! a trained bandit against its own log.

use flighting::{FlightBudget, FlightOutcome, FlightRequest, FlightingService};
use personalizer::{
    ips_estimate, snips_estimate, CbConfig, LoggedOutcome, Personalizer, RankRequest,
};
use qo_advisor::{ValidationModel, ValidationSample};
use scope_opt::{compute_span, Optimizer, RuleFlip};
use scope_runtime::Cluster;
use scope_workload::{Workload, WorkloadConfig};
use sis::{HintFile, SisStore};

#[test]
fn flighting_results_train_a_useful_validation_model() {
    let optimizer = Optimizer::default();
    let workload = Workload::new(WorkloadConfig {
        seed: 404,
        num_templates: 14,
        adhoc_per_day: 0,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    });
    let default = optimizer.default_config();
    let mut svc = FlightingService::new(Cluster::preproduction(), FlightBudget::default());
    let mut samples = Vec::new();
    for day in 0..6u32 {
        let mut requests = Vec::new();
        for job in workload.jobs_for_day(day) {
            let Ok(span) = compute_span(&optimizer, &job.plan, 6) else {
                continue;
            };
            let Some(rule) = span.span.iter().next() else {
                continue;
            };
            let flip = RuleFlip {
                rule,
                enable: !default.enabled(rule),
            };
            requests.push(FlightRequest {
                template: job.template,
                plan: job.plan,
                job_seed: job.job_seed,
                baseline: default,
                treatment: default.with_flip(flip),
            });
        }
        let (outcomes, tracker) =
            svc.flight_batch(&optimizer, &Cluster::preproduction(), &requests);
        assert!(tracker.used_seconds >= 0.0);
        samples.extend(
            outcomes
                .iter()
                .filter_map(|o| o.measurement())
                .map(|m| ValidationSample {
                    data_read_delta: m.data_read_delta(),
                    data_written_delta: m.data_written_delta(),
                    pn_delta: m.pn_delta(),
                }),
        );
    }
    assert!(
        samples.len() >= 10,
        "flighting produced {} samples",
        samples.len()
    );
    let model = ValidationModel::fit(&samples).expect("fits");
    // Data deltas must carry real signal: positive read coefficient and a
    // usable fit on its own training data.
    assert!(model.w_read > 0.1, "w_read {}", model.w_read);
    assert!(
        model.r_squared(&samples) > 0.3,
        "R2 {}",
        model.r_squared(&samples)
    );
}

#[test]
fn flight_outcomes_cover_the_paper_taxonomy() {
    let optimizer = Optimizer::default();
    let workload = Workload::new(WorkloadConfig {
        seed: 42,
        num_templates: 40,
        adhoc_per_day: 0,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    });
    let default = optimizer.default_config();
    let requests: Vec<FlightRequest> = workload
        .jobs_for_day(0)
        .into_iter()
        .map(|job| FlightRequest {
            template: job.template,
            plan: job.plan,
            job_seed: job.job_seed,
            baseline: default,
            treatment: default,
        })
        .collect();
    let mut svc = FlightingService::new(Cluster::preproduction(), FlightBudget::default());
    let (outcomes, _) = svc.flight_batch(&optimizer, &Cluster::preproduction(), &requests);
    let success = outcomes.iter().filter(|o| o.is_success()).count();
    let nonsuccess = outcomes.len() - success;
    assert!(success > outcomes.len() / 2, "most A/A flights succeed");
    assert!(nonsuccess > 0, "failures/filtered occur at realistic rates");
    // A/A measurement: identical bytes, noisy PN.
    for o in &outcomes {
        if let FlightOutcome::Success(m) = o {
            assert_eq!(m.baseline.data_read, m.treatment.data_read);
        }
    }
}

#[test]
fn sis_store_survives_restart_and_serves_hints() {
    let dir = std::env::temp_dir().join(format!("sis-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let template = scope_ir::TemplateId(0xFEED);
    let flip = RuleFlip {
        rule: scope_opt::RuleId(21),
        enable: true,
    };
    {
        let store = SisStore::at_dir(&dir).unwrap();
        store
            .publish(HintFile {
                version: 1,
                source_day: 3,
                hints: vec![scope_opt::Hint { template, flip }],
            })
            .unwrap();
    }
    let store = SisStore::at_dir(&dir).unwrap();
    assert_eq!(store.reload_latest().unwrap(), Some(1));
    let optimizer = Optimizer::default();
    let cfg = store.config_for(template, &optimizer.default_config());
    assert!(cfg.enabled(scope_opt::RuleId(21)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn counterfactual_estimators_rank_policies_correctly() {
    // Log a uniform policy over 3 actions where action 2 pays 1.0; compare
    // the IPS value of "always pick 2" vs "always pick 0".
    let svc = Personalizer::new(CbConfig::default());
    let actions: Vec<personalizer::FeatureVector> = (0..3)
        .map(|i| {
            let mut f = personalizer::FeatureVector::new();
            f.flag("a", &format!("act{i}"));
            f
        })
        .collect();
    let ctx = {
        let mut f = personalizer::FeatureVector::new();
        f.flag("c", "ctx");
        f
    };
    let mut log_good = Vec::new();
    let mut log_bad = Vec::new();
    for seed in 0..600u64 {
        let resp = svc.rank(&RankRequest {
            context: ctx.clone(),
            actions: actions.clone(),
            seed,
            log_uniform: true,
        });
        let reward = if resp.decision.chosen == 2 { 1.0 } else { 0.0 };
        svc.reward(resp.event_id, reward);
        log_good.push(LoggedOutcome {
            target_agrees: resp.decision.chosen == 2,
            logged_probability: resp.decision.probability,
            reward,
        });
        log_bad.push(LoggedOutcome {
            target_agrees: resp.decision.chosen == 0,
            logged_probability: resp.decision.probability,
            reward,
        });
    }
    assert!(ips_estimate(&log_good) > 0.8);
    assert!(ips_estimate(&log_bad) < 0.2);
    assert!(snips_estimate(&log_good) > snips_estimate(&log_bad));
    // And the bandit itself learned the good arm from the same log.
    let best = svc.best_action(&ctx, &actions);
    assert_eq!(best.chosen, 2);
}

//! Budget-equivalence suite for the task-queue Cascades engine
//! (`scope_opt::tasks`), in two halves:
//!
//! * **Engine equivalence** — at unlimited budget the explicit task-queue
//!   engine must be **byte-identical** to the retired recursive-descent
//!   engine ([`Optimizer::compile_recursive`], kept alive as the
//!   differential reference) for every template × span treatment of a
//!   seeded workload day: plans, estimated costs (to the bit), signatures,
//!   and errors (`RuleInstability` replays with the same rule) alike.
//!
//! * **Pipeline legs** — under a *finite* [`PipelineConfig::compile_budget`]
//!   the closed loop stays deterministic (byte-identical reports and hint
//!   files at 1/2/8 worker threads × caches on/off), and the budget never
//!   leaks into steering outputs: the pipeline budget governs only the
//!   measurement-path counterfactual compiles of
//!   `ProductionSim::finish_day`, so hint files — and every report field
//!   except the `compile_budget` shed counters themselves — are
//!   byte-identical to an unlimited run.
//!
//! `tests/determinism.rs` proves the cache/thread contract at unlimited
//! budget; `tests/fleet_determinism.rs` covers the fleet's separate
//! per-job stream budget ([`StreamConfig::compile_budget`]).

use qo_advisor::{
    BudgetStats, CacheConfig, CacheCounters, CacheStats, DailyReport, DeltaConfig, DeltaStats,
    ExecCacheConfig, ExecCounters, ParallelismConfig, PipelineConfig, ProductionSim, StageTimings,
};
use scope_opt::{compute_span, BudgetOutcome, CompileBudget, Optimizer, RuleConfig, RuleFlip};
use scope_workload::{Workload, WorkloadConfig};
use sis::SisStore;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Engine equivalence: task queue at unlimited budget vs recursive reference.
// ---------------------------------------------------------------------------

fn seeded_day() -> (Optimizer, Vec<scope_workload::JobInstance>) {
    let optimizer = Optimizer::default();
    let workload = Workload::new(WorkloadConfig {
        seed: 2022,
        num_templates: 24,
        adhoc_per_day: 4,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    });
    (optimizer, workload.jobs_for_day(0))
}

/// One treatment per span rule — exactly the slate recommendation prices.
fn span_slate(optimizer: &Optimizer, plan: &scope_ir::LogicalPlan) -> Vec<RuleConfig> {
    let default = optimizer.default_config();
    let Ok(span) = compute_span(optimizer, plan, 6) else {
        return Vec::new();
    };
    span.span
        .iter()
        .map(|rule| {
            default.with_flip(RuleFlip {
                rule,
                enable: !default.enabled(rule),
            })
        })
        .collect()
}

/// Every template × (default + span treatments) of the seeded day: the
/// task-queue engine at unlimited budget must match the recursive reference
/// engine byte-for-byte — successes (plan, cost bits, signature) and
/// `RuleInstability` failures (same rule, same error) alike. Also pins that
/// the production entry `Optimizer::compile` *is* the task-queue engine.
#[test]
fn every_template_and_treatment_matches_the_recursive_engine() {
    let (optimizer, jobs) = seeded_day();
    let default = optimizer.default_config();
    let mut treatments_total = 0usize;
    let mut failures_replayed = 0usize;
    for job in &jobs {
        let recursive = optimizer
            .compile_recursive(&job.plan, &default)
            .expect("generated workloads compile on the default path");
        let budgeted = optimizer
            .compile_budgeted(&job.plan, &default, CompileBudget::unlimited())
            .expect("unlimited budget compiles whatever the recursive engine compiles");
        assert_eq!(
            budgeted.outcome,
            BudgetOutcome::Complete,
            "an unlimited budget can never truncate (template {})",
            job.template
        );
        assert_eq!(
            budgeted.compiled, recursive,
            "template {} default compile diverged between engines",
            job.template
        );
        assert_eq!(
            budgeted.compiled.est_cost.to_bits(),
            recursive.est_cost.to_bits(),
            "template {} cost bits diverged between engines",
            job.template
        );
        assert_eq!(
            optimizer
                .compile(&job.plan, &default)
                .expect("production entry compiles"),
            recursive,
            "the production entry `compile` must be the task-queue engine \
             at unlimited budget (template {})",
            job.template
        );

        for treatment in &span_slate(&optimizer, &job.plan) {
            treatments_total += 1;
            let recursive = optimizer.compile_recursive(&job.plan, treatment);
            let via_tasks = match optimizer.compile_budgeted(
                &job.plan,
                treatment,
                CompileBudget::unlimited(),
            ) {
                Ok(b) => {
                    assert_eq!(
                        b.outcome,
                        BudgetOutcome::Complete,
                        "an unlimited budget can never truncate (template {})",
                        job.template
                    );
                    Ok(b.compiled)
                }
                Err(e) => Err(e),
            };
            if recursive.is_err() {
                failures_replayed += 1;
            }
            assert_eq!(
                via_tasks, recursive,
                "template {} treatment diverged between the task-queue and \
                 recursive engines",
                job.template
            );
        }
    }
    assert!(
        treatments_total > 100,
        "the seeded day must produce a real treatment corpus, got {treatments_total}"
    );
    assert!(
        failures_replayed > 0,
        "the corpus must include RuleInstability failures (≈15% of span \
         flips fail), or the error-equivalence leg went untested"
    );
}

// ---------------------------------------------------------------------------
// Pipeline legs: determinism and steering-invariance under a finite budget.
// ---------------------------------------------------------------------------

const DAYS: u32 = 3;

/// A budget tight enough to truncate essentially every counterfactual
/// default recompile of the workload below (their cascades run thousands of
/// exploration tasks).
const TIGHT_BUDGET: CompileBudget = CompileBudget::tasks(48);

fn workload() -> WorkloadConfig {
    // Same parameters as tests/determinism.rs: the 3-day run publishes
    // several hint files, so the file comparisons are not vacuous.
    WorkloadConfig {
        seed: 99,
        num_templates: 24,
        adhoc_per_day: 3,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    }
}

/// Removes the test's temp tree on drop, so hint-file directories do not
/// accumulate in the system temp dir even when an assertion fails.
struct TempTree(PathBuf);

impl TempTree {
    fn new(name: &str) -> Self {
        let root = std::env::temp_dir().join(format!("qo-budget-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        Self(root)
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run_sim(
    threads: Option<usize>,
    caches: bool,
    budget: CompileBudget,
    sis_dir: &Path,
) -> Vec<DailyReport> {
    let config = if caches {
        PipelineConfig {
            parallelism: ParallelismConfig { threads },
            compile_budget: budget,
            ..PipelineConfig::default()
        }
    } else {
        PipelineConfig {
            parallelism: ParallelismConfig { threads },
            compile_budget: budget,
            cache: CacheConfig::disabled(),
            exec_cache: ExecCacheConfig::disabled(),
            delta: DeltaConfig::disabled(),
            feature_cache: qo_advisor::FeatureCacheConfig::disabled(),
            ..PipelineConfig::default()
        }
    };
    let mut sim = ProductionSim::with_sis_store(
        workload(),
        config,
        SisStore::at_dir(sis_dir).expect("create sis dir"),
    );
    (0..DAYS)
        .map(|_| {
            sim.advance_day()
                .expect("generated workloads compile on the default path")
                .report
        })
        .collect()
}

/// Byte-level rendering with the telemetry-only fields zeroed. The
/// `compile_budget` shed counters are **deterministic** (only finite-budget
/// compiles are recorded, and the set of sheddable compiles is fixed by the
/// workload), so they stay in the comparison. `zero_budget` additionally
/// zeroes them — the cross-budget comparison, where the counters are the
/// one field a finite budget is *allowed* to change.
fn normalized(reports: &[DailyReport], zero_budget: bool) -> Vec<String> {
    reports
        .iter()
        .map(|report| {
            let mut report = report.clone();
            report.compile_cache = CacheCounters::default();
            report.exec_cache = ExecCounters::default();
            report.delta_compile = DeltaStats::default();
            report.feature_cache = CacheStats::default();
            report.timings = StageTimings::default();
            if zero_budget {
                report.compile_budget = BudgetStats::default();
            }
            format!("{report:?}")
        })
        .collect()
}

/// All published hint files in a SIS directory, name → raw bytes.
fn hint_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("sis dir exists")
        .map(|entry| {
            let entry = entry.expect("readable dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(entry.path()).expect("readable hint file");
            (name, bytes)
        })
        .collect()
}

/// The determinism matrix with the budget **on**: byte-identical reports
/// (shed counters included — truncated counterfactuals are part of the
/// contract, not telemetry) and hint files at 1/2/8 worker threads × caches
/// on/off, against a serial caches-off baseline.
#[test]
fn budgeted_runs_are_identical_across_threads_and_caches() {
    let tree = TempTree::new("determinism");
    let base_dir = tree.0.join("serial");
    let baseline_raw = run_sim(None, false, TIGHT_BUDGET, &base_dir);
    let baseline = normalized(&baseline_raw, false);
    let baseline_files = hint_files(&base_dir);
    assert!(
        !baseline_files.is_empty(),
        "the budgeted baseline must publish at least one hint file, \
         or this test compares nothing"
    );
    assert!(
        baseline_raw.iter().any(|r| r.compile_budget.truncated > 0),
        "the tight budget must actually shed counterfactual compiles: {:?}",
        baseline_raw[0].compile_budget
    );

    for threads in [1usize, 2, 8] {
        for caches in [true, false] {
            let dir = tree.0.join(format!("t{threads}-c{caches}"));
            let reports = normalized(&run_sim(Some(threads), caches, TIGHT_BUDGET, &dir), false);
            assert_eq!(
                reports, baseline,
                "budgeted daily reports diverged at {threads} worker \
                 threads, caches={caches}"
            );
            assert_eq!(
                hint_files(&dir),
                baseline_files,
                "budgeted SIS hint files diverged at {threads} worker \
                 threads, caches={caches}"
            );
        }
    }
}

/// Steering invariance: the pipeline budget sheds **only** measurement-path
/// counterfactual compiles, so against an unlimited run the hint files are
/// byte-identical and the reports differ in nothing but the shed counters
/// themselves. (The unlimited run records no budget outcomes at all —
/// unlimited compiles can never shed.)
#[test]
fn finite_pipeline_budget_never_touches_steering_outputs() {
    let tree = TempTree::new("invariance");
    let unlimited_dir = tree.0.join("unlimited");
    let budgeted_dir = tree.0.join("budgeted");
    let unlimited = run_sim(None, true, CompileBudget::unlimited(), &unlimited_dir);
    let budgeted = run_sim(None, true, TIGHT_BUDGET, &budgeted_dir);

    assert!(
        unlimited
            .iter()
            .all(|r| r.compile_budget == BudgetStats::default()),
        "an unlimited budget must record no shed outcomes: {:?}",
        unlimited[0].compile_budget
    );
    assert!(
        budgeted.iter().any(|r| r.compile_budget.truncated > 0),
        "the tight budget must actually shed, or the invariance claim is \
         vacuous: {:?}",
        budgeted[0].compile_budget
    );
    let files = hint_files(&budgeted_dir);
    assert!(
        !files.is_empty(),
        "the budgeted run must publish hint files"
    );
    assert_eq!(
        files,
        hint_files(&unlimited_dir),
        "a finite pipeline budget must never change published hints — it \
         sheds only counterfactual measurement compiles"
    );
    assert_eq!(
        normalized(&budgeted, true),
        normalized(&unlimited, true),
        "outside the shed counters, a finite pipeline budget must not \
         change a single report field"
    );
}

#[test]
fn compile_budget_defaults_to_unlimited() {
    assert!(PipelineConfig::default().compile_budget.is_unlimited());
    assert!(qo_advisor::fleet::StreamConfig::default()
        .compile_budget
        .is_unlimited());
    assert_eq!(CompileBudget::default(), CompileBudget::unlimited());
}

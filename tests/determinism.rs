//! Thread-count *and* cache invariance of the staged pipeline: the same
//! multi-day simulation run serially and at 1, 2, and 8 worker threads,
//! with the compile-result cache, the execution-result cache, and delta
//! slate compilation on or off, must produce byte-identical daily reports
//! and byte-identical published SIS hint files.
//!
//! This is the contract that makes all four knobs safe to deploy:
//! parallelism, the two caches, and delta compilation are purely throughput
//! knobs, never behavior knobs — compilation and execution are both
//! deterministic, a cache hit replays exactly what a recompile (or
//! re-execution) would have produced, and a delta-priced treatment is
//! byte-identical to a from-scratch compile, including `RuleInstability`
//! compile failures.
//!
//! The fields excluded from the byte comparison are the report's
//! `compile_cache` / `exec_cache` / `delta_compile` telemetry and the
//! per-stage wall-clock `timings`: they are *about* the machinery (all-zero
//! with the knob off, eviction-order- or clock-dependent otherwise), not
//! steering outputs. `normalized` zeroes them before formatting; everything
//! else must match to the byte.

use qo_advisor::ProductionSim;
use qo_advisor::{
    CacheConfig, CacheCounters, CacheStats, DailyReport, DeltaConfig, DeltaStats, ExecCacheConfig,
    ExecCounters, FeatureCacheConfig, ParallelismConfig, PipelineConfig, StageTimings,
};
use scope_workload::{LiteralPolicy, WorkloadConfig};
use sis::SisStore;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const DAYS: u32 = 3;

fn workload() -> WorkloadConfig {
    // Parameters chosen so the 3-day run publishes several hint files —
    // otherwise the file comparison below would be vacuous.
    WorkloadConfig {
        seed: 99,
        num_templates: 24,
        adhoc_per_day: 3,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    }
}

fn sticky_workload() -> WorkloadConfig {
    WorkloadConfig {
        literals: LiteralPolicy::Sticky {
            redraw_every_days: 0,
        },
        ..workload()
    }
}

/// Removes the test's temp tree on drop, so hint-file directories do not
/// accumulate in the system temp dir even when an assertion fails.
struct TempTree(PathBuf);

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Run a fresh DAYS-day simulation of `wl` under `config` publishing hint
/// files into `sis_dir`; returns every daily report.
fn run_sim_with(wl: WorkloadConfig, config: PipelineConfig, sis_dir: &Path) -> Vec<DailyReport> {
    let mut sim = ProductionSim::with_sis_store(
        wl,
        config,
        SisStore::at_dir(sis_dir).expect("create sis dir"),
    );
    (0..DAYS)
        .map(|_| {
            sim.advance_day()
                .expect("generated workloads compile on the default path")
                .report
        })
        .collect()
}

/// [`run_sim_with`] over the four original throughput knobs (span-feature
/// cache and batched ranking stay at their on-by-default settings).
fn run_sim_of(
    wl: WorkloadConfig,
    threads: Option<usize>,
    cache: CacheConfig,
    exec_cache: ExecCacheConfig,
    delta: DeltaConfig,
    sis_dir: &Path,
) -> Vec<DailyReport> {
    let config = PipelineConfig {
        parallelism: ParallelismConfig { threads },
        cache,
        exec_cache,
        delta,
        ..PipelineConfig::default()
    };
    run_sim_with(wl, config, sis_dir)
}

/// [`run_sim_of`] over the standard fresh-literal workload with the
/// execution cache and delta compilation at their defaults (on).
fn run_sim(threads: Option<usize>, cache: CacheConfig, sis_dir: &Path) -> Vec<DailyReport> {
    run_sim_of(
        workload(),
        threads,
        cache,
        ExecCacheConfig::default(),
        DeltaConfig::default(),
        sis_dir,
    )
}

/// Byte-level rendering of the reports with the telemetry-only fields
/// zeroed (observability about the machinery, not steering outputs — see
/// module docs).
fn normalized(reports: &[DailyReport]) -> Vec<String> {
    reports
        .iter()
        .map(|report| {
            let mut report = report.clone();
            report.compile_cache = CacheCounters::default();
            report.exec_cache = ExecCounters::default();
            report.delta_compile = DeltaStats::default();
            report.feature_cache = CacheStats::default();
            report.timings = StageTimings::default();
            format!("{report:?}")
        })
        .collect()
}

/// All published hint files in a SIS directory, name → raw bytes.
fn hint_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("sis dir exists")
        .map(|entry| {
            let entry = entry.expect("readable dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(entry.path()).expect("readable hint file");
            (name, bytes)
        })
        .collect()
}

#[test]
fn reports_and_hint_files_are_identical_at_any_thread_count() {
    let base =
        TempTree(std::env::temp_dir().join(format!("qo-determinism-{}", std::process::id())));
    let _ = std::fs::remove_dir_all(&base.0);

    let serial_dir = base.0.join("serial");
    let baseline_reports = normalized(&run_sim(None, CacheConfig::default(), &serial_dir));
    let baseline_files = hint_files(&serial_dir);

    assert!(
        !baseline_files.is_empty(),
        "the baseline simulation must publish at least one hint file, \
         or this test compares nothing"
    );

    for threads in [1usize, 2, 8] {
        let dir = base.0.join(format!("t{threads}"));
        let reports = normalized(&run_sim(Some(threads), CacheConfig::default(), &dir));
        assert_eq!(
            reports, baseline_reports,
            "daily reports diverged at {threads} worker threads"
        );
        assert_eq!(
            hint_files(&dir),
            baseline_files,
            "published SIS hint files diverged at {threads} worker threads"
        );
    }
}

#[test]
fn reports_and_hint_files_are_identical_with_cache_on_and_off() {
    let base =
        TempTree(std::env::temp_dir().join(format!("qo-cache-determinism-{}", std::process::id())));
    let _ = std::fs::remove_dir_all(&base.0);

    // Baseline: the pre-cache pipeline (serial, both caches and delta off).
    let off_dir = base.0.join("off");
    let off_reports_raw = run_sim_of(
        workload(),
        None,
        CacheConfig::disabled(),
        ExecCacheConfig::disabled(),
        DeltaConfig::disabled(),
        &off_dir,
    );
    let baseline_reports = normalized(&off_reports_raw);
    let baseline_files = hint_files(&off_dir);

    assert!(
        !baseline_files.is_empty(),
        "the cache-off simulation must publish at least one hint file"
    );
    assert!(
        off_reports_raw
            .iter()
            .all(|r| r.compile_cache == CacheCounters::default()
                && r.exec_cache == ExecCounters::default()),
        "disabled caches must report zero telemetry"
    );

    for threads in [1usize, 2, 8] {
        let dir = base.0.join(format!("cached-t{threads}"));
        let raw = run_sim(Some(threads), CacheConfig::default(), &dir);
        assert!(
            raw.iter().any(|r| r.compile_cache.hits() > 0),
            "the cached run must actually hit, or this test compares nothing"
        );
        assert_eq!(
            normalized(&raw),
            baseline_reports,
            "daily reports diverged between cache-off serial and cache-on \
             at {threads} worker threads"
        );
        assert_eq!(
            hint_files(&dir),
            baseline_files,
            "published SIS hint files diverged between cache-off serial \
             and cache-on at {threads} worker threads"
        );
    }
}

/// The execution cache alone, against the fully uncached baseline, under
/// fresh *and* sticky literals × 1/2/8 threads: byte-identical reports and
/// hint files everywhere. (The compile cache stays off on both sides so
/// this isolates the execution cache.)
#[test]
fn reports_and_hint_files_are_identical_with_exec_cache_on_and_off() {
    let base =
        TempTree(std::env::temp_dir().join(format!("qo-exec-determinism-{}", std::process::id())));
    let _ = std::fs::remove_dir_all(&base.0);

    for (policy, wl) in [("fresh", workload()), ("sticky", sticky_workload())] {
        let off_dir = base.0.join(format!("{policy}-off"));
        let baseline_reports = normalized(&run_sim_of(
            wl.clone(),
            None,
            CacheConfig::disabled(),
            ExecCacheConfig::disabled(),
            DeltaConfig::disabled(),
            &off_dir,
        ));
        let baseline_files = hint_files(&off_dir);
        assert!(
            !baseline_files.is_empty(),
            "the {policy} exec-cache-off simulation must publish at least one hint file"
        );

        for threads in [1usize, 2, 8] {
            let dir = base.0.join(format!("{policy}-exec-t{threads}"));
            let raw = run_sim_of(
                wl.clone(),
                Some(threads),
                CacheConfig::disabled(),
                ExecCacheConfig::default(),
                DeltaConfig::disabled(),
                &dir,
            );
            assert!(
                raw.iter()
                    .any(|r| r.exec_cache.total().graphs.lookups() > 0),
                "the exec-cached run must consult the cache, or this test \
                 compares nothing: {:?}",
                raw[0].exec_cache
            );
            assert_eq!(
                normalized(&raw),
                baseline_reports,
                "{policy} daily reports diverged between exec-cache-off serial \
                 and exec-cache-on at {threads} worker threads"
            );
            assert_eq!(
                hint_files(&dir),
                baseline_files,
                "{policy} SIS hint files diverged between exec-cache-off serial \
                 and exec-cache-on at {threads} worker threads"
            );
        }
    }
}

/// The regime the caches were built for: sticky literals make recurring
/// production scripts rebind identical plans across days, so the sim-wide
/// shared caches (production view building + all pipeline stages) are hot on
/// every warm day — and must *still* be invisible in every steering output,
/// at any thread count.
#[test]
fn sticky_literal_runs_are_identical_with_shared_cache_on_and_off() {
    let base = TempTree(
        std::env::temp_dir().join(format!("qo-sticky-determinism-{}", std::process::id())),
    );
    let _ = std::fs::remove_dir_all(&base.0);

    let off_dir = base.0.join("off");
    let off_reports = run_sim_of(
        sticky_workload(),
        None,
        CacheConfig::disabled(),
        ExecCacheConfig::disabled(),
        DeltaConfig::disabled(),
        &off_dir,
    );
    let baseline_reports = normalized(&off_reports);
    let baseline_files = hint_files(&off_dir);
    assert!(
        !baseline_files.is_empty(),
        "the sticky cache-off simulation must publish at least one hint file"
    );

    for threads in [1usize, 2, 8] {
        let dir = base.0.join(format!("sticky-t{threads}"));
        let raw = run_sim_of(
            sticky_workload(),
            Some(threads),
            CacheConfig::default(),
            ExecCacheConfig::default(),
            DeltaConfig::default(),
            &dir,
        );
        // Warm days rebind day-0 plans: production view compiles are
        // lookups, and the overall hit rate crosses 50% — the cross-day
        // regime PR 2's fresh-literal workload could never reach.
        for warm in &raw[1..] {
            assert!(
                warm.compile_cache.view_build.hits > 0,
                "warm-day view builds must hit the shared compile cache: {:?}",
                warm.compile_cache
            );
            assert!(
                warm.compile_cache.hit_rate() >= 0.5,
                "day {} compile hit rate {:.2} below 50%: {:?}",
                warm.day,
                warm.compile_cache.hit_rate(),
                warm.compile_cache
            );
            // Execution side: run seeds are fresh every day, so full-result
            // replays are rare in the closed loop — but warm-day production
            // runs re-execute day-0 plans, whose stage graphs are memoized.
            let view_graphs = warm.exec_cache.view_build.graphs;
            assert!(
                view_graphs.hits > 0,
                "warm-day view builds must reuse memoized stage graphs: {:?}",
                warm.exec_cache
            );
            assert!(
                warm.exec_cache.view_build.partial_hit_rate() >= 0.5,
                "day {} exec-cache warm-day floor: expected >=50% of view-build \
                 executions to reuse a stage graph or result, got {:.2} ({:?})",
                warm.day,
                warm.exec_cache.view_build.partial_hit_rate(),
                warm.exec_cache
            );
        }
        assert_eq!(
            normalized(&raw),
            baseline_reports,
            "sticky daily reports diverged between cache-off serial and \
             cache-on at {threads} worker threads"
        );
        assert_eq!(
            hint_files(&dir),
            baseline_files,
            "sticky SIS hint files diverged between cache-off serial and \
             cache-on at {threads} worker threads"
        );
    }
}

/// Delta slate compilation alone, against the fully uncached baseline,
/// under fresh *and* sticky literals × 1/2/8 threads: byte-identical
/// reports and hint files everywhere. (Both result caches stay off on both
/// sides so this isolates delta compilation — every delta- or prune-priced
/// treatment must replay exactly what a from-scratch compile would have
/// produced, `RuleInstability` failures included.)
#[test]
fn reports_and_hint_files_are_identical_with_delta_on_and_off() {
    let base =
        TempTree(std::env::temp_dir().join(format!("qo-delta-determinism-{}", std::process::id())));
    let _ = std::fs::remove_dir_all(&base.0);

    for (policy, wl) in [("fresh", workload()), ("sticky", sticky_workload())] {
        let off_dir = base.0.join(format!("{policy}-off"));
        let baseline_reports = normalized(&run_sim_of(
            wl.clone(),
            None,
            CacheConfig::disabled(),
            ExecCacheConfig::disabled(),
            DeltaConfig::disabled(),
            &off_dir,
        ));
        let baseline_files = hint_files(&off_dir);
        assert!(
            !baseline_files.is_empty(),
            "the {policy} delta-off simulation must publish at least one hint file"
        );

        for threads in [1usize, 2, 8] {
            let dir = base.0.join(format!("{policy}-delta-t{threads}"));
            let raw = run_sim_of(
                wl.clone(),
                Some(threads),
                CacheConfig::disabled(),
                ExecCacheConfig::disabled(),
                DeltaConfig::default(),
                &dir,
            );
            assert!(
                raw.iter().any(|r| r.delta_compile.treatments() > 0),
                "the delta run must actually price slates, or this test \
                 compares nothing: {:?}",
                raw[0].delta_compile
            );
            assert!(
                raw.iter()
                    .any(|r| r.delta_compile.pruned + r.delta_compile.delta > 0),
                "some treatments must resolve without a from-scratch \
                 compile: {:?}",
                raw[0].delta_compile
            );
            assert_eq!(
                normalized(&raw),
                baseline_reports,
                "{policy} daily reports diverged between delta-off serial \
                 and delta-on at {threads} worker threads"
            );
            assert_eq!(
                hint_files(&dir),
                baseline_files,
                "{policy} SIS hint files diverged between delta-off serial \
                 and delta-on at {threads} worker threads"
            );
        }
    }
}

/// PR 6's two recommend-path knobs — the span-feature cache and batched
/// sparse rank scoring — against the both-off baseline, under fresh *and*
/// sticky literals × 1/2/8 threads: byte-identical reports and hint files
/// everywhere. A cached span block must equal a rebuilt one and a batched
/// CSR scoring pass must equal the per-action dot products *to the bit*, or
/// the bandit's decisions (and with them everything downstream) drift.
#[test]
fn reports_and_hint_files_are_identical_with_feature_cache_and_batch_rank_on_and_off() {
    let base = TempTree(
        std::env::temp_dir().join(format!("qo-feature-determinism-{}", std::process::id())),
    );
    let _ = std::fs::remove_dir_all(&base.0);

    let config_with = |threads: Option<usize>, fc: bool, br: bool| {
        let mut config = PipelineConfig {
            parallelism: ParallelismConfig { threads },
            feature_cache: if fc {
                FeatureCacheConfig::default()
            } else {
                FeatureCacheConfig::disabled()
            },
            ..PipelineConfig::default()
        };
        config.cb.batch_rank = br;
        config
    };

    for (policy, wl) in [("fresh", workload()), ("sticky", sticky_workload())] {
        // Baseline: the pre-PR-6 recommend path (serial, both knobs off).
        let off_dir = base.0.join(format!("{policy}-off"));
        let off_raw = run_sim_with(wl.clone(), config_with(None, false, false), &off_dir);
        let baseline_reports = normalized(&off_raw);
        let baseline_files = hint_files(&off_dir);
        assert!(
            !baseline_files.is_empty(),
            "the {policy} both-off simulation must publish at least one hint file"
        );
        assert!(
            off_raw
                .iter()
                .all(|r| r.feature_cache == CacheStats::default()),
            "a disabled span-feature cache must report zero telemetry"
        );

        for threads in [1usize, 2, 8] {
            for (fc, br) in [(true, true), (true, false), (false, true)] {
                let dir = base.0.join(format!("{policy}-fc{fc}-br{br}-t{threads}"));
                let raw = run_sim_with(wl.clone(), config_with(Some(threads), fc, br), &dir);
                if fc {
                    assert!(
                        raw.iter().any(|r| r.feature_cache.hits > 0),
                        "the feature-cached run must actually hit, or this \
                         test compares nothing: {:?}",
                        raw[0].feature_cache
                    );
                }
                assert_eq!(
                    normalized(&raw),
                    baseline_reports,
                    "{policy} daily reports diverged from the both-off serial \
                     baseline at feature_cache={fc} batch_rank={br} \
                     {threads} worker threads"
                );
                assert_eq!(
                    hint_files(&dir),
                    baseline_files,
                    "{policy} SIS hint files diverged from the both-off serial \
                     baseline at feature_cache={fc} batch_rank={br} \
                     {threads} worker threads"
                );
            }
        }
    }
}

#[test]
fn parallel_config_default_is_serial() {
    assert_eq!(
        PipelineConfig::default().parallelism,
        ParallelismConfig::serial()
    );
    assert_eq!(ParallelismConfig::default().threads, None);
    assert_eq!(ParallelismConfig::with_threads(4).threads, Some(4));
}

#[test]
fn cache_configs_default_to_enabled() {
    assert_eq!(PipelineConfig::default().cache, CacheConfig::default());
    assert!(CacheConfig::default().enabled);
    assert!(!CacheConfig::disabled().enabled);
    assert_eq!(
        PipelineConfig::default().exec_cache,
        ExecCacheConfig::default()
    );
    assert!(ExecCacheConfig::default().enabled);
    assert!(!ExecCacheConfig::disabled().enabled);
    assert_eq!(PipelineConfig::default().delta, DeltaConfig::default());
    assert!(DeltaConfig::default().enabled);
    assert!(!DeltaConfig::disabled().enabled);
    assert_eq!(
        PipelineConfig::default().feature_cache,
        FeatureCacheConfig::default()
    );
    assert!(FeatureCacheConfig::default().enabled);
    assert!(!FeatureCacheConfig::disabled().enabled);
    assert!(
        PipelineConfig::default().cb.batch_rank,
        "batched rank scoring is the default path"
    );
}

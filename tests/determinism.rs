//! Thread-count invariance of the staged pipeline: the same multi-day
//! simulation run serially and at 1, 2, and 8 worker threads must produce
//! byte-identical daily reports and byte-identical published SIS hint files.
//!
//! This is the contract that makes the parallel Feature Generation /
//! Recompilation fan-outs safe to deploy: parallelism is purely a throughput
//! knob, never a behavior knob (the paper's flighting and hint pipeline is
//! reproducible by construction; see ISSUE/ROADMAP).

use qo_advisor::{ParallelismConfig, PipelineConfig, ProductionSim};
use scope_workload::WorkloadConfig;
use sis::SisStore;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const DAYS: u32 = 3;

fn workload() -> WorkloadConfig {
    // Parameters chosen so the 3-day run publishes several hint files —
    // otherwise the file comparison below would be vacuous.
    WorkloadConfig {
        seed: 99,
        num_templates: 24,
        adhoc_per_day: 3,
        max_instances_per_day: 1,
    }
}

/// Removes the test's temp tree on drop, so hint-file directories do not
/// accumulate in the system temp dir even when an assertion fails.
struct TempTree(PathBuf);

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Run a fresh DAYS-day simulation publishing hint files into `sis_dir`;
/// returns the Debug rendering of every daily report (a byte-level summary
/// of all counters and cost totals).
fn run_sim(threads: Option<usize>, sis_dir: &Path) -> Vec<String> {
    let config = PipelineConfig {
        parallelism: ParallelismConfig { threads },
        ..PipelineConfig::default()
    };
    let mut sim = ProductionSim::with_sis_store(
        workload(),
        config,
        SisStore::at_dir(sis_dir).expect("create sis dir"),
    );
    (0..DAYS)
        .map(|_| format!("{:?}", sim.advance_day().report))
        .collect()
}

/// All published hint files in a SIS directory, name → raw bytes.
fn hint_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("sis dir exists")
        .map(|entry| {
            let entry = entry.expect("readable dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(entry.path()).expect("readable hint file");
            (name, bytes)
        })
        .collect()
}

#[test]
fn reports_and_hint_files_are_identical_at_any_thread_count() {
    let base =
        TempTree(std::env::temp_dir().join(format!("qo-determinism-{}", std::process::id())));
    let _ = std::fs::remove_dir_all(&base.0);

    let serial_dir = base.0.join("serial");
    let baseline_reports = run_sim(None, &serial_dir);
    let baseline_files = hint_files(&serial_dir);

    assert!(
        !baseline_files.is_empty(),
        "the baseline simulation must publish at least one hint file, \
         or this test compares nothing"
    );

    for threads in [1usize, 2, 8] {
        let dir = base.0.join(format!("t{threads}"));
        let reports = run_sim(Some(threads), &dir);
        assert_eq!(
            reports, baseline_reports,
            "daily reports diverged at {threads} worker threads"
        );
        assert_eq!(
            hint_files(&dir),
            baseline_files,
            "published SIS hint files diverged at {threads} worker threads"
        );
    }
}

#[test]
fn parallel_config_default_is_serial() {
    assert_eq!(
        PipelineConfig::default().parallelism,
        ParallelismConfig::serial()
    );
    assert_eq!(ParallelismConfig::default().threads, None);
    assert_eq!(ParallelismConfig::with_threads(4).threads, Some(4));
}

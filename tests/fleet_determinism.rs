//! Tenant isolation of the multi-tenant fleet: every tenant inside a
//! [`qo_advisor::fleet::Fleet`] — shared process-wide caches, streaming
//! worker pool, bounded arrival queue — must produce byte-identical daily
//! reports and byte-identical published SIS hint files to the same workload
//! run alone in a single-tenant [`ProductionSim`].
//!
//! This is the contract that makes shared-cache tenancy deployable: the
//! shared compile / execution / delta-base / span-feature caches are keyed
//! on tenant-invariant plan identities, so cross-tenant sharing changes hit
//! rates and wall clocks, never steering outputs. The streaming pipeline
//! (worker count, queue capacity) is likewise a pure throughput knob.
//!
//! Structure mirrors `tests/determinism.rs` and `tests/snapshot_recovery.rs`:
//! reports are compared after `normalized` zeroes the telemetry-only fields,
//! hint files as raw bytes.
//!
//! Legs:
//!   * fleet-vs-isolated: overlapping and disjoint tenants × shared/private
//!     caches × 1/8 stream workers against independent single-tenant sims;
//!   * mid-run kill/restore: per-tenant snapshots taken mid-fleet-run
//!     restore into a fresh fleet and finish byte-identical (extends the
//!     PR 8 crash-recovery harness to the fleet);
//!   * restore billing: a day resumed from [`ProductionSim::restore`]
//!     carries the restore's wall cost in `timings.restore_ns` (and only
//!     that day does);
//!   * serving bar: overlapping tenants' shared caches lift the lifetime
//!     compile+feature hit rate ≥ 1.2x over isolated per-tenant caches.

use qo_advisor::fleet::{
    disjoint_workloads, overlapping_workloads, Fleet, FleetConfig, StreamConfig,
};
use qo_advisor::{
    CacheConfig, CacheCounters, CacheStats, CompileBudget, DailyReport, DeltaConfig, DeltaStats,
    ExecCacheConfig, ExecCounters, FeatureCacheConfig, PipelineConfig, ProductionSim, StageTimings,
};
use scope_workload::WorkloadConfig;
use sis::SisStore;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const DAYS: u32 = 3;
const TENANTS: usize = 3;

fn workload() -> WorkloadConfig {
    // Same parameters as tests/determinism.rs: several hint files get
    // published, so the file comparisons below are not vacuous.
    WorkloadConfig {
        seed: 99,
        num_templates: 24,
        adhoc_per_day: 3,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    }
}

fn config_with(caches: bool) -> PipelineConfig {
    if caches {
        PipelineConfig::default()
    } else {
        PipelineConfig {
            cache: CacheConfig::disabled(),
            exec_cache: ExecCacheConfig::disabled(),
            delta: DeltaConfig::disabled(),
            feature_cache: FeatureCacheConfig::disabled(),
            ..PipelineConfig::default()
        }
    }
}

/// Removes the test's temp tree on drop, so hint-file directories and
/// snapshot files do not accumulate in the system temp dir even when an
/// assertion fails.
struct TempTree(PathBuf);

impl TempTree {
    fn new(name: &str) -> Self {
        let root = std::env::temp_dir().join(format!("qo-fleet-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create temp tree");
        Self(root)
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn normalized(report: &DailyReport) -> String {
    let mut report = report.clone();
    report.compile_cache = CacheCounters::default();
    report.exec_cache = ExecCounters::default();
    report.delta_compile = DeltaStats::default();
    report.feature_cache = CacheStats::default();
    report.timings = StageTimings::default();
    format!("{report:?}")
}

/// All published hint files in a SIS directory, name → raw bytes.
fn hint_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("sis dir exists")
        .map(|entry| {
            let entry = entry.expect("readable dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(entry.path()).expect("readable hint file");
            (name, bytes)
        })
        .collect()
}

/// `days` fleet days over per-tenant SIS dirs under `root`; returns the
/// normalized per-tenant report streams (outer index = tenant).
fn run_fleet(
    workloads: &[WorkloadConfig],
    config: &FleetConfig,
    root: &Path,
    days: u32,
) -> Vec<Vec<String>> {
    let mut fleet =
        Fleet::with_sis_root(workloads.to_vec(), config, root).expect("create tenant sis dirs");
    let mut per_tenant: Vec<Vec<String>> = vec![Vec::new(); workloads.len()];
    for _ in 0..days {
        let day = fleet.advance_day().expect("fleet day runs clean");
        assert_eq!(day.outcomes.len(), workloads.len());
        for (tenant, outcome) in day.outcomes.iter().enumerate() {
            per_tenant[tenant].push(normalized(&outcome.report));
        }
    }
    per_tenant
}

/// The single-tenant references: each workload run alone, private caches,
/// publishing into its own SIS dir under `root` (same `tenant-NNN` layout
/// as [`Fleet::with_sis_root`] so hint trees compare path-for-path).
fn run_isolated_sims(
    workloads: &[WorkloadConfig],
    pipeline: &PipelineConfig,
    root: &Path,
    days: u32,
) -> Vec<Vec<String>> {
    workloads
        .iter()
        .enumerate()
        .map(|(t, wl)| {
            let dir = root.join(format!("tenant-{t:03}"));
            let mut sim = ProductionSim::with_sis_store(
                wl.clone(),
                pipeline.clone(),
                SisStore::at_dir(&dir).expect("create sis dir"),
            );
            (0..days)
                .map(|_| {
                    normalized(
                        &sim.advance_day()
                            .expect("generated workloads compile on the default path")
                            .report,
                    )
                })
                .collect()
        })
        .collect()
}

fn assert_tenants_match_references(
    label: &str,
    fleet_root: &Path,
    fleet_reports: &[Vec<String>],
    reference_root: &Path,
    reference_reports: &[Vec<String>],
) {
    let mut any_hints = false;
    for tenant in 0..fleet_reports.len() {
        assert_eq!(
            fleet_reports[tenant], reference_reports[tenant],
            "{label}: tenant {tenant} fleet reports diverged from its \
             single-tenant reference"
        );
        let dir = format!("tenant-{tenant:03}");
        let fleet_hints = hint_files(&fleet_root.join(&dir));
        any_hints |= !fleet_hints.is_empty();
        assert_eq!(
            fleet_hints,
            hint_files(&reference_root.join(&dir)),
            "{label}: tenant {tenant} hint files diverged"
        );
    }
    assert!(
        any_hints,
        "{label}: no tenant published a hint file — the comparison is vacuous"
    );
}

/// The headline leg: tenants inside a shared-cache streaming fleet are
/// byte-identical to single-tenant simulations, across cache settings,
/// stream worker counts, and overlapping/disjoint tenant populations.
#[test]
fn fleet_tenants_match_isolated_single_tenant_sims() {
    let tree = TempTree::new("isolation");
    let overlapping = overlapping_workloads(TENANTS, &workload());
    let disjoint = disjoint_workloads(TENANTS, &workload());
    let legs: [(&str, &[WorkloadConfig], bool, usize); 4] = [
        ("overlap/shared/8w", &overlapping, true, 8),
        ("overlap/shared/1w", &overlapping, true, 1),
        ("overlap/nocache/8w", &overlapping, false, 8),
        ("disjoint/shared/8w", &disjoint, true, 8),
    ];
    // One single-tenant reference per (population, cache setting).
    type Reference = (PathBuf, Vec<Vec<String>>);
    let mut references: BTreeMap<(bool, bool), Reference> = BTreeMap::new();
    for (label, workloads, caches, workers) in legs {
        let overlap = std::ptr::eq(workloads.as_ptr(), overlapping.as_ptr());
        let reference = references.entry((overlap, caches)).or_insert_with(|| {
            let root = tree.0.join(format!("ref-{overlap}-{caches}"));
            let reports = run_isolated_sims(workloads, &config_with(caches), &root, DAYS);
            (root, reports)
        });
        let fleet_root = tree.0.join(format!("fleet-{}", label.replace('/', "-")));
        let fleet_reports = run_fleet(
            workloads,
            &FleetConfig {
                pipeline: config_with(caches),
                stream: StreamConfig {
                    workers,
                    queue_capacity: if workers == 1 { 1 } else { 256 },
                    ..StreamConfig::default()
                },
                isolated_caches: false,
            },
            &fleet_root,
            DAYS,
        );
        assert_tenants_match_references(
            label,
            &fleet_root,
            &fleet_reports,
            &reference.0,
            &reference.1,
        );
    }
}

/// Per-tenant durable state survives mid-fleet kill/restore: snapshot every
/// tenant at a mid-run boundary, restore each into a *fresh* fleet over a
/// replica of the boundary's hint trees, and the resumed tail must be
/// byte-identical to the uninterrupted run — the PR 8 crash-recovery
/// contract, now per tenant under shared caches.
#[test]
fn mid_fleet_snapshot_restore_resumes_byte_identical() {
    const TOTAL_DAYS: u32 = 4;
    const BOUNDARY: u32 = 2;
    let tree = TempTree::new("restore");
    let workloads = overlapping_workloads(TENANTS, &workload());
    let config = FleetConfig {
        pipeline: config_with(true),
        stream: StreamConfig::default(),
        isolated_caches: false,
    };

    // Golden: snapshots every BOUNDARY days; replicate snapshots + hint
    // trees at the boundary (before later snapshots overwrite the files).
    let golden_root = tree.0.join("golden-sis");
    let snap_dir = tree.0.join("snaps");
    std::fs::create_dir_all(&snap_dir).expect("create snapshot dir");
    let mut golden = Fleet::with_sis_root(workloads.clone(), &config, &golden_root)
        .expect("create tenant sis dirs");
    golden.set_snapshot_policies(&snap_dir, BOUNDARY);
    let mut golden_tail: Vec<Vec<String>> = vec![Vec::new(); TENANTS];
    let boundary_snaps = tree.0.join("boundary-snaps");
    let boundary_sis = tree.0.join("boundary-sis");
    for day in 0..TOTAL_DAYS {
        let outcome = golden.advance_day().expect("fleet day runs clean");
        if day >= BOUNDARY {
            for (tenant, out) in outcome.outcomes.iter().enumerate() {
                golden_tail[tenant].push(normalized(&out.report));
            }
        }
        if day + 1 == BOUNDARY {
            for t in 0..TENANTS {
                let snap = format!("tenant-{t:03}.qosnap");
                std::fs::create_dir_all(&boundary_snaps).expect("create snap replica dir");
                std::fs::copy(snap_dir.join(&snap), boundary_snaps.join(&snap))
                    .expect("boundary snapshot exists");
                let sis_src = golden_root.join(format!("tenant-{t:03}"));
                let sis_dst = boundary_sis.join(format!("tenant-{t:03}"));
                std::fs::create_dir_all(&sis_dst).expect("create sis replica dir");
                for entry in std::fs::read_dir(&sis_src).expect("tenant sis dir exists") {
                    let entry = entry.expect("readable dir entry");
                    std::fs::copy(entry.path(), sis_dst.join(entry.file_name()))
                        .expect("copy hint file");
                }
            }
        }
    }
    let golden_files: Vec<_> = (0..TENANTS)
        .map(|t| hint_files(&golden_root.join(format!("tenant-{t:03}"))))
        .collect();
    assert!(
        golden_files.iter().any(|f| !f.is_empty()),
        "golden fleet published no hint files — the comparison is vacuous"
    );

    // A fresh fleet stands in for the restarted process: nothing survives
    // the kill except each tenant's snapshot file and hint tree.
    let mut resumed = Fleet::with_sis_root(workloads, &config, &boundary_sis)
        .expect("open replica tenant sis dirs");
    for tenant in resumed.tenants_mut() {
        let snap = boundary_snaps.join(format!("tenant-{:03}.qosnap", tenant.id));
        tenant.sim.restore(&snap).expect("snapshot restores");
        assert_eq!(tenant.sim.day, BOUNDARY, "restore resumed at the wrong day");
    }
    for day in BOUNDARY..TOTAL_DAYS {
        let outcome = resumed.advance_day().expect("resumed fleet day runs clean");
        for (tenant, out) in outcome.outcomes.iter().enumerate() {
            assert_eq!(
                normalized(&out.report),
                golden_tail[tenant][(day - BOUNDARY) as usize],
                "tenant {tenant} day-{day} report diverged after mid-fleet restore"
            );
        }
    }
    for (t, golden) in golden_files.iter().enumerate() {
        assert_eq!(
            &hint_files(&boundary_sis.join(format!("tenant-{t:03}"))),
            golden,
            "tenant {t} final hint files diverged after mid-fleet restore"
        );
    }
}

/// The PR-8 `wall_ms` caveat, fixed and pinned: a day that resumes from
/// [`ProductionSim::restore`] bills the restore's wall cost into its
/// report's `timings.restore_ns` (mirroring how `snapshot_ns` bills the
/// write at the boundary that produced it); days without a restore bill
/// zero; and `StageTimings::total_ns` includes the field.
#[test]
fn restore_cost_is_billed_into_the_resumed_day() {
    let tree = TempTree::new("billing");
    let snap = tree.0.join("state.qosnap");
    let mut sim = ProductionSim::new(workload(), config_with(true));
    for _ in 0..2 {
        let report = sim
            .advance_day()
            .expect("generated workloads compile on the default path")
            .report;
        assert_eq!(
            report.timings.restore_ns, 0,
            "a day with no preceding restore must bill zero restore cost"
        );
    }
    sim.snapshot(&snap).expect("snapshot write succeeds");

    let mut resumed = ProductionSim::new(workload(), config_with(true));
    resumed.restore(&snap).expect("snapshot restores");
    let first = resumed.advance_day().expect("resumed day runs").report;
    assert!(
        first.timings.restore_ns > 0,
        "the day resuming from a restore must carry its wall cost: {:?}",
        first.timings
    );
    assert!(
        first.timings.total_ns() >= first.timings.restore_ns,
        "total_ns must include restore_ns: {:?}",
        first.timings
    );
    let second = resumed.advance_day().expect("next day runs").report;
    assert_eq!(
        second.timings.restore_ns, 0,
        "restore cost bills exactly once, into the resumed day"
    );
}

/// Load shedding under saturation: a tight per-job stream budget
/// ([`StreamConfig::compile_budget`]) sheds view-build compile work
/// **deterministically** — byte-identical per-tenant reports (shed counters
/// included) and hint files at 1 and 8 stream workers — and the shed
/// accounting reconciles at every level: each day's
/// [`FleetDayOutcome::shed`] equals the sum of its tenants'
/// `compile_budget.truncated`, and [`FleetMetrics::shed`] accumulates the
/// days. The budget changes which plans ship (anytime extraction from
/// truncated cascades), so this leg is about *deterministic* shedding, not
/// output invariance — that contract belongs to the pipeline budget
/// (`tests/budget_equivalence.rs`).
#[test]
fn stream_budget_sheds_deterministically_across_worker_counts() {
    let tree = TempTree::new("shed");
    let workloads = overlapping_workloads(TENANTS, &workload());
    // Tight enough to truncate essentially every view-build cascade of the
    // saturated queue (their exploration runs thousands of tasks).
    let budget = CompileBudget::tasks(64);
    let run = |workers: usize, root: &PathBuf| {
        let mut fleet = Fleet::with_sis_root(
            workloads.clone(),
            &FleetConfig {
                pipeline: config_with(true),
                stream: StreamConfig {
                    workers,
                    queue_capacity: if workers == 1 { 1 } else { 64 },
                    compile_budget: budget,
                },
                isolated_caches: false,
            },
            root,
        )
        .expect("create tenant sis dirs");
        let mut reports: Vec<Vec<String>> = Vec::new();
        let mut shed_per_day: Vec<u64> = Vec::new();
        for _ in 0..DAYS {
            let day = fleet.advance_day().expect("shed fleet day runs clean");
            let truncated: u64 = day
                .outcomes
                .iter()
                .map(|o| o.report.compile_budget.truncated)
                .sum();
            assert_eq!(
                day.shed, truncated,
                "the day's shed total must reconcile with its tenants' \
                 truncated counters"
            );
            shed_per_day.push(day.shed);
            reports.push(day.outcomes.iter().map(|o| normalized(&o.report)).collect());
        }
        assert_eq!(
            fleet.metrics().shed,
            shed_per_day.iter().sum::<u64>(),
            "lifetime shed metrics must accumulate the per-day totals"
        );
        (reports, shed_per_day)
    };
    let w1_root = tree.0.join("w1");
    let w8_root = tree.0.join("w8");
    let (reports_w1, shed_w1) = run(1, &w1_root);
    let (reports_w8, shed_w8) = run(8, &w8_root);
    assert!(
        shed_w1.iter().sum::<u64>() > 0,
        "the tight stream budget must actually shed, or this test compares \
         nothing: {shed_w1:?}"
    );
    assert_eq!(
        reports_w1, reports_w8,
        "shed-fleet reports (shed counters included) diverged between 1 and \
         8 stream workers"
    );
    assert_eq!(
        shed_w1, shed_w8,
        "per-day shed totals diverged between 1 and 8 stream workers"
    );
    let mut any_hints = false;
    for t in 0..TENANTS {
        let dir = format!("tenant-{t:03}");
        let w1_files = hint_files(&w1_root.join(&dir));
        any_hints |= !w1_files.is_empty();
        assert_eq!(
            w1_files,
            hint_files(&w8_root.join(&dir)),
            "tenant {t} hint files diverged between 1 and 8 stream workers \
             under the stream budget"
        );
    }
    assert!(
        any_hints,
        "the shed fleet must still steer — no tenant published a hint file"
    );
}

/// The fleet-serving bar from the probe, pinned at test scale: overlapping
/// tenants sharing caches must lift the lifetime compile + span-feature
/// hit rate at least 1.2x over the same fleet with isolated per-tenant
/// caches (fresh literals — the regime where within-tenant reuse is
/// weakest and cross-tenant sharing matters most).
#[test]
fn cross_tenant_uplift_meets_the_serving_bar() {
    let steer_hit_rate = |fleet: &Fleet| -> f64 {
        let compile = fleet.compile_stats();
        let feature = fleet.feature_stats();
        let hits = compile.hits + feature.hits;
        let lookups = compile.lookups() + feature.lookups();
        assert!(lookups > 0, "the fleet must exercise the steering caches");
        hits as f64 / lookups as f64
    };
    let workloads = overlapping_workloads(4, &workload());
    let mut shared = Fleet::new(workloads.clone(), &FleetConfig::default());
    let mut isolated = Fleet::new(
        workloads,
        &FleetConfig {
            isolated_caches: true,
            ..FleetConfig::default()
        },
    );
    shared.run(2).expect("shared fleet runs clean");
    isolated.run(2).expect("isolated fleet runs clean");
    let (s, i) = (steer_hit_rate(&shared), steer_hit_rate(&isolated));
    assert!(
        s >= 1.2 * i,
        "cross-tenant sharing must lift the steering-cache hit rate >= 1.2x: \
         shared {s:.3} vs isolated {i:.3}"
    );
}

//! Offline stand-in for `proptest`, covering the surface this workspace's
//! property tests use: range/`Just`/`any` strategies, `prop_map`, tuple
//! composition, `prop::collection::vec`, `prop_oneof!`, and the `proptest!`
//! macro with `ProptestConfig::with_cases`.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking. Failures panic with the sampled inputs Debug-printed by the
//! assertion itself, and every run is deterministic — the RNG is seeded from
//! the test's module path and case index, so a failing case reproduces
//! exactly on re-run.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic per-test, per-case RNG.
#[must_use]
pub fn test_rng(test_path: &str, case: u32) -> StdRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_path.bytes() {
        seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(seed ^ (u64::from(case) << 32 | u64::from(case)))
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// The full domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.random::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Self::Strategy {
        Any::default()
    }
}

impl Strategy for Any<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut StdRng) -> u64 {
        rng.random::<u64>()
    }
}

impl Arbitrary for u64 {
    type Strategy = Any<u64>;

    fn arbitrary() -> Self::Strategy {
        Any::default()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform arms.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        Self::new_weighted(arms.into_iter().map(|arm| (1, arm)).collect())
    }

    #[must_use]
    pub fn new_weighted(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Self { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.random_range(0..self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum covers every draw")
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

pub mod prop {
    pub mod collection {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::RngExt;
        use std::ops::Range;

        /// Vectors with lengths drawn from `sizes`.
        pub struct VecStrategy<S> {
            element: S,
            sizes: Range<usize>,
        }

        pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, sizes }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let len = rng.random_range(self.sizes.clone());
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

// ---- macros -------------------------------------------------------------

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as in real
/// proptest) that samples all strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategy = ($($strategy,)+);
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let ($($arg,)+) = $crate::Strategy::sample(&__strategy, &mut __rng);
                // Run the body in a closure so `return Ok(())` early-exits
                // the case, as in real proptest.
                let __outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = __outcome {
                    panic!("proptest case {__case} failed: {message}");
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Choice among strategies producing the same value type; arms are either
/// bare strategies (uniform) or `weight => strategy`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight, $crate::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert within a property body (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skip cases violating a precondition (counted as passing here).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

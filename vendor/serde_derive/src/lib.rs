//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! stand-in. The build environment has no crates.io access, so the input item
//! is parsed directly from the `proc_macro` token stream (no `syn`/`quote`)
//! and the impls are emitted as formatted source text.
//!
//! Supported shapes — everything this workspace derives on:
//! * structs with named fields (objects in declaration order);
//! * tuple structs (newtypes are transparent, larger tuples are arrays);
//! * enums with unit, tuple, and struct variants (externally tagged:
//!   `"Variant"`, `{"Variant": inner}`, `{"Variant": {..}}`).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported;
//! deriving on such an item produces a compile error naming this crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

enum Fields {
    Named(Vec<String>),
    /// Tuple struct/variant with this many fields.
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip `#[...]` attributes (doc comments included).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            if matches!(self.peek(), Some(TokenTree::Group(_))) {
                self.pos += 1; // [...]
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, etc.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if matches!(
                    self.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    self.pos += 1;
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!(
                "serde_derive: expected identifier, found {other:?}"
            )),
        }
    }
}

/// Count the fields of a tuple struct/variant body: top-level commas at
/// angle-bracket depth zero. Parens/brackets/braces arrive pre-grouped by the
/// tokenizer, so only `<`/`>` need manual depth tracking.
fn tuple_arity(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    fields += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

/// Collect field names from a `{ ... }` body of named fields.
fn named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut cur = Cursor::new(group);
    let mut names = Vec::new();
    loop {
        cur.skip_attributes();
        if cur.peek().is_none() {
            return Ok(names);
        }
        cur.skip_visibility();
        names.push(cur.expect_ident()?);
        // Skip `: Type` up to the next top-level comma.
        let mut depth = 0i32;
        loop {
            match cur.next() {
                None => return Ok(names),
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

fn parse_fields_after_name(cur: &mut Cursor) -> Result<Fields, String> {
    match cur.peek() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let stream = g.stream();
            cur.pos += 1;
            Ok(Fields::Named(named_fields(stream)?))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let stream = g.stream();
            cur.pos += 1;
            Ok(Fields::Tuple(tuple_arity(stream)))
        }
        _ => Ok(Fields::Unit),
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    cur.skip_attributes();
    cur.skip_visibility();
    let kind = cur.expect_ident()?;
    let name = cur.expect_ident()?;
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (offline stand-in): generic type `{name}` is not supported"
        ));
    }
    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_fields_after_name(&mut cur)?,
        }),
        "enum" => {
            let Some(TokenTree::Group(g)) = cur.peek() else {
                return Err("serde_derive: expected enum body".into());
            };
            let mut body = Cursor::new(g.stream());
            let mut variants = Vec::new();
            loop {
                body.skip_attributes();
                if body.peek().is_none() {
                    break;
                }
                let vname = body.expect_ident()?;
                let fields = parse_fields_after_name(&mut body)?;
                variants.push(Variant {
                    name: vname,
                    fields,
                });
                // Skip to the comma separating variants (tolerates `= expr`).
                while let Some(t) = body.peek() {
                    if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                        body.pos += 1;
                        break;
                    }
                    body.pos += 1;
                }
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("serde_derive: cannot derive for `{other}` items")),
    }
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let mut out = String::new();
    match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let mut pairs = String::new();
                    for f in names {
                        let _ = write!(
                            pairs,
                            "({f:?}.to_string(), serde::Serialize::to_value(&self.{f})),"
                        );
                    }
                    format!("serde::Value::Object(vec![{pairs}])")
                }
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let mut items = String::new();
                    for i in 0..*n {
                        let _ = write!(items, "serde::Serialize::to_value(&self.{i}),");
                    }
                    format!("serde::Value::Array(vec![{items}])")
                }
                Fields::Unit => "serde::Value::Null".to_string(),
            };
            let _ = write!(
                out,
                "impl serde::Serialize for {name} {{ \
                   fn to_value(&self) -> serde::Value {{ {body} }} \
                 }}"
            );
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => serde::Value::Str({vn:?}.to_string()),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let pattern = binders.join(", ");
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Array(vec![{}])", items.join(","))
                        };
                        let _ = write!(
                            arms,
                            "{name}::{vn}({pattern}) => serde::Value::Object(vec![\
                               ({vn:?}.to_string(), {inner})]),"
                        );
                    }
                    Fields::Named(fields) => {
                        let pattern = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {pattern} }} => serde::Value::Object(vec![\
                               ({vn:?}.to_string(), serde::Value::Object(vec![{}]))]),",
                            pairs.join(",")
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl serde::Serialize for {name} {{ \
                   fn to_value(&self) -> serde::Value {{ match self {{ {arms} }} }} \
                 }}"
            );
        }
    }
    out.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let mut out = String::new();
    match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("{f}: serde::Deserialize::from_value(value.get_field({f:?})?)?")
                        })
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(","))
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(value)?))")
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "{{ let serde::Value::Array(items) = value else {{ \
                             return Err(serde::Error::new(\"expected array\")); }}; \
                           if items.len() != {n} {{ \
                             return Err(serde::Error::new(\"wrong tuple length\")); }} \
                           Ok({name}({})) }}",
                        inits.join(",")
                    )
                }
                Fields::Unit => format!("{{ let _ = value; Ok({name}) }}"),
            };
            let _ = write!(
                out,
                "impl serde::Deserialize for {name} {{ \
                   fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {{ \
                     {body} \
                   }} \
                 }}"
            );
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(unit_arms, "{vn:?} => Ok({name}::{vn}),");
                    }
                    Fields::Tuple(1) => {
                        let _ = write!(
                            tagged_arms,
                            "{vn:?} => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        let _ = write!(
                            tagged_arms,
                            "{vn:?} => {{ \
                               let serde::Value::Array(items) = inner else {{ \
                                 return Err(serde::Error::new(\"expected array\")); }}; \
                               if items.len() != {n} {{ \
                                 return Err(serde::Error::new(\"wrong tuple length\")); }} \
                               Ok({name}::{vn}({})) }},",
                            inits.join(",")
                        );
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(inner.get_field({f:?})?)?"
                                )
                            })
                            .collect();
                        let _ = write!(
                            tagged_arms,
                            "{vn:?} => Ok({name}::{vn} {{ {} }}),",
                            inits.join(",")
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl serde::Deserialize for {name} {{ \
                   fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {{ \
                     match value {{ \
                       serde::Value::Str(s) => match s.as_str() {{ \
                         {unit_arms} \
                         other => Err(serde::Error::new(format!( \
                           \"unknown variant `{{other}}` of {name}\"))), \
                       }}, \
                       serde::Value::Object(fields) if fields.len() == 1 => {{ \
                         let (tag, inner) = &fields[0]; \
                         match tag.as_str() {{ \
                           {tagged_arms} \
                           other => Err(serde::Error::new(format!( \
                             \"unknown variant `{{other}}` of {name}\"))), \
                         }} \
                       }}, \
                       other => Err(serde::Error::new(format!( \
                         \"expected enum {name}, found {{}}\", other.kind()))), \
                     }} \
                   }} \
                 }}"
            );
        }
    }
    out.parse().unwrap()
}

//! Offline stand-in for `rand`, providing exactly the surface this workspace
//! uses: `StdRng::seed_from_u64`, `RngExt::random::<f64>()`, and
//! `RngExt::random_range` over integer and float ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the standard
//! construction for expanding a 64-bit seed into a full state, implemented
//! from the published recurrences. Determinism is the contract that matters
//! here: every simulation draw is keyed by a stable hash, and the pipeline's
//! thread-count-invariance tests require identical streams on every run.

use std::ops::{Range, RangeInclusive};

/// Construction from a 64-bit seed (the only seeding mode used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types drawable uniformly from their "standard" distribution
/// (`random::<f64>()` is uniform on `[0, 1)`).
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `random_range` can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw from `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let width = (self.end as i128 - self.start as i128) as u64;
                let offset = uniform_below(rng, width);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let width = (end as i128 - start as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = uniform_below(rng, width + 1);
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in random_range");
        let u = f64::standard_sample(rng);
        start + u * (end - start)
    }
}

/// The convenience sampling surface (rand 0.9 `Rng` method names).
pub trait RngExt: RngCore {
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

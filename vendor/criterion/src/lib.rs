//! Offline stand-in for `criterion`, covering the harness surface this
//! workspace's benches use: `Criterion::bench_function`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Measurement model: a short calibration run sizes batches to ~10ms, then
//! samples are collected for a fixed wall budget and reported as
//! median/mean/p95 per iteration in criterion's familiar one-line format.
//! Numbers are comparable run-over-run on the same host, which is what the
//! bench trajectory tracks.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; only the variants used by this
/// workspace are distinguished (both run one routine call per setup here,
/// which matches how the benches use them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);
/// Hard wall cap per bench, so slow routines with large sample counts do not
/// stall the whole bench suite.
const MAX_WALL: Duration = Duration::from_secs(10);
const DEFAULT_SAMPLE_SIZE: usize = 100;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Number of measured samples to aim for per bench.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        report(name, &bencher.samples);
        self
    }
}

pub struct Bencher {
    /// Nanoseconds per iteration, one entry per measured sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine` repeatedly: batches are sized so the configured
    /// sample count fills the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: how many calls fit one sample's share of the budget?
        let sample_budget = MEASURE / self.sample_size as u32;
        let calib_start = Instant::now();
        let mut calls = 0u64;
        while calib_start.elapsed() < sample_budget.min(Duration::from_millis(10)) {
            std::hint::black_box(routine());
            calls += 1;
        }
        let batch = calls.max(1);

        let warmup_start = Instant::now();
        while warmup_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
        }

        let measure_start = Instant::now();
        while self.samples.len() < self.sample_size && measure_start.elapsed() < MAX_WALL {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Measure `routine` on fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warmup_start = Instant::now();
        while warmup_start.elapsed() < WARMUP {
            let input = setup();
            std::hint::black_box(routine(input));
        }

        let measure_start = Instant::now();
        while self.samples.len() < self.sample_size && measure_start.elapsed() < MAX_WALL {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            self.samples.push(t.elapsed().as_nanos() as f64);
            std::hint::black_box(out);
        }
    }
}

fn report(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let p95 = sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)];
    println!(
        "{name:<40} time: [{} {} {}]  ({} samples)",
        format_ns(median),
        format_ns(mean),
        format_ns(p95),
        sorted.len()
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle bench functions into a named group runner. Supports both the
/// short form and the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $group;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Offline stand-in for `rayon`, covering the surface this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()` plus
//! `ThreadPoolBuilder`/`ThreadPool::install` for explicit thread counts.
//!
//! Execution model: a terminal `collect` spawns scoped threads that pull item
//! indices from a shared atomic counter (dynamic load balancing — span
//! computations and recompiles vary wildly in cost) and tag each result with
//! its index, so the collected order is always the input order. Results are
//! therefore **identical at any thread count** as long as the per-item work
//! is itself deterministic — the property the steering pipeline's
//! reproducibility tests assert.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

// ---- thread-count control ----------------------------------------------

thread_local! {
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel iterators will use on this thread.
#[must_use]
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|tl| match tl.get() {
        Some(n) => n,
        None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    })
}

/// Error building a thread pool (infallible here; kept for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means "use the default" (all available cores), as in rayon.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical pool: workers are spawned per terminal operation (scoped
/// threads), so the pool only carries the configured width.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's thread count governing any parallel
    /// iterators it executes.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|tl| {
            let prev = tl.replace(Some(self.num_threads));
            let result = op();
            tl.set(prev);
            result
        })
    }
}

// ---- parallel iterators -------------------------------------------------

/// An indexed source of parallel items: `len` fixed up front, `get(i)`
/// callable concurrently from worker threads.
pub trait ParallelIterator: Sized + Sync {
    type Item: Send;

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(&self, index: usize) -> Self::Item;

    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { inner: self, f }
    }

    /// Terminal operation: evaluate every item, input order preserved.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(run_indexed(&self))
    }
}

fn run_indexed<P: ParallelIterator>(iter: &P) -> Vec<P::Item> {
    let len = iter.len();
    let workers = current_num_threads().min(len);
    if workers <= 1 {
        return (0..len).map(|i| iter.get(i)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, P::Item)> = Vec::with_capacity(len);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        local.push((i, iter.get(i)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            tagged.extend(handle.join().expect("parallel worker panicked"));
        }
    });
    let mut out: Vec<Option<P::Item>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    for (i, item) in tagged {
        out[i] = Some(item);
    }
    out.into_iter()
        .map(|slot| slot.expect("every index produced"))
        .collect()
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn get(&self, index: usize) -> Self::Item {
        &self.slice[index]
    }
}

/// `.par_iter()` on slices and anything that derefs to one.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;

    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        ParIter { slice: self }
    }
}

/// Lazily mapped parallel iterator.
pub struct Map<P, F> {
    inner: P,
    f: F,
}

impl<P, U, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn get(&self, index: usize) -> Self::Item {
        (self.f)(self.inner.get(index))
    }
}

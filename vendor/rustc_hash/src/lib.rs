//! Offline stand-in for `rustc-hash`. The maps must be *deterministic* (no
//! per-process random state): pipeline results are compared byte-for-byte
//! across runs and thread counts, so iteration order may only depend on the
//! insertion sequence. The hasher is a simple word-at-a-time multiply-mix —
//! not the upstream algorithm, but the same contract: fast, deterministic,
//! non-cryptographic.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Deterministic multiply-mix hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low-entropy keys spread across buckets.
        let mut z = self.state;
        z = (z ^ (z >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        z ^ (z >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

//! Offline stand-in for `serde`, written for this workspace (no crates.io
//! access in the build environment). Instead of serde's visitor-based
//! architecture, both traits go through an owned JSON [`Value`] tree:
//! [`Serialize`] lowers a type into a `Value`, [`Deserialize`] lifts it back.
//! The `serde_json` stand-in provides the text layer on top.
//!
//! The derive macros (re-exported from `serde_derive`) follow serde's
//! external-tagging conventions so the on-disk JSON looks like what real
//! serde would produce: structs are objects in declaration order, newtype
//! structs are transparent, unit enum variants are strings, and data-carrying
//! variants are single-key objects.

use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON document.
///
/// Integers keep their signedness (`U64`/`I64`) so 64-bit ids — template ids
/// are full-width hashes in this workspace — round-trip without passing
/// through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object; serialization order must be deterministic
    /// (the pipeline's determinism tests compare hint files byte-for-byte).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable kind tag for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::U64(v) => Ok(*v as f64),
            Value::I64(v) => Ok(*v as f64),
            Value::F64(v) => Ok(*v),
            other => Err(Error::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::U64(v) => Ok(*v),
            Value::I64(v) if *v >= 0 => Ok(*v as u64),
            other => Err(Error::new(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }

    fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::I64(v) => Ok(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Ok(*v as i64),
            other => Err(Error::new(format!(
                "expected signed integer, found {}",
                other.kind()
            ))),
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Lower a value into a JSON [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Lift a value back out of a JSON [`Value`].
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ----------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_u64()?;
                <$t>::try_from(v).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_i64()?;
                <$t>::try_from(v).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);
impl_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        usize::try_from(value.as_u64()?).map_err(|_| Error::new("integer out of range"))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        isize::try_from(value.as_i64()?).map_err(|_| Error::new("integer out of range"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for Arc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.as_ref().to_owned())
    }
}

impl Deserialize for Arc<str> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(Arc::from(s.as_str())),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

// ---- container impls ----------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        self.as_ref().to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let Value::Array(items) = value else {
                    return Err(Error::new(format!("expected array, found {}", value.kind())));
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::new(format!(
                        "expected tuple of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

//! Offline stand-in for `serde_json`: renders and parses the [`serde::Value`]
//! tree. Floats use Rust's shortest round-trip `Display`, so values survive
//! `to_string` → `from_str` bit-for-bit; object key order is preserved, which
//! keeps published hint files byte-stable (the pipeline's determinism tests
//! rely on this).

use serde::{Deserialize, Error, Serialize, Value};
use std::fmt::Write;

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON document"));
    }
    T::from_value(&value)
}

// ---- writer -------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // Keep an explicit decimal point so the value parses back as F64.
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input at byte {}: {other:?}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte position.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

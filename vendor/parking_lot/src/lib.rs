//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives behind
//! parking_lot's non-poisoning API (`lock()`/`read()`/`write()` return guards
//! directly). Poisoned locks are recovered — a panicking holder here is
//! already a test failure, and lock state must not compound it.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Shared Debug impl body: show the value when the lock is free, a
/// placeholder when contended.
macro_rules! fmt_lock_debug {
    ($name:literal, $try_method:ident) => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self.inner.$try_method() {
                Ok(guard) => f.debug_tuple($name).field(&&*guard).finish(),
                Err(_) => f.write_str(concat!($name, "(<locked>)")),
            }
        }
    };
}

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    #[must_use]
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fmt_lock_debug!("Mutex", try_lock);
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    #[must_use]
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fmt_lock_debug!("RwLock", try_read);
}

//! A contextual-bandit decision service — the reproduction's substitute for
//! Azure Personalizer (paper §4.2, ref. 1).
//!
//! Azure Personalizer wraps Vowpal Wabbit-style contextual bandit learning
//! behind a *rank / reward* API with durable event logging. This crate
//! implements the same abstraction:
//!
//! * [`features`] — sparse feature vectors with the hashing trick and
//!   explicit second/third-order interaction features (the paper found span
//!   co-occurrence indicators "critical to our success", §6);
//! * [`model`] — a linear scorer over hashed (context × action) features
//!   trained by importance-weighted regression;
//! * [`bandit`] — epsilon-greedy exploration, uniform logging policy, and
//!   IPS-corrected off-policy updates;
//! * [`counterfactual`] — IPS/SNIPS estimators for offline policy evaluation
//!   ("we use counter-factual evaluations where we can rely on past
//!   telemetry offline", §6);
//! * [`slate`] — batched slate scoring over a CSR sparse layout,
//!   bit-identical to per-action scoring;
//! * [`service`] — the rank/reward facade with an event log.

pub mod bandit;
pub mod counterfactual;
pub mod features;
pub mod model;
pub mod service;
pub mod slate;

pub use bandit::{CbConfig, ContextualBandit, RankDecision};
pub use counterfactual::{ips_estimate, snips_estimate, LoggedOutcome};
pub use features::FeatureVector;
pub use model::LinearModel;
pub use service::{PendingEventState, Personalizer, PersonalizerState, RankRequest, RankResponse};
pub use slate::SparseSlate;

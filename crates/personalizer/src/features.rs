//! Sparse feature vectors with the hashing trick.

use scope_ir::ids::{mix64, stable_hash64};
use serde::{Deserialize, Serialize};

/// A sparse feature vector: (hashed id, value) pairs. Feature identity is a
/// 64-bit hash of `namespace|name`; models fold it into their table size.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    items: Vec<(u64, f64)>,
}

impl FeatureVector {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[must_use]
    pub fn items(&self) -> &[(u64, f64)] {
        &self.items
    }

    /// Rebuild a vector from raw `(hashed id, value)` items — the
    /// snapshot-restore path (`scope-state`). Items are stored verbatim:
    /// order and duplicates matter to the scoring paths, so no
    /// normalization happens here.
    #[must_use]
    pub fn from_items(items: Vec<(u64, f64)>) -> Self {
        Self { items }
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn key(namespace: &str, name: &str) -> u64 {
        mix64(
            stable_hash64(namespace.as_bytes()),
            stable_hash64(name.as_bytes()),
        )
    }

    /// Add a named numeric feature.
    ///
    /// Duplicate keys are **kept as separate items**, not summed: pushing
    /// `("ns", "x", a)` then `("ns", "x", b)` yields two `(key, value)`
    /// pairs. A linear model scores them as `w·a + w·b` — mathematically the
    /// same as one item of value `a + b`, but *not* bit-identical under f64
    /// (`w*a + w*b ≠ w*(a+b)` in general), and gradient updates touch the
    /// slot once per item. Every scorer must therefore fold duplicates
    /// identically: both `LinearModel::score` and the batched
    /// `LinearModel::score_slate` walk items in push order, one term per
    /// item (VW resolves collisions the same way — last to hash wins
    /// nothing; all occurrences contribute).
    pub fn push(&mut self, namespace: &str, name: &str, value: f64) {
        self.items.push((Self::key(namespace, name), value));
    }

    /// Add an indicator feature (value 1.0).
    pub fn flag(&mut self, namespace: &str, name: &str) {
        self.push(namespace, name, 1.0);
    }

    /// Add a second-order co-occurrence indicator `a × b`.
    pub fn pair(&mut self, namespace: &str, a: &str, b: &str) {
        self.pair_weighted(namespace, a, b, 1.0);
    }

    /// Weighted second-order indicator: normalized SGD distributes updates
    /// by `value²`, so co-occurrence features are typically down-weighted
    /// relative to main effects.
    pub fn pair_weighted(&mut self, namespace: &str, a: &str, b: &str, value: f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.push(namespace, &format!("{lo}&{hi}"), value);
    }

    /// Add a third-order co-occurrence indicator `a × b × c`.
    pub fn triple(&mut self, namespace: &str, a: &str, b: &str, c: &str) {
        self.triple_weighted(namespace, a, b, c, 1.0);
    }

    /// Weighted third-order indicator (see [`FeatureVector::pair_weighted`]).
    pub fn triple_weighted(&mut self, namespace: &str, a: &str, b: &str, c: &str, value: f64) {
        let mut parts = [a, b, c];
        parts.sort_unstable();
        self.push(
            namespace,
            &format!("{}&{}&{}", parts[0], parts[1], parts[2]),
            value,
        );
    }

    /// A log-bucketed numeric feature: emits an indicator for the magnitude
    /// bucket of `value` (robust to the enormous dynamic ranges of costs and
    /// cardinalities).
    pub fn log_bucket(&mut self, namespace: &str, name: &str, value: f64) {
        let bucket = if value <= 0.0 {
            -1
        } else {
            value.log10().floor() as i64
        };
        self.flag(namespace, &format!("{name}@e{bucket}"));
    }

    /// Concatenate another vector (e.g. context ⧺ action).
    pub fn extend_from(&mut self, other: &FeatureVector) {
        self.items.extend_from_slice(&other.items);
    }

    /// Cross every feature of `self` with every feature of `other` into a
    /// new vector (the VW `-q` quadratic namespace interaction). Values
    /// multiply.
    #[must_use]
    pub fn quadratic(&self, other: &FeatureVector) -> FeatureVector {
        self.quadratic_weighted(other, 1.0)
    }

    /// Quadratic interaction with an extra scale applied to every crossed
    /// value (down-weights the whole interaction block at once).
    #[must_use]
    pub fn quadratic_weighted(&self, other: &FeatureVector, scale: f64) -> FeatureVector {
        let mut out = FeatureVector::new();
        out.items.reserve(self.items.len() * other.items.len());
        for &(ka, va) in &self.items {
            for &(kb, vb) in &other.items {
                out.items.push((mix64(ka, kb), va * vb * scale));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinct() {
        let mut a = FeatureVector::new();
        a.flag("ctx", "x");
        let mut b = FeatureVector::new();
        b.flag("ctx", "x");
        assert_eq!(a.items()[0].0, b.items()[0].0);
        let mut c = FeatureVector::new();
        c.flag("ctx", "y");
        assert_ne!(a.items()[0].0, c.items()[0].0);
        // Namespace participates in identity.
        let mut d = FeatureVector::new();
        d.flag("other", "x");
        assert_ne!(a.items()[0].0, d.items()[0].0);
    }

    #[test]
    fn pair_is_order_invariant() {
        let mut a = FeatureVector::new();
        a.pair("s", "r1", "r2");
        let mut b = FeatureVector::new();
        b.pair("s", "r2", "r1");
        assert_eq!(a.items()[0].0, b.items()[0].0);
    }

    #[test]
    fn triple_is_order_invariant() {
        let mut a = FeatureVector::new();
        a.triple("s", "r1", "r2", "r3");
        let mut b = FeatureVector::new();
        b.triple("s", "r3", "r1", "r2");
        assert_eq!(a.items()[0].0, b.items()[0].0);
    }

    #[test]
    fn log_buckets_group_magnitudes() {
        let bucket_key = |v: f64| {
            let mut f = FeatureVector::new();
            f.log_bucket("n", "cost", v);
            f.items()[0].0
        };
        assert_eq!(bucket_key(150.0), bucket_key(900.0), "same decade");
        assert_ne!(bucket_key(150.0), bucket_key(1500.0), "different decade");
        // Non-positive values fall into a sentinel bucket.
        assert_eq!(bucket_key(0.0), bucket_key(-3.0));
    }

    #[test]
    fn duplicate_keys_stay_separate_items() {
        let mut f = FeatureVector::new();
        f.push("ns", "x", 2.0);
        f.push("ns", "x", 3.0);
        assert_eq!(f.len(), 2, "duplicates are not summed");
        assert_eq!(f.items()[0].0, f.items()[1].0, "same hashed key");
        assert_eq!((f.items()[0].1, f.items()[1].1), (2.0, 3.0));
    }

    #[test]
    fn quadratic_crosses_all_pairs() {
        let mut a = FeatureVector::new();
        a.push("x", "f1", 2.0);
        a.push("x", "f2", 3.0);
        let mut b = FeatureVector::new();
        b.push("y", "g1", 5.0);
        let q = a.quadratic(&b);
        assert_eq!(q.len(), 2);
        let values: Vec<f64> = q.items().iter().map(|(_, v)| *v).collect();
        assert!(values.contains(&10.0) && values.contains(&15.0));
    }
}

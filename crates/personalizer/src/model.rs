//! Linear scorer over hashed features, trained by importance-weighted
//! regression (the IWR reduction used by VW's contextual bandit modes).

use crate::features::FeatureVector;
use crate::slate::SparseSlate;
use serde::{Deserialize, Serialize};

/// A linear model over a hashed weight table of `2^dim_bits` entries,
/// trained by normalized SGD: every update moves the *prediction* by
/// `lr · importance · error` regardless of feature scale, distributing the
/// correction across features proportionally to their squared values. This
/// is why the featurization weights interaction features below main-effect
/// features — the distribution of the correction follows `value²`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearModel {
    weights: Vec<f64>,
    dim_bits: u32,
    /// Total updates absorbed (diagnostics).
    pub updates: u64,
}

impl LinearModel {
    #[must_use]
    pub fn new(dim_bits: u32) -> Self {
        assert!(
            (8..=26).contains(&dim_bits),
            "dim_bits {dim_bits} out of range"
        );
        Self {
            weights: vec![0.0; 1 << dim_bits],
            dim_bits,
            updates: 0,
        }
    }

    /// The raw weight table (snapshot export; diagnostics).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The hashed-table size exponent this model was built with.
    #[must_use]
    pub fn dim_bits(&self) -> u32 {
        self.dim_bits
    }

    /// Rebuild a model from snapshot parts. Returns `None` (instead of
    /// panicking like [`LinearModel::new`]) when `dim_bits` is out of range
    /// or the weight table does not match `2^dim_bits` — restore paths must
    /// fail typed, never panic.
    #[must_use]
    pub fn from_parts(dim_bits: u32, weights: Vec<f64>, updates: u64) -> Option<Self> {
        if !(8..=26).contains(&dim_bits) || weights.len() != 1usize << dim_bits {
            return None;
        }
        Some(Self {
            weights,
            dim_bits,
            updates,
        })
    }

    #[inline]
    fn slot(&self, key: u64) -> usize {
        (key & ((1u64 << self.dim_bits) - 1)) as usize
    }

    /// Predicted reward of a (context × action) feature vector.
    ///
    /// Items accumulate left-to-right; duplicate keys (see
    /// [`FeatureVector::push`]) contribute one term each, in their positions
    /// — the batched [`LinearModel::score_slate`] path folds them the same
    /// way, which is what keeps the two bit-identical.
    #[must_use]
    pub fn score(&self, fv: &FeatureVector) -> f64 {
        fv.items()
            .iter()
            .map(|&(k, v)| self.weights[self.slot(k)] * v)
            .sum()
    }

    /// Predicted reward of every action in a prebuilt [`SparseSlate`]: a
    /// gather-multiply over the slate's flat arrays, one pass for the whole
    /// slate. The slate's pre-folded slots must match this model's table
    /// (same `dim_bits`), and each action's items accumulate in the same
    /// left-to-right order as [`LinearModel::score`] over the sequential
    /// joint vector, so the scores are bit-identical to the per-action path.
    #[must_use]
    pub fn score_slate(&self, slate: &SparseSlate) -> Vec<f64> {
        assert_eq!(
            slate.dim_bits(),
            self.dim_bits,
            "slate folded for a different dim_bits than this model's table"
        );
        (0..slate.num_actions())
            .map(|i| {
                let (slots, values) = slate.action(i);
                slots
                    .iter()
                    .zip(values)
                    .map(|(&s, &v)| self.weights[s as usize] * v)
                    .sum()
            })
            .collect()
    }

    /// One normalized-SGD step of squared loss `(w·x − reward)²`, scaled by
    /// `importance` (the inverse-propensity weight, pre-capped by the
    /// caller) and `lr`. The effective step in prediction space is clamped
    /// to keep rare huge importance weights from destabilizing the model.
    pub fn update(&mut self, fv: &FeatureVector, reward: f64, importance: f64, lr: f64) {
        let norm: f64 = fv
            .items()
            .iter()
            .map(|&(_, v)| v * v)
            .sum::<f64>()
            .max(1e-12);
        let err = reward - self.score(fv);
        let step = (lr * importance * err).clamp(-2.0 * err.abs(), 2.0 * err.abs()) / norm;
        for &(k, v) in fv.items() {
            let slot = self.slot(k);
            self.weights[slot] += step * v;
        }
        self.updates += 1;
    }

    /// L2 norm of the weight table (diagnostics).
    #[must_use]
    pub fn weight_norm(&self) -> f64 {
        self.weights.iter().map(|w| w * w).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(pairs: &[(&str, f64)]) -> FeatureVector {
        let mut f = FeatureVector::new();
        for (name, v) in pairs {
            f.push("t", name, *v);
        }
        f
    }

    #[test]
    fn fresh_model_scores_zero() {
        let m = LinearModel::new(12);
        assert_eq!(m.score(&fv(&[("a", 1.0), ("b", 2.0)])), 0.0);
    }

    #[test]
    fn update_moves_score_toward_reward() {
        let mut m = LinearModel::new(12);
        let x = fv(&[("a", 1.0), ("b", 1.0)]);
        for _ in 0..50 {
            m.update(&x, 1.0, 1.0, 0.5);
        }
        assert!((m.score(&x) - 1.0).abs() < 0.01, "score {}", m.score(&x));
    }

    #[test]
    fn disjoint_features_learn_independently() {
        let mut m = LinearModel::new(16);
        let a = fv(&[("alpha", 1.0)]);
        let b = fv(&[("beta", 1.0)]);
        for _ in 0..60 {
            m.update(&a, 1.0, 1.0, 0.5);
            m.update(&b, -1.0, 1.0, 0.5);
        }
        assert!(m.score(&a) > 0.8);
        assert!(m.score(&b) < -0.8);
    }

    #[test]
    fn importance_scales_the_step() {
        let x = fv(&[("a", 1.0)]);
        let mut low = LinearModel::new(12);
        let mut high = LinearModel::new(12);
        low.update(&x, 1.0, 0.5, 0.1);
        high.update(&x, 1.0, 2.0, 0.1);
        assert!(high.score(&x) > low.score(&x));
    }

    #[test]
    fn learning_is_scale_robust() {
        // Huge feature values must not blow up the weights (normalized SGD).
        let mut m = LinearModel::new(12);
        let x = fv(&[("big", 1e9)]);
        for _ in 0..20 {
            m.update(&x, 1.0, 1.0, 0.5);
        }
        assert!(m.score(&x).is_finite());
        assert!((m.score(&x) - 1.0).abs() < 0.05);
    }

    #[test]
    fn huge_importance_weights_cannot_overshoot() {
        let x = fv(&[("a", 1.0)]);
        let mut m = LinearModel::new(12);
        m.update(&x, 1.0, 1000.0, 1.0);
        // Step clamp: prediction moves at most 2x the error.
        assert!(m.score(&x) <= 2.0 + 1e-9, "score {}", m.score(&x));
        for _ in 0..10 {
            m.update(&x, 1.0, 1000.0, 1.0);
        }
        assert!((m.score(&x) - 1.0).abs() < 1.1, "bounded oscillation");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_absurd_dims() {
        let _ = LinearModel::new(40);
    }
}

//! Contextual bandit over (context, action-set) pairs (paper §3.1-3.2).
//!
//! The learner repeatedly receives a context and a set of candidate actions,
//! chooses one, and observes the reward of the chosen action only. Actions
//! become "increasingly more likely under the experiment design as more data
//! accumulates, but other actions still have some likelihood" — here via
//! epsilon-greedy exploration. QO-Advisor trains off-policy from a
//! uniform-at-random logging policy (§4.2); both policies are exposed.

use crate::features::FeatureVector;
use crate::model::LinearModel;
use crate::slate::SparseSlate;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Down-weight applied to the context×action quadratic block of the joint
/// representation (see [`ContextualBandit::joint`]). Shared with the batched
/// [`SparseSlate`] layout so both featurization paths multiply identically.
pub(crate) const QUADRATIC_SCALE: f64 = 0.5;

/// Bandit hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CbConfig {
    /// Exploration rate of the learned policy.
    pub epsilon: f64,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Hashed weight-table size (bits).
    pub dim_bits: u32,
    /// Cap on inverse-propensity weights (variance control).
    pub max_importance: f64,
    /// Score rank slates through the batched CSR path
    /// ([`crate::slate::SparseSlate`]) instead of per-action joint
    /// featurization. Bit-identical decisions either way (asserted by the
    /// slate property test and the pipeline determinism suite) — purely a
    /// throughput knob.
    pub batch_rank: bool,
}

impl Default for CbConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.1,
            learning_rate: 0.25,
            dim_bits: 20,
            max_importance: 50.0,
            batch_rank: true,
        }
    }
}

/// The outcome of a rank call.
#[derive(Debug, Clone, PartialEq)]
pub struct RankDecision {
    /// Index into the action slate.
    pub chosen: usize,
    /// Probability the behaviour policy assigned to the chosen action.
    pub probability: f64,
    /// Model scores per action (diagnostics and counterfactual evaluation).
    pub scores: Vec<f64>,
}

/// A contextual bandit with a linear scorer.
#[derive(Debug, Clone)]
pub struct ContextualBandit {
    model: LinearModel,
    config: CbConfig,
    /// Events absorbed (for diagnostics).
    pub events: u64,
}

impl ContextualBandit {
    #[must_use]
    pub fn new(config: CbConfig) -> Self {
        Self {
            model: LinearModel::new(config.dim_bits),
            config,
            events: 0,
        }
    }

    #[must_use]
    pub fn config(&self) -> &CbConfig {
        &self.config
    }

    /// Rebuild a bandit from snapshot parts (`scope-state` restore): the
    /// live configuration plus a restored model and event counter. The
    /// caller has already checked `model.dim_bits()` against
    /// `config.dim_bits`.
    #[must_use]
    pub fn from_parts(config: CbConfig, model: LinearModel, events: u64) -> Self {
        Self {
            model,
            config,
            events,
        }
    }

    #[must_use]
    pub fn model(&self) -> &LinearModel {
        &self.model
    }

    /// Joint (context × action) representation: the action features crossed
    /// with the context plus the raw action features. The quadratic part
    /// lets the model learn per-(span-feature, rule) effects; it is
    /// down-weighted so the action main effects (the strongest and fastest-
    /// converging signal) keep the majority share of each normalized-SGD
    /// correction.
    #[must_use]
    pub fn joint(context: &FeatureVector, action: &FeatureVector) -> FeatureVector {
        let mut fv = action.clone();
        fv.extend_from(&context.quadratic_weighted(action, QUADRATIC_SCALE));
        fv
    }

    /// Score every action under the current model.
    #[must_use]
    pub fn scores(&self, context: &FeatureVector, actions: &[FeatureVector]) -> Vec<f64> {
        actions
            .iter()
            .map(|a| self.model.score(&Self::joint(context, a)))
            .collect()
    }

    /// Score every action of a prebuilt [`SparseSlate`] — bit-identical to
    /// [`ContextualBandit::scores`] over the slate's source vectors, without
    /// re-featurizing or allocating per action.
    #[must_use]
    pub fn scores_slate(&self, slate: &SparseSlate) -> Vec<f64> {
        self.model.score_slate(slate)
    }

    /// The uniform logging policy's decision over precomputed `scores`.
    /// Deterministic given `seed`; the seeded RNG draws exactly what
    /// [`ContextualBandit::rank_uniform`] always drew (one int range).
    fn decide_uniform(scores: Vec<f64>, seed: u64) -> RankDecision {
        assert!(!scores.is_empty(), "rank needs at least one action");
        let mut rng = StdRng::seed_from_u64(seed);
        let chosen = rng.random_range(0..scores.len());
        RankDecision {
            chosen,
            probability: 1.0 / scores.len() as f64,
            scores,
        }
    }

    /// The epsilon-greedy decision over precomputed `scores`, preserving
    /// [`ContextualBandit::rank`]'s exact draw order: one float range, then
    /// an int range only on the exploration branch.
    fn decide_eps_greedy(&self, scores: Vec<f64>, seed: u64) -> RankDecision {
        assert!(!scores.is_empty(), "rank needs at least one action");
        let greedy = argmax(&scores);
        let k = scores.len() as f64;
        let eps = self.config.epsilon;
        let mut rng = StdRng::seed_from_u64(seed);
        let chosen = if rng.random_range(0.0..1.0) < eps {
            rng.random_range(0..scores.len())
        } else {
            greedy
        };
        let probability = if chosen == greedy {
            1.0 - eps + eps / k
        } else {
            eps / k
        };
        RankDecision {
            chosen,
            probability,
            scores,
        }
    }

    /// The uniform logging policy's decision over precomputed scores — the
    /// tail of [`ContextualBandit::rank_uniform`] once scoring is done.
    /// Lets callers score a slate once and decide many times (the scores
    /// only change when the model does, i.e. on reward).
    #[must_use]
    pub fn rank_uniform_scored(scores: Vec<f64>, seed: u64) -> RankDecision {
        Self::decide_uniform(scores, seed)
    }

    /// The epsilon-greedy decision over precomputed scores — the tail of
    /// [`ContextualBandit::rank`] once scoring is done.
    #[must_use]
    pub fn rank_scored(&self, scores: Vec<f64>, seed: u64) -> RankDecision {
        self.decide_eps_greedy(scores, seed)
    }

    /// Uniform-at-random logging policy (the paper's §4.2 data-gathering
    /// arm). Deterministic given `seed`.
    #[must_use]
    pub fn rank_uniform(
        &self,
        context: &FeatureVector,
        actions: &[FeatureVector],
        seed: u64,
    ) -> RankDecision {
        Self::decide_uniform(self.scores(context, actions), seed)
    }

    /// [`ContextualBandit::rank_uniform`] over a prebuilt slate —
    /// bit-identical decision, batched scoring.
    #[must_use]
    pub fn rank_uniform_slate(&self, slate: &SparseSlate, seed: u64) -> RankDecision {
        Self::decide_uniform(self.scores_slate(slate), seed)
    }

    /// Epsilon-greedy learned policy. Deterministic given `seed`.
    #[must_use]
    pub fn rank(
        &self,
        context: &FeatureVector,
        actions: &[FeatureVector],
        seed: u64,
    ) -> RankDecision {
        self.decide_eps_greedy(self.scores(context, actions), seed)
    }

    /// [`ContextualBandit::rank`] over a prebuilt slate — bit-identical
    /// decision, batched scoring.
    #[must_use]
    pub fn rank_slate(&self, slate: &SparseSlate, seed: u64) -> RankDecision {
        self.decide_eps_greedy(self.scores_slate(slate), seed)
    }

    /// Greedy exploitation (used when deploying the final recommendation).
    #[must_use]
    pub fn rank_greedy(&self, context: &FeatureVector, actions: &[FeatureVector]) -> RankDecision {
        assert!(!actions.is_empty(), "rank needs at least one action");
        let scores = self.scores(context, actions);
        let chosen = argmax(&scores);
        RankDecision {
            chosen,
            probability: 1.0,
            scores,
        }
    }

    /// Off-policy reward update: inverse-propensity-weighted regression of
    /// the chosen action's joint features toward the observed reward.
    pub fn reward(
        &mut self,
        context: &FeatureVector,
        action: &FeatureVector,
        reward: f64,
        logged_probability: f64,
    ) {
        let importance = (1.0 / logged_probability.max(1e-6)).min(self.config.max_importance);
        let joint = Self::joint(context, action);
        self.model
            .update(&joint, reward, importance, self.config.learning_rate);
        self.events += 1;
    }
}

fn argmax(scores: &[f64]) -> usize {
    let mut best = 0;
    for (i, s) in scores.iter().enumerate() {
        if *s > scores[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn action(name: &str) -> FeatureVector {
        let mut f = FeatureVector::new();
        f.flag("action", name);
        f
    }

    fn context(name: &str) -> FeatureVector {
        let mut f = FeatureVector::new();
        f.flag("ctx", name);
        f
    }

    #[test]
    fn uniform_policy_has_uniform_propensity() {
        let cb = ContextualBandit::new(CbConfig::default());
        let actions = vec![action("a"), action("b"), action("c"), action("d")];
        let d = cb.rank_uniform(&context("x"), &actions, 3);
        assert!((d.probability - 0.25).abs() < 1e-12);
        assert!(d.chosen < 4);
        // Deterministic per seed; varies across seeds.
        assert_eq!(d.chosen, cb.rank_uniform(&context("x"), &actions, 3).chosen);
        let picks: std::collections::HashSet<usize> = (0..64)
            .map(|s| cb.rank_uniform(&context("x"), &actions, s).chosen)
            .collect();
        assert!(picks.len() > 1);
    }

    #[test]
    fn bandit_learns_context_dependent_best_action() {
        let mut cb = ContextualBandit::new(CbConfig {
            epsilon: 0.2,
            learning_rate: 0.3,
            dim_bits: 18,
            max_importance: 50.0,
            batch_rank: true,
        });
        let actions = vec![action("a0"), action("a1")];
        // Ground truth: action 0 is good in context A, action 1 in context B.
        let truth = |ctx: &str, a: usize| -> f64 {
            match (ctx, a) {
                ("A", 0) | ("B", 1) => 1.0,
                _ => 0.0,
            }
        };
        for i in 0..800u64 {
            let ctx_name = if i % 2 == 0 { "A" } else { "B" };
            let ctx = context(ctx_name);
            let d = cb.rank_uniform(&ctx, &actions, i);
            let r = truth(ctx_name, d.chosen);
            cb.reward(&ctx, &actions[d.chosen], r, d.probability);
        }
        assert_eq!(cb.rank_greedy(&context("A"), &actions).chosen, 0);
        assert_eq!(cb.rank_greedy(&context("B"), &actions).chosen, 1);
    }

    #[test]
    fn epsilon_greedy_probabilities_are_correct() {
        let cb = ContextualBandit::new(CbConfig {
            epsilon: 0.4,
            ..CbConfig::default()
        });
        let actions = vec![action("a"), action("b")];
        let mut greedy_p = None;
        let mut explore_p = None;
        for seed in 0..200 {
            let d = cb.rank(&context("x"), &actions, seed);
            if d.chosen == argmax(&d.scores) {
                greedy_p = Some(d.probability);
            } else {
                explore_p = Some(d.probability);
            }
        }
        assert!((greedy_p.unwrap() - (0.6 + 0.2)).abs() < 1e-12);
        if let Some(p) = explore_p {
            assert!((p - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn propensities_form_a_distribution() {
        // Sum over actions of P(choose a) equals 1 for epsilon-greedy.
        let cb = ContextualBandit::new(CbConfig {
            epsilon: 0.3,
            ..CbConfig::default()
        });
        let actions = vec![action("a"), action("b"), action("c")];
        let d = cb.rank(&context("x"), &actions, 0);
        let greedy = argmax(&d.scores);
        let k = actions.len() as f64;
        let total: f64 = (0..actions.len())
            .map(|i| {
                if i == greedy {
                    1.0 - 0.3 + 0.3 / k
                } else {
                    0.3 / k
                }
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn importance_weights_are_capped() {
        let mut cb = ContextualBandit::new(CbConfig {
            max_importance: 2.0,
            ..CbConfig::default()
        });
        // Tiny logged probability must not explode the update.
        let ctx = context("x");
        let a = action("a");
        cb.reward(&ctx, &a, 1.0, 1e-9);
        let s = cb.scores(&ctx, &[a]);
        assert!(s[0].is_finite());
        assert!(s[0] < 3.0);
    }

    #[test]
    fn single_action_slate_is_forced() {
        let cb = ContextualBandit::new(CbConfig::default());
        let d = cb.rank(&context("x"), &[action("only")], 1);
        assert_eq!(d.chosen, 0);
        assert!((d.probability - 1.0).abs() < 1e-9);
    }
}

//! Offline (counterfactual) policy evaluation from logged bandit data.
//!
//! "Azure Personalizer ... logs with high fidelity so that we can
//! counter-factually evaluate policies" (§4.2). Given events logged under a
//! known behaviour policy, the value of a *different* target policy is
//! estimated without running it: IPS re-weights rewards by
//! `1[target == logged] / p_logged`; SNIPS normalizes by the summed weights
//! to trade a little bias for much lower variance.

use serde::{Deserialize, Serialize};

/// One logged decision with the target policy's agreement bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoggedOutcome {
    /// Would the target policy have chosen the logged action?
    pub target_agrees: bool,
    /// Propensity of the logged action under the behaviour policy.
    pub logged_probability: f64,
    /// Observed reward of the logged action.
    pub reward: f64,
}

/// Inverse-propensity-scoring estimate of the target policy's value.
#[must_use]
pub fn ips_estimate(events: &[LoggedOutcome]) -> f64 {
    if events.is_empty() {
        return 0.0;
    }
    let sum: f64 = events
        .iter()
        .map(|e| {
            if e.target_agrees {
                e.reward / e.logged_probability.max(1e-9)
            } else {
                0.0
            }
        })
        .sum();
    sum / events.len() as f64
}

/// Self-normalized IPS: divides by the total importance weight instead of
/// the event count.
#[must_use]
pub fn snips_estimate(events: &[LoggedOutcome]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for e in events {
        if e.target_agrees {
            let w = 1.0 / e.logged_probability.max(1e-9);
            num += w * e.reward;
            den += w;
        }
    }
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(agrees: bool, p: f64, r: f64) -> LoggedOutcome {
        LoggedOutcome {
            target_agrees: agrees,
            logged_probability: p,
            reward: r,
        }
    }

    #[test]
    fn ips_is_unbiased_for_uniform_logging() {
        // Two actions, uniform logging (p = 0.5). Target always picks action
        // 0, whose true reward is 1.0; action 1 pays 0. Logged data has half
        // agreements.
        let events: Vec<LoggedOutcome> = (0..1000)
            .map(|i| {
                let logged_action = i % 2; // uniform
                if logged_action == 0 {
                    ev(true, 0.5, 1.0)
                } else {
                    ev(false, 0.5, 0.0)
                }
            })
            .collect();
        let v = ips_estimate(&events);
        assert!((v - 1.0).abs() < 1e-9, "IPS value {v}");
    }

    #[test]
    fn snips_matches_ips_on_balanced_data_and_is_bounded() {
        let events: Vec<LoggedOutcome> = (0..100)
            .map(|i| ev(i % 2 == 0, 0.5, if i % 2 == 0 { 0.8 } else { 0.1 }))
            .collect();
        let snips = snips_estimate(&events);
        assert!(
            (snips - 0.8).abs() < 1e-9,
            "SNIPS averages agreeing rewards: {snips}"
        );
        // SNIPS of constant rewards is that constant, regardless of weights.
        let skewed: Vec<LoggedOutcome> =
            vec![ev(true, 0.01, 0.7), ev(true, 0.9, 0.7), ev(false, 0.5, 0.0)];
        assert!((snips_estimate(&skewed) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn empty_logs_are_zero() {
        assert_eq!(ips_estimate(&[]), 0.0);
        assert_eq!(snips_estimate(&[]), 0.0);
        assert_eq!(snips_estimate(&[ev(false, 0.5, 1.0)]), 0.0);
    }

    #[test]
    fn ips_variance_grows_with_small_propensities() {
        // A single agreeing event with tiny propensity dominates IPS but not
        // SNIPS — the reason QO-Advisor caps importance weights.
        let events = vec![
            ev(true, 0.001, 1.0),
            ev(false, 0.5, 0.0),
            ev(false, 0.5, 0.0),
        ];
        assert!(ips_estimate(&events) > 100.0);
        assert!((snips_estimate(&events) - 1.0).abs() < 1e-9);
    }
}

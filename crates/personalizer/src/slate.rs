//! Batched slate scoring over a CSR sparse layout.
//!
//! `rank` builds the joint (context × action) feature vector of every action
//! and walks the model's weight table per action — allocating `1 + S` joint
//! vectors and re-hashing the quadratic block on every call. A
//! [`SparseSlate`] does that work once: the joint features of all actions
//! are laid out contiguously in CSR form (`indptr` / `slots` / `values`),
//! with every hashed feature id already folded into the model's table
//! (`key & (2^dim_bits − 1)`), so scoring an action is a gather-multiply
//! over two flat arrays and scoring the slate touches no allocator at all.
//!
//! The layout replicates [`ContextualBandit::joint`] exactly — action main
//! effects first, then the context×action quadratic block in
//! context-major order with the same `cv * av * scale` multiply order — and
//! scores accumulate left-to-right like `LinearModel::score`, so batched
//! scores are **bit-identical** to the sequential path (f64 addition is not
//! associative; order is part of the contract, asserted by the property
//! test below). A slate can be built once (e.g. in a parallel featurization
//! fan-out) and ranked several times: the training and acting rank calls of
//! a pipeline job share one slate.

use crate::bandit::{ContextualBandit, QUADRATIC_SCALE};
use crate::features::FeatureVector;
use scope_ir::ids::mix64;

/// The joint features of a whole action slate in CSR form, pre-folded into
/// a `2^dim_bits` model table.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSlate {
    /// Table size the slot indices were folded for; models assert it.
    dim_bits: u32,
    /// `indptr[i]..indptr[i+1]` is action `i`'s slice of `slots`/`values`.
    indptr: Vec<usize>,
    /// Model-table indices (`key & (2^dim_bits − 1)`; fits u32 for every
    /// legal `dim_bits`).
    slots: Vec<u32>,
    values: Vec<f64>,
}

impl SparseSlate {
    /// Lay out the joint features of `actions` under `context`, folded for a
    /// `2^dim_bits` weight table. Item order per action is exactly
    /// [`ContextualBandit::joint`]'s: the action's own features, then
    /// context×action crosses in context-major order.
    #[must_use]
    pub fn build(context: &FeatureVector, actions: &[FeatureVector], dim_bits: u32) -> Self {
        let mask = (1u64 << dim_bits) - 1;
        let ctx = context.items();
        let nnz: usize = actions.iter().map(|a| a.len() * (1 + ctx.len())).sum();
        let mut indptr = Vec::with_capacity(actions.len() + 1);
        let mut slots = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0);
        for action in actions {
            for &(ak, av) in action.items() {
                slots.push((ak & mask) as u32);
                values.push(av);
            }
            for &(ck, cv) in ctx {
                for &(ak, av) in action.items() {
                    slots.push((mix64(ck, ak) & mask) as u32);
                    values.push(cv * av * QUADRATIC_SCALE);
                }
            }
            indptr.push(slots.len());
        }
        Self {
            dim_bits,
            indptr,
            slots,
            values,
        }
    }

    /// Table size (bits) the slots were folded for.
    #[must_use]
    pub fn dim_bits(&self) -> u32 {
        self.dim_bits
    }

    /// Number of actions laid out.
    #[must_use]
    pub fn num_actions(&self) -> usize {
        self.indptr.len() - 1
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.num_actions() == 0
    }

    /// Total laid-out (slot, value) pairs across all actions.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.slots.len()
    }

    /// Action `i`'s (slots, values) slices, in joint-feature order.
    #[must_use]
    pub fn action(&self, i: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
        (&self.slots[lo..hi], &self.values[lo..hi])
    }
}

/// Convenience used by property tests and callers that want to check the
/// batched layout against the sequential joint featurization.
#[must_use]
pub fn sequential_joint(context: &FeatureVector, action: &FeatureVector) -> FeatureVector {
    ContextualBandit::joint(context, action)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandit::CbConfig;
    use crate::model::LinearModel;
    use proptest::prelude::*;

    fn fv(pairs: &[(&str, f64)]) -> FeatureVector {
        let mut f = FeatureVector::new();
        for (name, v) in pairs {
            f.push("t", name, *v);
        }
        f
    }

    #[test]
    fn layout_matches_sequential_joint() {
        let ctx = fv(&[("c1", 1.5), ("c2", -2.0)]);
        let actions = vec![fv(&[("a", 1.0)]), fv(&[("b", 2.0), ("c", 0.5)])];
        let dim_bits = 16;
        let slate = SparseSlate::build(&ctx, &actions, dim_bits);
        assert_eq!(slate.num_actions(), 2);
        let mask = (1u64 << dim_bits) - 1;
        for (i, action) in actions.iter().enumerate() {
            let joint = sequential_joint(&ctx, action);
            let (slots, values) = slate.action(i);
            assert_eq!(slots.len(), joint.len());
            for (j, &(k, v)) in joint.items().iter().enumerate() {
                assert_eq!(u64::from(slots[j]), k & mask, "slot {j} of action {i}");
                assert!(
                    values[j].to_bits() == v.to_bits(),
                    "value {j} of action {i}"
                );
            }
        }
    }

    #[test]
    fn empty_actions_and_empty_context_are_representable() {
        let slate = SparseSlate::build(&FeatureVector::new(), &[], 12);
        assert!(slate.is_empty());
        assert_eq!(slate.nnz(), 0);
        let slate = SparseSlate::build(&FeatureVector::new(), &[fv(&[("a", 1.0)])], 12);
        assert_eq!(slate.num_actions(), 1);
        assert_eq!(slate.nnz(), 1, "no context ⇒ main effects only");
    }

    /// Strategy producing a feature vector of up to `n` features with values
    /// spanning many magnitudes (duplicate names — and so duplicate hashed
    /// keys — are allowed and must fold identically on both paths).
    fn arb_fv(n: usize) -> impl Strategy<Value = FeatureVector> {
        prop::collection::vec((0usize..8, -1e6f64..1e6), 0..n).prop_map(|pairs| {
            let mut f = FeatureVector::new();
            for (name_idx, v) in pairs {
                f.push("p", &format!("f{name_idx}"), v);
            }
            f
        })
    }

    proptest! {
        /// The tentpole contract: batched slate scores are bit-identical to
        /// per-action `rank` scoring for arbitrary slates — including
        /// duplicate feature keys, which both paths keep as separate items.
        #[test]
        fn batched_scores_bit_equal_sequential(
            ctx in arb_fv(6),
            actions in prop::collection::vec(arb_fv(5), 1..6),
            seed in 0u64..1000,
        ) {
            let mut cb = ContextualBandit::new(CbConfig { dim_bits: 14, ..CbConfig::default() });
            // A trained model, so weights are non-zero and order matters.
            for (i, a) in actions.iter().enumerate() {
                cb.reward(&ctx, a, (i as f64) - 1.0, 0.5);
            }
            let slate = SparseSlate::build(&ctx, &actions, cb.config().dim_bits);
            let seq = cb.scores(&ctx, &actions);
            let bat = cb.scores_slate(&slate);
            prop_assert_eq!(seq.len(), bat.len());
            for (s, b) in seq.iter().zip(&bat) {
                prop_assert_eq!(s.to_bits(), b.to_bits(), "scores must be bit-identical");
            }
            // And the full rank decisions (choice, propensity, scores) agree.
            let d_seq = cb.rank(&ctx, &actions, seed);
            let d_bat = cb.rank_slate(&slate, seed);
            prop_assert_eq!(d_seq, d_bat);
            let u_seq = cb.rank_uniform(&ctx, &actions, seed);
            let u_bat = cb.rank_uniform_slate(&slate, seed);
            prop_assert_eq!(u_seq, u_bat);
        }
    }

    #[test]
    fn model_scores_slate_through_the_table() {
        let ctx = fv(&[("c", 2.0)]);
        let actions = vec![fv(&[("x", 1.0)]), fv(&[("y", 3.0)])];
        let mut model = LinearModel::new(12);
        model.update(&sequential_joint(&ctx, &actions[0]), 1.0, 1.0, 0.5);
        let slate = SparseSlate::build(&ctx, &actions, 12);
        let batched = model.score_slate(&slate);
        for (i, action) in actions.iter().enumerate() {
            let s = model.score(&sequential_joint(&ctx, action));
            assert_eq!(s.to_bits(), batched[i].to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "dim_bits")]
    fn model_rejects_mismatched_slate_fold() {
        let model = LinearModel::new(12);
        let slate = SparseSlate::build(&fv(&[("c", 1.0)]), &[fv(&[("a", 1.0)])], 14);
        let _ = model.score_slate(&slate);
    }
}

//! The Personalizer facade: a rank/reward service with a durable event log,
//! mirroring how QO-Advisor integrates with Azure Personalizer (§4.2): rank
//! calls return an event id; rewards arrive later (after recompilation
//! computes the cost ratio) keyed by that id.

use crate::bandit::{CbConfig, ContextualBandit, RankDecision};
use crate::counterfactual::LoggedOutcome;
use crate::features::FeatureVector;
use crate::model::LinearModel;
use crate::slate::SparseSlate;
use parking_lot::Mutex;
use rustc_hash::FxHashMap;

/// A rank request: context plus candidate actions.
#[derive(Debug, Clone)]
pub struct RankRequest {
    pub context: FeatureVector,
    pub actions: Vec<FeatureVector>,
    /// Deterministic exploration seed (e.g. hash of job id).
    pub seed: u64,
    /// Use the uniform logging policy instead of the learned policy.
    pub log_uniform: bool,
}

/// A rank response: the decision plus the event id to reward later.
#[derive(Debug, Clone)]
pub struct RankResponse {
    pub event_id: u64,
    pub decision: RankDecision,
}

#[derive(Debug)]
struct PendingEvent {
    context: FeatureVector,
    action: FeatureVector,
    probability: f64,
}

/// One not-yet-rewarded rank decision, in snapshot form.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingEventState {
    pub event_id: u64,
    pub context: FeatureVector,
    pub action: FeatureVector,
    pub probability: f64,
}

/// The full durable state of a [`Personalizer`], as exported for (and
/// restored from) a `scope-state` snapshot. Everything the rank/reward
/// loop's future behavior depends on is here: the model weight table and
/// its counters, the event-id allocator, the pending decisions, and the
/// counterfactual history. `pending` is sorted by event id so the export
/// itself is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct PersonalizerState {
    pub dim_bits: u32,
    pub weights: Vec<f64>,
    /// Model updates absorbed ([`crate::model::LinearModel::updates`]).
    pub updates: u64,
    /// Rewarded events absorbed ([`ContextualBandit::events`]).
    pub events: u64,
    /// Next event id the allocator will hand out.
    pub next_event: u64,
    pub pending: Vec<PendingEventState>,
    pub history: Vec<LoggedOutcome>,
}

/// The decision service. Interior mutability lets rank/reward interleave
/// from pipeline stages without plumbing `&mut` through.
#[derive(Debug)]
pub struct Personalizer {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    bandit: ContextualBandit,
    pending: FxHashMap<u64, PendingEvent>,
    history: Vec<LoggedOutcome>,
    next_event: u64,
}

impl Inner {
    /// Assign the next event id and log the decision as pending — the
    /// shared tail of every rank entry point.
    fn log_decision(inner: &mut Inner, req: &RankRequest, decision: RankDecision) -> RankResponse {
        let event_id = inner.next_event;
        inner.next_event += 1;
        inner.pending.insert(
            event_id,
            PendingEvent {
                context: req.context.clone(),
                action: req.actions[decision.chosen].clone(),
                probability: decision.probability,
            },
        );
        RankResponse { event_id, decision }
    }
}

impl Personalizer {
    #[must_use]
    pub fn new(config: CbConfig) -> Self {
        Self {
            inner: Mutex::new(Inner {
                bandit: ContextualBandit::new(config),
                pending: FxHashMap::default(),
                history: Vec::new(),
                next_event: 1,
            }),
        }
    }

    /// Rank a slate; the decision is logged as pending until rewarded.
    pub fn rank(&self, req: &RankRequest) -> RankResponse {
        let mut inner = self.inner.lock();
        let decision = if req.log_uniform {
            inner
                .bandit
                .rank_uniform(&req.context, &req.actions, req.seed)
        } else {
            inner.bandit.rank(&req.context, &req.actions, req.seed)
        };
        Inner::log_decision(&mut inner, req, decision)
    }

    /// [`Personalizer::rank`] through a prebuilt [`SparseSlate`] (built once
    /// per request, e.g. in a parallel featurization fan-out, and shared by
    /// the training and acting rank calls). The decision — choice,
    /// propensity, scores, event id — is bit-identical to [`Personalizer::
    /// rank`] over the request's `context`/`actions`; only the scoring path
    /// differs. The request still carries the full feature vectors: the
    /// pending-event log stores them for the eventual reward update.
    pub fn rank_slate(&self, req: &RankRequest, slate: &SparseSlate) -> RankResponse {
        debug_assert_eq!(
            slate.num_actions(),
            req.actions.len(),
            "slate laid out for a different action set"
        );
        let mut inner = self.inner.lock();
        let decision = if req.log_uniform {
            inner.bandit.rank_uniform_slate(slate, req.seed)
        } else {
            inner.bandit.rank_slate(slate, req.seed)
        };
        Inner::log_decision(&mut inner, req, decision)
    }

    /// Score a prebuilt slate under the current model, without ranking or
    /// logging anything. Pair with [`Personalizer::rank_scored`]: the model
    /// only changes on [`Personalizer::reward`], so in a ranks-then-rewards
    /// pass one score vector per distinct slate serves every rank over it.
    pub fn scores_slate(&self, slate: &SparseSlate) -> Vec<f64> {
        self.inner.lock().bandit.scores_slate(slate)
    }

    /// [`Personalizer::rank_slate`] with the scoring pass hoisted out:
    /// decide and log from `scores` previously computed by
    /// [`Personalizer::scores_slate`]. Bit-identical to `rank_slate` as
    /// long as no reward landed between scoring and ranking — the caller's
    /// contract (the pipeline's rank pass rewards only after every rank).
    pub fn rank_scored(&self, req: &RankRequest, scores: &[f64]) -> RankResponse {
        debug_assert_eq!(
            scores.len(),
            req.actions.len(),
            "scores computed for a different action set"
        );
        let mut inner = self.inner.lock();
        let decision = if req.log_uniform {
            ContextualBandit::rank_uniform_scored(scores.to_vec(), req.seed)
        } else {
            inner.bandit.rank_scored(scores.to_vec(), req.seed)
        };
        Inner::log_decision(&mut inner, req, decision)
    }

    /// Reward a previously ranked event; updates the model off-policy and
    /// appends to the counterfactual log. Unknown ids are ignored (Azure
    /// Personalizer drops late rewards the same way).
    pub fn reward(&self, event_id: u64, reward: f64) {
        let mut inner = self.inner.lock();
        let Some(ev) = inner.pending.remove(&event_id) else {
            return;
        };
        inner
            .bandit
            .reward(&ev.context, &ev.action, reward, ev.probability);
        inner.history.push(LoggedOutcome {
            target_agrees: true, // filled properly by evaluate_against
            logged_probability: ev.probability,
            reward,
        });
    }

    /// Greedy decision without logging (deployment-time inference).
    pub fn best_action(&self, context: &FeatureVector, actions: &[FeatureVector]) -> RankDecision {
        self.inner.lock().bandit.rank_greedy(context, actions)
    }

    /// Events absorbed so far.
    pub fn events(&self) -> u64 {
        self.inner.lock().bandit.events
    }

    /// Number of rank calls not yet rewarded.
    pub fn pending(&self) -> usize {
        self.inner.lock().pending.len()
    }

    /// Raw logged outcomes (for counterfactual estimators).
    pub fn history(&self) -> Vec<LoggedOutcome> {
        self.inner.lock().history.clone()
    }

    /// Export the full durable state for a snapshot. Deterministic: the
    /// pending map is sorted by event id before leaving the lock.
    #[must_use]
    pub fn export_state(&self) -> PersonalizerState {
        let inner = self.inner.lock();
        let model = inner.bandit.model();
        let mut pending: Vec<PendingEventState> = inner
            .pending
            // qo-lint: allow(unordered-iter) — collected and sorted by event id below
            .iter()
            .map(|(&event_id, ev)| PendingEventState {
                event_id,
                context: ev.context.clone(),
                action: ev.action.clone(),
                probability: ev.probability,
            })
            .collect();
        pending.sort_by_key(|p| p.event_id);
        PersonalizerState {
            dim_bits: model.dim_bits(),
            weights: model.weights().to_vec(),
            updates: model.updates,
            events: inner.bandit.events,
            next_event: inner.next_event,
            pending,
            history: inner.history.clone(),
        }
    }

    /// Replace the live state with a snapshot export. The bandit keeps its
    /// construction-time [`CbConfig`]; the snapshot must have been taken
    /// under the same hashed-table size, and a malformed weight table is an
    /// error (restore never panics and never partially applies). Only
    /// `dim_bits` is checked *here* — it is the one knob that makes the
    /// state structurally uninterpretable. The remaining `CbConfig` fields
    /// (epsilon, learning rate, …) are covered by the pipeline-config
    /// fingerprint in the snapshot's META section, checked before this
    /// method is ever reached on the steering-loop restore path.
    pub fn restore_state(&self, state: PersonalizerState) -> Result<(), String> {
        let mut inner = self.inner.lock();
        let config = inner.bandit.config().clone();
        if config.dim_bits != state.dim_bits {
            return Err(format!(
                "snapshot bandit table uses dim_bits {} but this process is configured with {}",
                state.dim_bits, config.dim_bits
            ));
        }
        let Some(model) = LinearModel::from_parts(state.dim_bits, state.weights, state.updates)
        else {
            return Err(format!(
                "snapshot weight table does not match 2^{} entries",
                state.dim_bits
            ));
        };
        let mut pending = FxHashMap::default();
        // qo-lint: allow(unordered-iter) — snapshot Vec, sorted at export
        for p in state.pending {
            if pending
                .insert(
                    p.event_id,
                    PendingEvent {
                        context: p.context,
                        action: p.action,
                        probability: p.probability,
                    },
                )
                .is_some()
            {
                return Err(format!("duplicate pending event id {}", p.event_id));
            }
        }
        inner.bandit = ContextualBandit::from_parts(config, model, state.events);
        inner.pending = pending;
        inner.history = state.history;
        inner.next_event = state.next_event;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(name: &str) -> FeatureVector {
        let mut f = FeatureVector::new();
        f.flag("t", name);
        f
    }

    fn request(seed: u64, uniform: bool) -> RankRequest {
        RankRequest {
            context: fv("ctx"),
            actions: vec![fv("a0"), fv("a1"), fv("a2")],
            seed,
            log_uniform: uniform,
        }
    }

    #[test]
    fn rank_then_reward_consumes_pending() {
        let svc = Personalizer::new(CbConfig::default());
        let resp = svc.rank(&request(1, true));
        assert_eq!(svc.pending(), 1);
        svc.reward(resp.event_id, 1.0);
        assert_eq!(svc.pending(), 0);
        assert_eq!(svc.events(), 1);
        assert_eq!(svc.history().len(), 1);
    }

    #[test]
    fn unknown_event_ids_are_ignored() {
        let svc = Personalizer::new(CbConfig::default());
        svc.reward(999, 1.0);
        assert_eq!(svc.events(), 0);
    }

    #[test]
    fn event_ids_are_unique_and_monotonic() {
        let svc = Personalizer::new(CbConfig::default());
        let a = svc.rank(&request(1, true));
        let b = svc.rank(&request(2, true));
        assert!(b.event_id > a.event_id);
    }

    #[test]
    fn service_learns_through_rank_reward_loop() {
        let svc = Personalizer::new(CbConfig {
            epsilon: 0.3,
            learning_rate: 0.3,
            dim_bits: 16,
            max_importance: 20.0,
            batch_rank: true,
        });
        // Action 2 always pays.
        for seed in 0..600 {
            let resp = svc.rank(&request(seed, true));
            let r = if resp.decision.chosen == 2 { 1.0 } else { 0.0 };
            svc.reward(resp.event_id, r);
        }
        let best = svc.best_action(&fv("ctx"), &[fv("a0"), fv("a1"), fv("a2")]);
        assert_eq!(best.chosen, 2);
        assert!((best.probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scored_path_matches_rank_slate_bit_for_bit() {
        let a = Personalizer::new(CbConfig::default());
        let b = Personalizer::new(CbConfig::default());
        for seed in 0..32 {
            for uniform in [false, true] {
                let req = request(seed, uniform);
                let slate = SparseSlate::build(&req.context, &req.actions, 20);
                let want = a.rank_slate(&req, &slate);
                let scores = b.scores_slate(&slate);
                let got = b.rank_scored(&req, &scores);
                assert_eq!(got.event_id, want.event_id);
                assert_eq!(got.decision, want.decision);
            }
        }
        assert_eq!(a.pending(), b.pending());
    }

    #[test]
    fn exported_state_restores_into_an_identical_service() {
        let svc = Personalizer::new(CbConfig::default());
        for seed in 0..40 {
            let resp = svc.rank(&request(seed, seed % 2 == 0));
            if seed % 3 != 0 {
                // Leave some events pending so the export carries them.
                svc.reward(
                    resp.event_id,
                    if resp.decision.chosen == 1 { 1.0 } else { -0.5 },
                );
            }
        }
        let state = svc.export_state();
        assert!(!state.pending.is_empty(), "some events must stay pending");
        assert!(state.events > 0);

        let fresh = Personalizer::new(CbConfig::default());
        fresh.restore_state(state.clone()).unwrap();
        assert_eq!(
            fresh.export_state(),
            state,
            "export/restore/export fixpoint"
        );
        // Future decisions are bit-identical between original and restoree.
        for seed in 100..120 {
            let a = svc.rank(&request(seed, false));
            let b = fresh.rank(&request(seed, false));
            assert_eq!(a.event_id, b.event_id);
            assert_eq!(a.decision, b.decision);
            svc.reward(a.event_id, 0.25);
            fresh.reward(b.event_id, 0.25);
        }
        assert_eq!(svc.export_state(), fresh.export_state());
    }

    #[test]
    fn restore_rejects_mismatched_table_sizes() {
        let svc = Personalizer::new(CbConfig::default());
        let mut state = svc.export_state();
        state.weights.pop();
        assert!(svc.restore_state(state).is_err(), "short weight table");
        let other = Personalizer::new(CbConfig {
            dim_bits: 12,
            ..CbConfig::default()
        });
        assert!(
            other.restore_state(svc.export_state()).is_err(),
            "dim_bits mismatch between snapshot and live config"
        );
    }

    #[test]
    fn double_reward_is_a_noop() {
        let svc = Personalizer::new(CbConfig::default());
        let resp = svc.rank(&request(1, true));
        svc.reward(resp.event_id, 1.0);
        svc.reward(resp.event_id, 1.0);
        assert_eq!(svc.events(), 1, "second reward dropped");
    }
}

//! Property-based tests for the bandit's statistical invariants.

use personalizer::{
    ips_estimate, snips_estimate, CbConfig, ContextualBandit, FeatureVector, LoggedOutcome,
};
use proptest::prelude::*;

fn fv(names: &[String]) -> FeatureVector {
    let mut f = FeatureVector::new();
    for n in names {
        f.flag("t", n);
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Epsilon-greedy propensities always form a probability distribution
    /// and the reported probability matches the chosen arm's true mass.
    #[test]
    fn propensities_form_distribution(
        eps in 0.0f64..1.0,
        n_actions in 1usize..12,
        seed in any::<u64>(),
    ) {
        let cb = ContextualBandit::new(CbConfig { epsilon: eps, ..CbConfig::default() });
        let ctx = fv(&["ctx".to_string()]);
        let actions: Vec<FeatureVector> =
            (0..n_actions).map(|i| fv(&[format!("a{i}")])).collect();
        let d = cb.rank(&ctx, &actions, seed);
        prop_assert!(d.chosen < n_actions);
        prop_assert!(d.probability > 0.0 && d.probability <= 1.0);
        let k = n_actions as f64;
        let greedy_mass = 1.0 - eps + eps / k;
        let explore_mass = eps / k;
        prop_assert!(
            (d.probability - greedy_mass).abs() < 1e-9
                || (d.probability - explore_mass).abs() < 1e-9
        );
    }

    /// Rewards are bounded => scores stay bounded no matter the update
    /// sequence (stability of the clamped normalized-SGD update).
    #[test]
    fn scores_stay_bounded_under_bounded_rewards(
        rewards in prop::collection::vec(0.0f64..2.0, 1..200),
        probs in prop::collection::vec(0.05f64..1.0, 1..200),
    ) {
        let mut cb = ContextualBandit::new(CbConfig::default());
        let ctx = fv(&["c1".to_string(), "c2".to_string()]);
        let a = fv(&["act".to_string()]);
        for (r, p) in rewards.iter().zip(probs.iter().cycle()) {
            cb.reward(&ctx, &a, *r, *p);
        }
        let s = cb.scores(&ctx, &[a]);
        prop_assert!(s[0].is_finite());
        prop_assert!(s[0].abs() < 100.0, "score {}", s[0]);
    }

    /// IPS of the logging policy itself equals the empirical mean reward
    /// (sanity identity: importance weights cancel exactly).
    #[test]
    fn ips_of_logging_policy_is_mean_reward(
        rewards in prop::collection::vec(0.0f64..2.0, 1..100),
        k in 2usize..8,
    ) {
        let events: Vec<LoggedOutcome> = rewards
            .iter()
            .map(|&r| LoggedOutcome {
                target_agrees: true,
                logged_probability: 1.0 / k as f64,
                reward: r / k as f64, // pre-scale so IPS telescopes to mean
            })
            .collect();
        let mean: f64 = events.iter().map(|e| e.reward).sum::<f64>() / events.len() as f64;
        let ips = ips_estimate(&events);
        prop_assert!((ips - mean * k as f64).abs() < 1e-9);
    }

    /// SNIPS is always within the observed reward range (self-normalization
    /// makes it a convex combination of agreeing rewards).
    #[test]
    fn snips_is_convex_combination(
        events in prop::collection::vec(
            (any::<bool>(), 0.01f64..1.0, 0.0f64..2.0),
            1..100,
        )
    ) {
        let log: Vec<LoggedOutcome> = events
            .iter()
            .map(|&(agrees, p, r)| LoggedOutcome {
                target_agrees: agrees,
                logged_probability: p,
                reward: r,
            })
            .collect();
        let v = snips_estimate(&log);
        let agreeing: Vec<f64> =
            log.iter().filter(|e| e.target_agrees).map(|e| e.reward).collect();
        if agreeing.is_empty() {
            prop_assert_eq!(v, 0.0);
        } else {
            let lo = agreeing.iter().cloned().fold(f64::MAX, f64::min);
            let hi = agreeing.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} not in [{lo},{hi}]");
        }
    }

    /// The uniform logging policy is genuinely uniform across seeds.
    #[test]
    fn uniform_policy_covers_all_arms(n_actions in 2usize..8) {
        let cb = ContextualBandit::new(CbConfig::default());
        let ctx = fv(&["c".to_string()]);
        let actions: Vec<FeatureVector> =
            (0..n_actions).map(|i| fv(&[format!("u{i}")])).collect();
        let mut seen = vec![false; n_actions];
        for seed in 0..400u64 {
            seen[cb.rank_uniform(&ctx, &actions, seed).chosen] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "some arm never sampled: {seen:?}");
    }
}

//! Versioned, validated hint storage.

use parking_lot::RwLock;
use scope_ir::TemplateId;
use scope_opt::{Hint, HintSet, RuleConfig, RULE_COUNT};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// The on-disk hint file format published by the pipeline's Hint Generation
/// task ("the output is saved to a file in the SIS pre-defined format", §4.4).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct HintFile {
    pub version: u32,
    /// Day the generating pipeline ran over.
    pub source_day: u32,
    pub hints: Vec<Hint>,
}

/// SIS errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SisError {
    /// A hint references a rule id outside the registry.
    BadRuleId { rule: u16 },
    /// Two hints target the same template.
    DuplicateTemplate { template: TemplateId },
    /// Version must increase monotonically.
    StaleVersion { proposed: u32, current: u32 },
    /// Snapshot restore attempted on a store that already has a version
    /// installed; rewinding a live store would let future publishes re-issue
    /// version numbers whose hint files already exist on disk.
    NotPristine { current: u32 },
    /// Filesystem/serialization problems.
    Io(String),
}

impl fmt::Display for SisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SisError::BadRuleId { rule } => write!(f, "hint references invalid rule id {rule}"),
            SisError::DuplicateTemplate { template } => {
                write!(f, "duplicate hints for template {template}")
            }
            SisError::StaleVersion { proposed, current } => {
                write!(f, "version {proposed} is not newer than {current}")
            }
            SisError::NotPristine { current } => write!(
                f,
                "cannot restore a snapshot into a live store at version {current}: \
                 restore is only valid on a fresh store"
            ),
            SisError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for SisError {}

/// The hint store: validates and versions published hint files and serves
/// compile-time lookups.
#[derive(Debug)]
pub struct SisStore {
    /// Optional persistence directory; `None` keeps everything in memory.
    dir: Option<PathBuf>,
    state: RwLock<State>,
}

#[derive(Debug, Default)]
struct State {
    version: u32,
    hints: HintSet,
}

impl SisStore {
    /// In-memory store (most tests and simulations).
    #[must_use]
    pub fn in_memory() -> Self {
        Self {
            dir: None,
            state: RwLock::new(State::default()),
        }
    }

    /// Store persisting published files under `dir`.
    pub fn at_dir(dir: impl AsRef<Path>) -> Result<Self, SisError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| SisError::Io(e.to_string()))?;
        Ok(Self {
            dir: Some(dir),
            state: RwLock::new(State::default()),
        })
    }

    /// Validate a hint file's format (§4.4: SIS "validates the format before
    /// installing").
    pub fn validate(file: &HintFile) -> Result<(), SisError> {
        let mut seen = std::collections::HashSet::new();
        for h in &file.hints {
            if usize::from(h.flip.rule.0) >= RULE_COUNT {
                return Err(SisError::BadRuleId {
                    rule: h.flip.rule.0,
                });
            }
            if !seen.insert(h.template) {
                return Err(SisError::DuplicateTemplate {
                    template: h.template,
                });
            }
        }
        Ok(())
    }

    /// Publish a hint file: validate, bump version, persist, install.
    ///
    /// Version 0 is the reserved "nothing installed" sentinel
    /// ([`SisStore::version`] returns 0 for an empty store), so publishing
    /// it is rejected even into an empty store (`0 <= state.version` always
    /// holds) — accepting it would leave hints installed that every
    /// version-probing caller believes absent.
    pub fn publish(&self, file: HintFile) -> Result<u32, SisError> {
        Self::validate(&file)?;
        let mut state = self.state.write();
        if file.version <= state.version {
            return Err(SisError::StaleVersion {
                proposed: file.version,
                current: state.version,
            });
        }
        if let Some(dir) = &self.dir {
            let path = dir.join(format!("hints-v{:06}.json", file.version));
            let json =
                serde_json::to_string_pretty(&file).map_err(|e| SisError::Io(e.to_string()))?;
            std::fs::write(path, json).map_err(|e| SisError::Io(e.to_string()))?;
        }
        state.version = file.version;
        state.hints = HintSet::from_hints(file.hints);
        Ok(state.version)
    }

    /// Load the highest-versioned persisted hint file from disk and install
    /// it — unless the live in-memory version is already at least that new,
    /// in which case nothing is installed and `Ok(None)` is returned: a
    /// reload must never silently downgrade a store that has published past
    /// what is on disk (e.g. after a partial cleanup of the hint directory).
    pub fn reload_latest(&self) -> Result<Option<u32>, SisError> {
        let Some(dir) = &self.dir else {
            return Ok(None);
        };
        let mut best: Option<(u32, PathBuf)> = None;
        let entries = std::fs::read_dir(dir).map_err(|e| SisError::Io(e.to_string()))?;
        for entry in entries {
            let entry = entry.map_err(|e| SisError::Io(e.to_string()))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(v) = name
                .strip_prefix("hints-v")
                .and_then(|s| s.strip_suffix(".json"))
                .and_then(|s| s.parse::<u32>().ok())
            {
                if best.as_ref().is_none_or(|(bv, _)| v > *bv) {
                    best = Some((v, entry.path()));
                }
            }
        }
        let Some((version, path)) = best else {
            return Ok(None);
        };
        // The version comes from the filename, so a stale directory is a
        // no-op before any file is read — a corrupt file that would install
        // nothing must not fail the reload.
        if version <= self.state.read().version {
            return Ok(None);
        }
        let json = std::fs::read_to_string(path).map_err(|e| SisError::Io(e.to_string()))?;
        let file: HintFile =
            serde_json::from_str(&json).map_err(|e| SisError::Io(e.to_string()))?;
        Self::validate(&file)?;
        let mut state = self.state.write();
        if version <= state.version {
            return Ok(None);
        }
        state.version = version;
        state.hints = HintSet::from_hints(file.hints);
        Ok(Some(version))
    }

    /// Install snapshot-restored state directly: set the live version and
    /// hints without writing a hint file (the files from before the
    /// snapshot are already on disk). Only a **pristine** store — version 0,
    /// nothing ever published or reloaded — may restore: rewinding a live
    /// store would bypass the monotonic-version contract and let future
    /// publishes re-issue version numbers whose hint files already exist on
    /// disk with different content ([`SisError::NotPristine`] otherwise).
    /// Validation still applies — a corrupt snapshot must not install — and
    /// a version-0 snapshot that claims hints is rejected for the same
    /// reason [`SisStore::publish`] rejects version 0. Future publishes
    /// continue the version sequence from the restored point.
    pub fn restore_state(&self, version: u32, hints: Vec<Hint>) -> Result<(), SisError> {
        let file = HintFile {
            version,
            source_day: 0,
            hints,
        };
        Self::validate(&file)?;
        if version == 0 && !file.hints.is_empty() {
            return Err(SisError::StaleVersion {
                proposed: 0,
                current: 0,
            });
        }
        let mut state = self.state.write();
        if state.version != 0 {
            return Err(SisError::NotPristine {
                current: state.version,
            });
        }
        state.version = version;
        state.hints = HintSet::from_hints(file.hints);
        Ok(())
    }

    /// Current installed version (0 = nothing installed).
    pub fn version(&self) -> u32 {
        self.state.read().version
    }

    /// Number of installed hints.
    pub fn len(&self) -> usize {
        self.state.read().hints.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The compile-time lookup: effective configuration for a template.
    pub fn config_for(&self, template: TemplateId, default: &RuleConfig) -> RuleConfig {
        self.state.read().hints.config_for(template, default)
    }

    /// Snapshot of the installed hints (e.g. for the engine's hint cache).
    pub fn snapshot(&self) -> HintSet {
        self.state.read().hints.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_opt::{RuleFlip, RuleId};

    fn hint(template: u64, rule: u16, enable: bool) -> Hint {
        Hint {
            template: TemplateId(template),
            flip: RuleFlip {
                rule: RuleId(rule),
                enable,
            },
        }
    }

    #[test]
    fn publish_and_lookup() {
        let store = SisStore::in_memory();
        let v = store
            .publish(HintFile {
                version: 1,
                source_day: 0,
                hints: vec![hint(42, 21, true)],
            })
            .unwrap();
        assert_eq!(v, 1);
        assert_eq!(store.len(), 1);
        let optimizer = scope_opt::Optimizer::default();
        let default = optimizer.default_config();
        let cfg = store.config_for(TemplateId(42), &default);
        assert!(cfg.enabled(RuleId(21)));
        assert_eq!(store.config_for(TemplateId(7), &default), default);
    }

    #[test]
    fn validation_rejects_bad_rule_and_duplicates() {
        let bad = HintFile {
            version: 1,
            source_day: 0,
            hints: vec![hint(1, 999, true)],
        };
        assert!(matches!(
            SisStore::validate(&bad),
            Err(SisError::BadRuleId { rule: 999 })
        ));
        let dup = HintFile {
            version: 1,
            source_day: 0,
            hints: vec![hint(1, 3, true), hint(1, 4, false)],
        };
        assert!(matches!(
            SisStore::validate(&dup),
            Err(SisError::DuplicateTemplate { .. })
        ));
    }

    #[test]
    fn versions_must_increase() {
        let store = SisStore::in_memory();
        store
            .publish(HintFile {
                version: 2,
                source_day: 0,
                hints: vec![],
            })
            .unwrap();
        let err = store
            .publish(HintFile {
                version: 2,
                source_day: 1,
                hints: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, SisError::StaleVersion { .. }));
        store
            .publish(HintFile {
                version: 3,
                source_day: 1,
                hints: vec![],
            })
            .unwrap();
        assert_eq!(store.version(), 3);
    }

    #[test]
    fn version_zero_is_rejected_even_into_an_empty_store() {
        // Regression: an empty store (version 0) used to accept a
        // `version: 0` file, leaving hints installed while `version()`
        // still answered "nothing installed".
        let store = SisStore::in_memory();
        let err = store
            .publish(HintFile {
                version: 0,
                source_day: 0,
                hints: vec![hint(1, 21, true)],
            })
            .unwrap_err();
        assert_eq!(
            err,
            SisError::StaleVersion {
                proposed: 0,
                current: 0
            }
        );
        assert_eq!(store.version(), 0);
        assert!(store.is_empty(), "the rejected file must not install");
    }

    #[test]
    fn reload_never_downgrades_a_newer_live_version() {
        // Regression: `reload_latest` used to install whatever the highest
        // on-disk version was, silently downgrading a store whose live
        // version had already moved past it.
        let dir = std::env::temp_dir().join(format!("sis-downgrade-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SisStore::at_dir(&dir).unwrap();
        store
            .publish(HintFile {
                version: 1,
                source_day: 0,
                hints: vec![hint(1, 21, true)],
            })
            .unwrap();
        store
            .publish(HintFile {
                version: 5,
                source_day: 1,
                hints: vec![hint(2, 22, true)],
            })
            .unwrap();
        // Lose the newest file: the directory now only holds version 1.
        std::fs::remove_file(dir.join("hints-v000005.json")).unwrap();
        assert_eq!(store.reload_latest().unwrap(), None, "downgrade skipped");
        assert_eq!(store.version(), 5, "live version untouched");
        let optimizer = scope_opt::Optimizer::default();
        let default = optimizer.default_config();
        assert!(
            store
                .config_for(TemplateId(2), &default)
                .enabled(RuleId(22)),
            "live hints untouched"
        );
        assert_eq!(
            store.config_for(TemplateId(1), &default),
            default,
            "the stale on-disk hints must not come back"
        );
        // Reloading the same version is also a no-op, not a reinstall.
        let fresh = SisStore::at_dir(&dir).unwrap();
        assert_eq!(fresh.reload_latest().unwrap(), Some(1));
        assert_eq!(fresh.reload_latest().unwrap(), None);
        assert_eq!(fresh.version(), 1);
        // A stale file that would install nothing is skipped before it is
        // even read: corrupting it must not fail the newer store's reload.
        std::fs::write(dir.join("hints-v000001.json"), b"{not json").unwrap();
        assert_eq!(store.reload_latest().unwrap(), None);
        assert_eq!(store.version(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_requires_a_pristine_store() {
        // A fresh store restores to wherever the snapshot was...
        let store = SisStore::in_memory();
        store.restore_state(5, vec![hint(1, 21, true)]).unwrap();
        assert_eq!(store.version(), 5);
        assert_eq!(store.len(), 1);
        // ...and publishes continue the version sequence from there.
        store
            .publish(HintFile {
                version: 6,
                source_day: 0,
                hints: vec![],
            })
            .unwrap();

        // A live store must never restore: rewinding the version would let
        // future publishes re-issue hint-file names that already exist.
        let err = store.restore_state(2, vec![]).unwrap_err();
        assert_eq!(err, SisError::NotPristine { current: 6 });
        assert_eq!(store.version(), 6, "failed restore must not install");

        // Same for a forward restore — only fresh stores restore at all.
        assert_eq!(
            store.restore_state(9, vec![]).unwrap_err(),
            SisError::NotPristine { current: 6 }
        );
    }

    #[test]
    fn restore_rejects_version_zero_with_hints() {
        // Mirrors `version_zero_is_rejected_even_into_an_empty_store`: a
        // snapshot claiming installed hints at the "nothing installed"
        // sentinel version is invalid, not installable.
        let store = SisStore::in_memory();
        let err = store.restore_state(0, vec![hint(1, 21, true)]).unwrap_err();
        assert_eq!(
            err,
            SisError::StaleVersion {
                proposed: 0,
                current: 0
            }
        );
        assert!(store.is_empty());
        // An empty version-0 snapshot (fresh-run state) is a valid no-op.
        store.restore_state(0, vec![]).unwrap();
        assert_eq!(store.version(), 0);
    }

    #[test]
    fn new_file_replaces_old_hints() {
        let store = SisStore::in_memory();
        store
            .publish(HintFile {
                version: 1,
                source_day: 0,
                hints: vec![hint(1, 21, true)],
            })
            .unwrap();
        store
            .publish(HintFile {
                version: 2,
                source_day: 1,
                hints: vec![hint(2, 22, true)],
            })
            .unwrap();
        let optimizer = scope_opt::Optimizer::default();
        let default = optimizer.default_config();
        // Old hint gone, new hint live.
        assert_eq!(store.config_for(TemplateId(1), &default), default);
        assert!(store
            .config_for(TemplateId(2), &default)
            .enabled(RuleId(22)));
    }

    #[test]
    fn disk_roundtrip_and_reload() {
        let dir = std::env::temp_dir().join(format!("sis-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = SisStore::at_dir(&dir).unwrap();
            store
                .publish(HintFile {
                    version: 1,
                    source_day: 0,
                    hints: vec![hint(5, 26, false)],
                })
                .unwrap();
            store
                .publish(HintFile {
                    version: 2,
                    source_day: 1,
                    hints: vec![hint(6, 27, false)],
                })
                .unwrap();
        }
        let fresh = SisStore::at_dir(&dir).unwrap();
        assert_eq!(fresh.version(), 0, "fresh store starts empty");
        assert_eq!(fresh.reload_latest().unwrap(), Some(2));
        assert_eq!(fresh.len(), 1);
        let optimizer = scope_opt::Optimizer::default();
        let default = optimizer.default_config();
        assert!(!fresh
            .config_for(TemplateId(6), &default)
            .enabled(RuleId(27)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The Stats & Insight Service (SIS) substitute (paper §4.4, ref. 16).
//!
//! SIS "makes deploying models and configurations in SCOPE easier as it
//! manages versioning and validates the format before installing them in
//! the SCOPE optimizer". This crate provides exactly that contract for
//! QO-Advisor's hint files: a versioned store of `(job template, rule
//! configuration)` pairs with format validation on publish, plus the lookup
//! path the optimizer consults on every compilation.

pub mod store;

pub use store::{HintFile, SisError, SisStore};

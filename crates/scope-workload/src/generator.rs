//! The workload: a population of recurring templates with per-day schedules,
//! plus ad-hoc one-off jobs.

use crate::template::{LiteralPolicy, TemplateSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use scope_ir::ids::{
    mix64, ADHOC_TEMPLATE_SALT, DEFAULT_WORKLOAD_SEED, JOB_ID_SALT, TEMPLATE_INDEX_SALT,
    TEMPLATE_SCHEDULE_SALT,
};
use scope_ir::logical::LogicalPlan;
use scope_ir::{JobId, ShardedCache, TemplateId};
use scope_lang::bind_script;
use std::sync::Arc;

/// Workload shape parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    pub seed: u64,
    /// Number of recurring templates in the population.
    pub num_templates: usize,
    /// Ad-hoc (one-off) jobs submitted per day. The paper reports >60% of
    /// jobs recurring; the default ratio keeps roughly that mix.
    pub adhoc_per_day: usize,
    /// Cap on instances of one template per day.
    pub max_instances_per_day: u32,
    /// How recurring templates redraw filter literals (and the catalog
    /// snapshot they bind against) across submissions. The default,
    /// [`LiteralPolicy::FreshEachRun`], redraws per `(day, instance)` and is
    /// byte-identical to the pre-policy generator; sticky policies make
    /// recurring scripts repeat their exact bound plans across days —
    /// the regime the paper's steering (and the compile cache) assume.
    /// Ad-hoc one-off jobs always draw fresh: they have no next run to
    /// stay identical for.
    pub literals: LiteralPolicy,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            seed: DEFAULT_WORKLOAD_SEED,
            num_templates: 120,
            adhoc_per_day: 40,
            max_instances_per_day: 3,
            literals: LiteralPolicy::FreshEachRun,
        }
    }
}

/// A recurring template plus its schedule.
#[derive(Debug, Clone)]
pub struct RecurringTemplate {
    pub spec: TemplateSpec,
    /// Runs every `period_days` days.
    pub period_days: u32,
    /// Day offset within the period.
    pub phase: u32,
    /// Instances submitted on an active day.
    pub instances_per_day: u32,
}

/// One submitted job: a bound plan plus identity and seeds.
#[derive(Debug, Clone)]
pub struct JobInstance {
    pub job_id: JobId,
    pub name: String,
    /// Shared, not deep-copied: every downstream carrier of the plan (the
    /// view row, recommendations, flight requests) clones the `Arc`.
    pub plan: Arc<LogicalPlan>,
    pub template: TemplateId,
    /// Drives the runtime's data-layout-dependent draws.
    pub job_seed: u64,
    pub day: u32,
    pub recurring: bool,
}

/// Memoized bound plans for *sticky* recurring templates, keyed by
/// `(template seed, epoch draw day)`. Within an epoch every submission of a
/// template binds the identical plan (see [`LiteralPolicy::draw_coords`]),
/// so the generate-script/parse/bind round-trip is a pure function of the
/// key and the memo clones its result instead of re-deriving it. Fresh
/// templates and ad-hoc jobs never enter the memo — their coordinates are
/// unique per submission, so there is nothing to reuse.
type PlanMemo = ShardedCache<(u64, u32), (Arc<LogicalPlan>, TemplateId)>;

fn plan_memo_hash(key: &(u64, u32)) -> u64 {
    mix64(key.0, u64::from(key.1))
}

/// The full synthetic workload.
#[derive(Debug, Clone)]
pub struct Workload {
    pub config: WorkloadConfig,
    pub recurring: Vec<RecurringTemplate>,
    /// Shared across clones: the memo is a pure function of its key, so
    /// sharing only saves rebinding work.
    bound: Arc<PlanMemo>,
}

impl Workload {
    #[must_use]
    pub fn new(config: WorkloadConfig) -> Self {
        let mut recurring = Vec::with_capacity(config.num_templates);
        for i in 0..config.num_templates {
            let tseed = mix64(config.seed, i as u64 | TEMPLATE_INDEX_SALT);
            let spec = TemplateSpec::generate(tseed);
            let mut rng = StdRng::seed_from_u64(mix64(tseed, TEMPLATE_SCHEDULE_SALT));
            let period_days = if rng.random_range(0.0..1.0) < 0.7 {
                1
            } else {
                rng.random_range(2..=7)
            };
            let phase = rng.random_range(0..period_days);
            let instances_per_day = rng.random_range(1..=config.max_instances_per_day);
            recurring.push(RecurringTemplate {
                spec,
                period_days,
                phase,
                instances_per_day,
            });
        }
        Self {
            config,
            recurring,
            bound: Arc::new(ShardedCache::new(1 << 12, 4, plan_memo_hash)),
        }
    }

    /// All jobs submitted on `day`, recurring instances first, then ad-hoc
    /// one-offs. Deterministic: calling twice yields identical jobs.
    #[must_use]
    pub fn jobs_for_day(&self, day: u32) -> Vec<JobInstance> {
        let mut jobs = Vec::new();
        for rt in &self.recurring {
            if day % rt.period_days != rt.phase {
                continue;
            }
            for instance in 0..rt.instances_per_day {
                let sticky = self.config.literals.is_sticky_template(rt.spec.seed);
                let (draw_day, _) = self
                    .config
                    .literals
                    .draw_coords(rt.spec.seed, day, instance);
                let key = (rt.spec.seed, draw_day);
                let bound = sticky.then(|| self.bound.get(&key)).flatten();
                let (plan, template) = bound.unwrap_or_else(|| {
                    let (script, catalog) =
                        rt.spec
                            .instantiate_with(self.config.literals, day, instance);
                    let plan = bind_script(&script, &catalog)
                        .expect("generated scripts always bind; tested per pattern");
                    let template = plan.template_id();
                    let entry = (Arc::new(plan), template);
                    if sticky {
                        self.bound.insert(key, entry.clone());
                    }
                    entry
                });
                let job_seed = mix64(rt.spec.seed, mix64(u64::from(day), u64::from(instance)));
                jobs.push(JobInstance {
                    job_id: JobId(mix64(job_seed, JOB_ID_SALT)),
                    name: rt.spec.instance_name(day, instance),
                    plan,
                    template,
                    job_seed,
                    day,
                    recurring: true,
                });
            }
        }
        for i in 0..self.config.adhoc_per_day {
            let tseed = mix64(
                self.config.seed,
                mix64(u64::from(day), i as u64 | ADHOC_TEMPLATE_SALT),
            );
            let spec = TemplateSpec::generate(tseed);
            let (script, catalog) = spec.instantiate(day, 0);
            let plan = bind_script(&script, &catalog).expect("generated scripts always bind");
            let template = plan.template_id();
            let plan = Arc::new(plan);
            let job_seed = mix64(tseed, u64::from(day));
            jobs.push(JobInstance {
                job_id: JobId(mix64(job_seed, JOB_ID_SALT)),
                name: spec.instance_name(day, 0),
                plan,
                template,
                job_seed,
                day,
                recurring: false,
            });
        }
        jobs
    }

    /// Fraction of jobs on a day that are recurring (diagnostic).
    #[must_use]
    pub fn recurring_fraction(&self, day: u32) -> f64 {
        let jobs = self.jobs_for_day(day);
        if jobs.is_empty() {
            return 0.0;
        }
        jobs.iter().filter(|j| j.recurring).count() as f64 / jobs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Workload {
        Workload::new(WorkloadConfig {
            seed: 7,
            num_templates: 20,
            adhoc_per_day: 5,
            max_instances_per_day: 2,
            ..WorkloadConfig::default()
        })
    }

    #[test]
    fn jobs_for_day_is_deterministic() {
        let w = small();
        let a = w.jobs_for_day(3);
        let b = w.jobs_for_day(3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.job_id, y.job_id);
            assert_eq!(x.template, y.template);
            assert_eq!(x.plan, y.plan);
        }
    }

    #[test]
    fn recurring_jobs_reappear_across_days_with_same_template() {
        let w = small();
        let day0: Vec<TemplateId> = w
            .jobs_for_day(0)
            .iter()
            .filter(|j| j.recurring)
            .map(|j| j.template)
            .collect();
        // Daily templates (period 1) must appear again on day 1.
        let day1: Vec<TemplateId> = w
            .jobs_for_day(1)
            .iter()
            .filter(|j| j.recurring)
            .map(|j| j.template)
            .collect();
        let overlap = day0.iter().filter(|t| day1.contains(t)).count();
        assert!(overlap > 0, "daily recurring templates overlap across days");
    }

    #[test]
    fn majority_of_jobs_are_recurring() {
        let w = Workload::new(WorkloadConfig::default());
        let frac = w.recurring_fraction(0);
        assert!(frac > 0.6, "recurring fraction {frac:.2} (paper: >60%)");
    }

    #[test]
    fn sticky_plan_memo_is_invisible() {
        // Two sticky workloads, one of which has its memo warmed by prior
        // days: every field of every job must still match a cold bind.
        let config = WorkloadConfig {
            seed: 7,
            num_templates: 20,
            adhoc_per_day: 5,
            max_instances_per_day: 2,
            literals: LiteralPolicy::Sticky {
                redraw_every_days: 3,
            },
        };
        let warmed = Workload::new(config.clone());
        for day in 0..8 {
            let _ = warmed.jobs_for_day(day);
        }
        let cold = Workload::new(config);
        for day in [0, 2, 3, 5, 7] {
            let a = warmed.jobs_for_day(day);
            let b = cold.jobs_for_day(day);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.job_id, y.job_id);
                assert_eq!(x.name, y.name);
                assert_eq!(x.plan, y.plan);
                assert_eq!(x.template, y.template);
                assert_eq!(x.job_seed, y.job_seed);
                assert_eq!(x.recurring, y.recurring);
            }
        }
    }

    #[test]
    fn adhoc_jobs_are_one_off() {
        let w = small();
        let adhoc0: Vec<TemplateId> = w
            .jobs_for_day(0)
            .iter()
            .filter(|j| !j.recurring)
            .map(|j| j.template)
            .collect();
        let adhoc1: Vec<TemplateId> = w
            .jobs_for_day(1)
            .iter()
            .filter(|j| !j.recurring)
            .map(|j| j.template)
            .collect();
        assert!(
            adhoc0.iter().all(|t| !adhoc1.contains(t)),
            "ad-hoc templates do not recur"
        );
    }

    #[test]
    fn job_ids_are_unique_within_a_day() {
        let w = small();
        let jobs = w.jobs_for_day(2);
        let mut ids: Vec<u64> = jobs.iter().map(|j| j.job_id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), jobs.len());
    }

    #[test]
    fn instances_of_same_template_differ_in_job_seed() {
        let w = small();
        let jobs = w.jobs_for_day(0);
        for pair in jobs.windows(2) {
            if pair[0].template == pair[1].template {
                assert_ne!(pair[0].job_seed, pair[1].job_seed);
            }
        }
    }
}

//! Recurring job templates: script skeletons whose instances differ only in
//! literal values and input cardinalities (paper §2.1).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use scope_ir::ids::{
    mix64, stable_hash64, CARDINALITY_DRIFT_SALT, DRIFT_SECOND_DRAW_SALT, STICKY_LITERAL_SALT,
    TEMPLATE_STRUCTURE_SALT,
};
use scope_ir::stats::DualStats;
use scope_lang::{Catalog, TableInfo};
use serde::{Deserialize, Serialize};

/// Structural pattern of a template. The mix approximates the operator
/// composition of analytical SCOPE workloads: aggregation reports, join
/// pipelines, ingestion unions with user code, and top-k dashboards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    FilterAgg,
    JoinAgg,
    TriJoinAgg,
    UnionProcess,
    TopK,
    SharedMultiOutput,
}

impl Pattern {
    const ALL: [Pattern; 6] = [
        Pattern::FilterAgg,
        Pattern::JoinAgg,
        Pattern::TriJoinAgg,
        Pattern::UnionProcess,
        Pattern::TopK,
        Pattern::SharedMultiOutput,
    ];

    /// Weighted draw (FilterAgg and JoinAgg dominate real workloads).
    fn draw(rng: &mut StdRng) -> Pattern {
        let weights = [28u32, 26, 12, 14, 10, 10];
        let total: u32 = weights.iter().sum();
        let mut x = rng.random_range(0..total);
        for (p, w) in Self::ALL.iter().zip(weights) {
            if x < w {
                return *p;
            }
            x -= w;
        }
        Pattern::FilterAgg
    }

    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Pattern::FilterAgg => "FilterAgg",
            Pattern::JoinAgg => "JoinAgg",
            Pattern::TriJoinAgg => "TriJoinAgg",
            Pattern::UnionProcess => "UnionProcess",
            Pattern::TopK => "TopK",
            Pattern::SharedMultiOutput => "SharedMultiOutput",
        }
    }
}

/// One base table of a template.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableDef {
    pub path: String,
    /// Long-run cardinality; the catalog estimate every instance sees.
    pub base_rows: f64,
}

/// Structural metadata of a template (used by tests and reports).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemplateStats {
    pub pattern: Pattern,
    pub num_tables: usize,
}

/// A recurring job template: a script skeleton with literal placeholders
/// (`__L0__`, `__L1__`, …) plus its base tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TemplateSpec {
    pub seed: u64,
    /// Base of the submitted job name (instances append date/run suffixes).
    pub base_name: String,
    /// Script skeleton with literal placeholders.
    pub skeleton: String,
    pub tables: Vec<TableDef>,
    pub stats: TemplateStats,
}

/// How a template's instances redraw their filter literals (and the
/// cardinality snapshot they are bound against) across submissions.
///
/// The paper's steering wins come from *recurring* SCOPE scripts — the same
/// job resubmitted daily, byte-for-byte. [`FreshEachRun`] instead redraws
/// literals per `(day, instance)`, which makes every submission a unique
/// exact plan; that is the hardest regime for any fingerprint-keyed compile
/// cache. [`Sticky`] pins the draws for a whole epoch, so an instance is the
/// *same script over the same catalog snapshot* until the next redraw — its
/// bound plan, and therefore its exact plan fingerprint, repeats across
/// days. [`Mixed`] models a fleet where only a fraction of templates are
/// truly recurring scripts.
///
/// The policy only affects *which seeds* the existing draws use; a given
/// `(policy, day, instance)` is as deterministic as before, and
/// [`FreshEachRun`] is byte-identical to the pre-policy generator.
///
/// [`FreshEachRun`]: LiteralPolicy::FreshEachRun
/// [`Sticky`]: LiteralPolicy::Sticky
/// [`Mixed`]: LiteralPolicy::Mixed
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum LiteralPolicy {
    /// Redraw literals on every `(day, instance)` — the original behavior.
    #[default]
    FreshEachRun,
    /// All templates keep their literals (and catalog snapshot) for
    /// `redraw_every_days` days, then redraw; `0` means never redraw.
    /// Instances of one template within an epoch are identical scripts.
    Sticky { redraw_every_days: u32 },
    /// Each template is independently sticky-forever with probability
    /// `sticky_fraction` (drawn deterministically from its seed), fresh
    /// otherwise.
    Mixed { sticky_fraction: f64 },
}

impl LiteralPolicy {
    /// Whether this policy pins `template_seed`'s literals (diagnostics and
    /// tests; [`draw_coords`](Self::draw_coords) is the authoritative use).
    #[must_use]
    pub fn is_sticky_template(&self, template_seed: u64) -> bool {
        match *self {
            LiteralPolicy::FreshEachRun => false,
            LiteralPolicy::Sticky { .. } => true,
            LiteralPolicy::Mixed { sticky_fraction } => {
                let u =
                    (mix64(template_seed, STICKY_LITERAL_SALT) >> 11) as f64 / (1u64 << 53) as f64;
                u < sticky_fraction
            }
        }
    }

    /// The `(day, instance)` coordinates the literal and cardinality draws
    /// use for an instance submitted on `day`. Fresh templates use the
    /// submission coordinates; sticky templates use their epoch's first day
    /// (and instance 0), so every submission inside the epoch binds the
    /// identical plan.
    #[must_use]
    pub fn draw_coords(&self, template_seed: u64, day: u32, instance: u32) -> (u32, u32) {
        let sticky_epoch_start = match *self {
            LiteralPolicy::FreshEachRun => return (day, instance),
            LiteralPolicy::Mixed { .. } => {
                if !self.is_sticky_template(template_seed) {
                    return (day, instance);
                }
                0
            }
            LiteralPolicy::Sticky { redraw_every_days } => {
                if redraw_every_days == 0 {
                    0
                } else {
                    day - day % redraw_every_days
                }
            }
        };
        (sticky_epoch_start, 0)
    }
}

/// Parse the CLI/env spelling of a policy: `fresh`, `sticky`, `sticky:N`
/// (redraw every `N` days), or `mixed:F` (sticky fraction `F` in `[0, 1]`).
/// Both the `experiments --literals` flag and the `QO_LITERALS` environment
/// variable (probe and experiments) go through this one parser.
impl std::str::FromStr for LiteralPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let expected = "expected fresh|sticky[:days]|mixed:fraction";
        match s.split_once(':') {
            None => match s {
                "fresh" => Ok(LiteralPolicy::FreshEachRun),
                "sticky" => Ok(LiteralPolicy::Sticky {
                    redraw_every_days: 0,
                }),
                _ => Err(format!("unknown literal policy `{s}` ({expected})")),
            },
            Some(("sticky", days)) => days
                .parse()
                .map(|redraw_every_days| LiteralPolicy::Sticky { redraw_every_days })
                .map_err(|_| format!("bad sticky day count in `{s}` ({expected})")),
            Some(("mixed", fraction)) => {
                let sticky_fraction: f64 = fraction
                    .parse()
                    .map_err(|_| format!("bad mixed fraction in `{s}` ({expected})"))?;
                if !(0.0..=1.0).contains(&sticky_fraction) {
                    return Err(format!(
                        "mixed fraction {sticky_fraction} outside [0, 1] ({expected})"
                    ));
                }
                Ok(LiteralPolicy::Mixed { sticky_fraction })
            }
            Some(_) => Err(format!("unknown literal policy `{s}` ({expected})")),
        }
    }
}

/// Day-over-day drift of a table's true cardinality: deterministic
/// log-normal-ish multiplier in roughly [0.5, 2.0].
#[must_use]
pub fn cardinality_drift(table_path: &str, day: u32) -> f64 {
    let h = mix64(
        stable_hash64(table_path.as_bytes()),
        u64::from(day) | CARDINALITY_DRIFT_SALT,
    );
    let u1 = (h >> 11) as f64 / (1u64 << 53) as f64;
    let u2 = (mix64(h, DRIFT_SECOND_DRAW_SALT) >> 11) as f64 / (1u64 << 53) as f64;
    let n = (u1 + u2 - 1.0) * 2.0; // triangular in [-2, 2]
    (0.35 * n).exp()
}

impl TemplateSpec {
    /// Generate a template from a seed.
    #[must_use]
    pub fn generate(seed: u64) -> TemplateSpec {
        let mut rng = StdRng::seed_from_u64(mix64(seed, TEMPLATE_STRUCTURE_SALT));
        let pattern = Pattern::draw(&mut rng);
        let tag = format!("{seed:010x}");
        let table = |i: usize, rng: &mut StdRng, lo: f64, hi: f64| {
            let u: f64 = rng.random_range(0.0..1.0);
            TableDef {
                path: format!("store/{tag}_t{i}"),
                base_rows: lo * (hi / lo).powf(u),
            }
        };
        let (skeleton, tables) = match pattern {
            Pattern::FilterAgg => {
                let t0 = table(0, &mut rng, 1e6, 2e9);
                let s = format!(
                    r#"
raw = EXTRACT k:int, a:int, b:int, v:float FROM "{p0}";
flt = SELECT k, a, v FROM raw WHERE v > __L0__ AND a > __L1__;
rpt = SELECT k, SUM(v) AS total, COUNT(*) AS n FROM flt GROUP BY k;
OUTPUT rpt TO "out/{tag}_report";
"#,
                    p0 = t0.path,
                );
                (s, vec![t0])
            }
            Pattern::JoinAgg => {
                let fact = table(0, &mut rng, 1e7, 5e9);
                let dim = table(1, &mut rng, 1e4, 1e7);
                let s = format!(
                    r#"
fact = EXTRACT k:int, a:int, v:float FROM "{p0}";
dim  = EXTRACT k:int, g:int, s:string FROM "{p1}";
flt  = SELECT k, v FROM fact WHERE v > __L0__;
j    = SELECT * FROM flt AS f JOIN dim AS d ON f.k == d.k;
rpt  = SELECT g, SUM(v) AS total, COUNT(*) AS n FROM j GROUP BY g;
OUTPUT rpt TO "out/{tag}_joined";
"#,
                    p0 = fact.path,
                    p1 = dim.path,
                );
                (s, vec![fact, dim])
            }
            Pattern::TriJoinAgg => {
                let fact = table(0, &mut rng, 1e7, 5e9);
                let d1 = table(1, &mut rng, 1e4, 1e7);
                let d2 = table(2, &mut rng, 1e3, 1e6);
                let s = format!(
                    r#"
fact = EXTRACT k:int, m:int, v:float FROM "{p0}";
d1   = EXTRACT k:int, g:int FROM "{p1}";
d2   = EXTRACT m:int, region:string FROM "{p2}";
flt  = SELECT k, m, v FROM fact WHERE v > __L0__;
j1   = SELECT * FROM flt AS f JOIN d1 ON f.k == d1.k;
j2   = SELECT * FROM j1 JOIN d2 ON j1.m == d2.m;
rpt  = SELECT g, SUM(v) AS total FROM j2 GROUP BY g;
OUTPUT rpt TO "out/{tag}_cube";
"#,
                    p0 = fact.path,
                    p1 = d1.path,
                    p2 = d2.path,
                );
                (s, vec![fact, d1, d2])
            }
            Pattern::UnionProcess => {
                let t0 = table(0, &mut rng, 1e6, 1e9);
                let t1 = table(1, &mut rng, 1e6, 1e9);
                let s = format!(
                    r#"
s0 = EXTRACT k:int, v:float FROM "{p0}";
s1 = EXTRACT k:int, v:float FROM "{p1}";
u  = UNION s0, s1;
p  = PROCESS u USING Udf{tag};
rpt = SELECT k, SUM(v) AS total, AVG(v) AS mean FROM p GROUP BY k;
OUTPUT rpt TO "out/{tag}_cleansed";
"#,
                    p0 = t0.path,
                    p1 = t1.path,
                );
                (s, vec![t0, t1])
            }
            Pattern::TopK => {
                let fact = table(0, &mut rng, 1e7, 2e9);
                let dim = table(1, &mut rng, 1e4, 1e7);
                let k = [50u64, 100, 500][rng.random_range(0..3usize)];
                let s = format!(
                    r#"
fact = EXTRACT k:int, a:int, v:float FROM "{p0}";
dim  = EXTRACT k:int, name:string FROM "{p1}";
flt  = SELECT k, v FROM fact WHERE v > __L0__;
j    = SELECT * FROM flt AS f JOIN dim AS d ON f.k == d.k;
agg  = SELECT name, SUM(v) AS total FROM j GROUP BY name;
topk = SELECT TOP {k} name, total FROM agg ORDER BY total DESC;
OUTPUT topk TO "out/{tag}_top";
"#,
                    p0 = fact.path,
                    p1 = dim.path,
                );
                (s, vec![fact, dim])
            }
            Pattern::SharedMultiOutput => {
                let t0 = table(0, &mut rng, 1e6, 2e9);
                let s = format!(
                    r#"
raw  = EXTRACT k:int, a:int, v:float FROM "{p0}";
flt  = SELECT k, a, v FROM raw WHERE v > __L0__;
agg  = SELECT k, SUM(v) AS total FROM flt GROUP BY k;
hot  = SELECT TOP 50 k, a, v FROM flt ORDER BY v DESC;
OUTPUT agg TO "out/{tag}_rollup";
OUTPUT hot TO "out/{tag}_hot";
"#,
                    p0 = t0.path,
                );
                (s, vec![t0])
            }
        };
        let num_tables = tables.len();
        TemplateSpec {
            seed,
            base_name: format!("{}_{tag}", pattern.name()),
            skeleton,
            tables,
            stats: TemplateStats {
                pattern,
                num_tables,
            },
        }
    }

    /// Concrete script + catalog for one instance under the default
    /// [`LiteralPolicy::FreshEachRun`]: literals drawn per instance, catalog
    /// estimates stale at `base_rows`, true cardinalities drifting by day.
    #[must_use]
    pub fn instantiate(&self, day: u32, instance: u32) -> (String, Catalog) {
        self.instantiate_with(LiteralPolicy::FreshEachRun, day, instance)
    }

    /// Like [`instantiate`](Self::instantiate) but drawing literals and the
    /// catalog's cardinality snapshot at the coordinates `policy` dictates:
    /// a sticky instance reproduces its epoch's script *and* inputs exactly,
    /// so its bound plan repeats byte-for-byte until the next redraw.
    #[must_use]
    pub fn instantiate_with(
        &self,
        policy: LiteralPolicy,
        day: u32,
        instance: u32,
    ) -> (String, Catalog) {
        let (day, instance) = policy.draw_coords(self.seed, day, instance);
        let mut rng =
            StdRng::seed_from_u64(mix64(self.seed, mix64(u64::from(day), u64::from(instance))));
        let mut script = self.skeleton.clone();
        for i in 0..4 {
            let placeholder = format!("__L{i}__");
            if script.contains(&placeholder) {
                let value: i64 = rng.random_range(1..10_000);
                script = script.replace(&placeholder, &value.to_string());
            }
        }
        let mut catalog = Catalog::default();
        for t in &self.tables {
            let actual = t.base_rows * cardinality_drift(&t.path, day);
            catalog.register(
                t.path.clone(),
                TableInfo {
                    rows: DualStats::new(actual, t.base_rows),
                },
            );
        }
        (script, catalog)
    }

    /// The submitted (un-normalized) job name of one instance.
    #[must_use]
    pub fn instance_name(&self, day: u32, instance: u32) -> String {
        format!(
            "{}_{:04}_{:02}_run{}",
            self.base_name,
            2021 + day / 365,
            day % 365,
            instance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_lang::bind_script;

    #[test]
    fn generation_is_deterministic() {
        let a = TemplateSpec::generate(17);
        let b = TemplateSpec::generate(17);
        assert_eq!(a.skeleton, b.skeleton);
        assert_eq!(a.base_name, b.base_name);
        let c = TemplateSpec::generate(18);
        assert_ne!(a.skeleton, c.skeleton);
    }

    #[test]
    fn instances_share_template_identity() {
        let spec = TemplateSpec::generate(99);
        let (s1, c1) = spec.instantiate(0, 0);
        let (s2, c2) = spec.instantiate(5, 1);
        let p1 = bind_script(&s1, &c1).unwrap();
        let p2 = bind_script(&s2, &c2).unwrap();
        assert_eq!(
            p1.template_id(),
            p2.template_id(),
            "instances share the template"
        );
    }

    #[test]
    fn different_templates_have_different_identity() {
        let a = TemplateSpec::generate(1);
        let b = TemplateSpec::generate(2);
        let (sa, ca) = a.instantiate(0, 0);
        let (sb, cb) = b.instantiate(0, 0);
        assert_ne!(
            bind_script(&sa, &ca).unwrap().template_id(),
            bind_script(&sb, &cb).unwrap().template_id()
        );
    }

    #[test]
    fn all_patterns_produce_bindable_scripts() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..60u64 {
            let spec = TemplateSpec::generate(seed);
            let (script, catalog) = spec.instantiate(3, 0);
            let plan = bind_script(&script, &catalog)
                .unwrap_or_else(|e| panic!("seed {seed} pattern {:?}: {e}", spec.stats.pattern));
            plan.validate().unwrap();
            seen.insert(spec.stats.pattern);
        }
        assert!(seen.len() >= 5, "covered {} patterns", seen.len());
    }

    #[test]
    fn cardinality_drift_is_deterministic_and_bounded() {
        let d1 = cardinality_drift("store/x", 5);
        let d2 = cardinality_drift("store/x", 5);
        assert_eq!(d1, d2);
        for day in 0..100 {
            let d = cardinality_drift("store/x", day);
            assert!((0.3..3.5).contains(&d), "drift {d} out of range");
        }
        // Varies across days.
        assert_ne!(
            cardinality_drift("store/x", 1),
            cardinality_drift("store/x", 2)
        );
    }

    #[test]
    fn instance_names_normalize_to_one_template_name() {
        use crate::naming::normalize_job_name;
        let spec = TemplateSpec::generate(7);
        let n1 = normalize_job_name(&spec.instance_name(3, 0));
        let n2 = normalize_job_name(&spec.instance_name(40, 2));
        assert_eq!(n1, n2);
    }

    #[test]
    fn fresh_policy_is_byte_identical_to_the_pre_policy_generator() {
        // Regression snapshot captured from the generator *before*
        // `LiteralPolicy` existed (hash over scripts + catalog stats of
        // templates 3/17/99, days 0..3, instances 0..2). The default policy
        // must keep reproducing it byte-for-byte.
        let mut acc = String::new();
        for seed in [3u64, 17, 99] {
            let spec = TemplateSpec::generate(seed);
            for day in 0..3u32 {
                for inst in 0..2u32 {
                    let (script, catalog) = spec.instantiate(day, inst);
                    let (script2, _) = spec.instantiate_with(LiteralPolicy::default(), day, inst);
                    assert_eq!(script, script2, "default policy == legacy path");
                    acc.push_str(&script);
                    for t in &spec.tables {
                        let info = catalog.lookup(&t.path);
                        acc.push_str(&format!("{}:{:?}\n", t.path, info.rows));
                    }
                }
            }
        }
        assert_eq!(
            stable_hash64(acc.as_bytes()),
            0x4f4d_f204_78eb_5657,
            "FreshEachRun diverged from the pre-LiteralPolicy generator output"
        );
    }

    #[test]
    fn sticky_instances_repeat_exact_plans_across_days() {
        let policy = LiteralPolicy::Sticky {
            redraw_every_days: 0,
        };
        for seed in [5u64, 23, 77] {
            let spec = TemplateSpec::generate(seed);
            let (s0, c0) = spec.instantiate_with(policy, 0, 0);
            let (s5, c5) = spec.instantiate_with(policy, 5, 1);
            assert_eq!(s0, s5, "sticky scripts are identical across days");
            let p0 = bind_script(&s0, &c0).unwrap();
            let p5 = bind_script(&s5, &c5).unwrap();
            assert_eq!(
                p0.fingerprint(),
                p5.fingerprint(),
                "sticky instances bind the identical exact plan"
            );
        }
    }

    #[test]
    fn sticky_redraw_period_starts_a_new_epoch() {
        let policy = LiteralPolicy::Sticky {
            redraw_every_days: 7,
        };
        // Any template whose skeleton actually carries a literal.
        let spec = (0..20u64)
            .map(TemplateSpec::generate)
            .find(|s| s.skeleton.contains("__L0__"))
            .unwrap();
        let (day0, _) = spec.instantiate_with(policy, 0, 0);
        let (day6, _) = spec.instantiate_with(policy, 6, 2);
        let (day7, _) = spec.instantiate_with(policy, 7, 0);
        assert_eq!(day0, day6, "same epoch, same script");
        assert_ne!(day0, day7, "epoch boundary redraws the literals");
        // The new epoch's draws are the fresh draws of its first day.
        let (fresh7, _) = spec.instantiate(7, 0);
        assert_eq!(day7, fresh7);
    }

    #[test]
    fn mixed_policy_keeps_roughly_the_configured_fraction_sticky() {
        let policy = LiteralPolicy::Mixed {
            sticky_fraction: 0.5,
        };
        let n = 400;
        let sticky = (0..n)
            .filter(|seed| policy.is_sticky_template(mix64(*seed, 0xABCD)))
            .count();
        let frac = sticky as f64 / n as f64;
        assert!(
            (0.4..0.6).contains(&frac),
            "sticky fraction {frac:.2} should track the configured 0.5"
        );
        // The per-template decision is what draw_coords applies.
        for seed in 0..50u64 {
            let spec = TemplateSpec::generate(seed);
            let pinned = policy.draw_coords(spec.seed, 9, 1) == (0, 0);
            assert_eq!(pinned, policy.is_sticky_template(spec.seed));
        }
        // Degenerate fractions are total.
        let all = LiteralPolicy::Mixed {
            sticky_fraction: 1.0,
        };
        let none = LiteralPolicy::Mixed {
            sticky_fraction: 0.0,
        };
        assert!((0..50).all(|s| all.is_sticky_template(s)));
        assert!(!(0..50).any(|s| none.is_sticky_template(s)));
    }

    #[test]
    fn literal_policy_parses_its_cli_spellings() {
        assert_eq!("fresh".parse(), Ok(LiteralPolicy::FreshEachRun));
        assert_eq!(
            "sticky".parse(),
            Ok(LiteralPolicy::Sticky {
                redraw_every_days: 0
            })
        );
        assert_eq!(
            "sticky:7".parse(),
            Ok(LiteralPolicy::Sticky {
                redraw_every_days: 7
            })
        );
        assert_eq!(
            "mixed:0.25".parse(),
            Ok(LiteralPolicy::Mixed {
                sticky_fraction: 0.25
            })
        );
        for bad in ["bogus", "sticky:x", "mixed:", "mixed:1.5", "mixed:-0.1"] {
            assert!(
                bad.parse::<LiteralPolicy>().is_err(),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn literals_vary_across_instances() {
        let spec = TemplateSpec::generate(11);
        let (s1, _) = spec.instantiate(0, 0);
        let (s2, _) = spec.instantiate(0, 1);
        // FilterAgg-family skeletons always carry literals; union ones may
        // not, so only assert when a placeholder existed.
        if spec.skeleton.contains("__L0__") {
            assert_ne!(s1, s2, "literal values should differ");
        }
    }
}

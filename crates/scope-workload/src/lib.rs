//! Synthetic SCOPE workload generator.
//!
//! Produces populations of **recurring job templates** ("periodically
//! arriving template-scripts with different input cardinalities and filter
//! predicates, but same set of operators", paper §2.1) plus a stream of
//! ad-hoc one-off jobs, and materializes the **denormalized daily view**
//! (Table 1 features) that feeds the QO-Advisor pipeline.
//!
//! How literally "recurring" the recurring templates are is a knob:
//! [`LiteralPolicy`] controls whether an instance redraws its filter
//! literals (and the catalog snapshot it binds against) every run — the
//! default, and the hardest case for plan-identity caching — or keeps them
//! pinned so the same exact plan resubmits day after day, the regime the
//! paper's steering wins (and the compile-result cache's cross-day hits)
//! come from.
//!
//! [`build_view`] compiles and "executes" one day's jobs into [`ViewRow`]s.
//! It is generic over [`scope_opt::Compiler`] *and*
//! [`scope_runtime::Executor`], so the production compiles can share a
//! [`scope_opt::CachingOptimizer`] with the steering pipeline and the
//! production runs a [`scope_runtime::ExecutionCache`]; a job whose
//! default-path compilation fails surfaces as a typed [`ViewBuildError`]
//! instead of a panic.
//!
//! Every draw is seeded from stable hashes, so a given [`WorkloadConfig`]
//! always generates the identical workload — experiments are reproducible
//! end to end.

pub mod generator;
pub mod naming;
pub mod template;
pub mod view;

pub use generator::{JobInstance, Workload, WorkloadConfig};
pub use naming::normalize_job_name;
pub use template::{LiteralPolicy, TemplateSpec, TemplateStats};
pub use view::{build_view, build_view_row, Table1Features, ViewBuildError, ViewRow};

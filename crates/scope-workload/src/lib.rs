//! Synthetic SCOPE workload generator.
//!
//! Produces populations of **recurring job templates** ("periodically
//! arriving template-scripts with different input cardinalities and filter
//! predicates, but same set of operators", paper §2.1) plus a stream of
//! ad-hoc one-off jobs, and materializes the **denormalized daily view**
//! (Table 1 features) that feeds the QO-Advisor pipeline.
//!
//! Every draw is seeded from stable hashes, so a given `WorkloadConfig`
//! always generates the identical workload — experiments are reproducible
//! end to end.

pub mod generator;
pub mod naming;
pub mod template;
pub mod view;

pub use generator::{JobInstance, Workload, WorkloadConfig};
pub use naming::normalize_job_name;
pub use template::{TemplateSpec, TemplateStats};
pub use view::{build_view, Table1Features, ViewRow};

//! The denormalized daily workload view (paper §4, Table 1).
//!
//! One [`ViewRow`] per executed job, combining job metadata, optimizer
//! outputs (estimated cost, rule signature, estimated cardinalities) and
//! runtime statistics (latency, PNhours, vertices, bytes, memory).
//! [`Table1Features`] applies exactly the aggregation functions of Table 1:
//! job-level features take `min` (identical across a job's query trees),
//! per-tree features are summed or averaged across the output trees of the
//! job's DAG via a conceptual super-root (§4.1).

use crate::generator::JobInstance;
use crate::naming::normalize_job_name;
use scope_ir::ids::{production_run_seed, stable_hash64};
use scope_ir::logical::{LogicalOp, LogicalPlan};
use scope_ir::{JobId, TemplateId};
use scope_opt::{CompileError, Compiler, HintSet, RuleBits};
use scope_runtime::{ExecutionMetrics, Executor};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Table 1 job-level features after super-root aggregation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Features {
    /// Normalized Job Name (min, Job Metadata, J).
    pub normalized_name: String,
    /// Latency (min, Runtime Statistics, J).
    pub latency: f64,
    /// Estimated Cost (min, Optimizer, J).
    pub estimated_cost: f64,
    /// Query Template (min over per-tree template hashes, Job Metadata, Q).
    pub query_template: u64,
    /// Total Number of Vertices (min, Runtime Statistics, J).
    pub total_vertices: f64,
    /// Estimated Cardinalities (sum over trees, Optimizer, Q).
    pub estimated_cardinalities: f64,
    /// Bytes Read (sum over trees, Runtime Statistics, Q).
    pub bytes_read: f64,
    /// Maximum Memory Used (min, Runtime Statistics, J).
    pub max_memory: f64,
    /// Average Memory Used (min, Runtime Statistics, J).
    pub avg_memory: f64,
    /// Average Row Length (avg over trees, Optimizer, Q).
    pub avg_row_length: f64,
    /// Row Count (sum over trees, Optimizer, Q).
    pub row_count: f64,
    /// PNHours (min, Runtime Statistics, J).
    pub pn_hours: f64,
}

impl Table1Features {
    /// Aggregate per Table 1 from the job's logical DAG and its runtime
    /// metrics.
    #[must_use]
    pub fn aggregate(
        job_name: &str,
        plan: &LogicalPlan,
        est_cost: f64,
        m: &ExecutionMetrics,
    ) -> Self {
        let schemas = plan.schemas();
        let mut est_cardinalities = 0.0;
        let mut row_count = 0.0;
        let mut row_len_sum = 0.0;
        let mut tree_template_min = u64::MAX;
        let trees = plan.outputs();
        for &root in trees {
            let tree = plan.output_tree(root);
            // Per-tree estimated cardinalities: sum of estimated rows over
            // the tree's operators (what the optimizer logged per tree).
            let mut tree_card = 0.0;
            let mut tree_sig = String::new();
            for id in &tree {
                let node = plan.node(*id);
                tree_sig.push_str(node.op.tag());
                tree_sig.push(',');
                if let LogicalOp::Extract { table } = &node.op {
                    tree_card += table.rows.estimated;
                }
            }
            est_cardinalities += tree_card;
            // Output row count estimate: the root's input table sizes scaled
            // by a fixed per-operator heuristic are already folded into the
            // optimizer; here we log the estimated root cardinality proxy.
            row_count += tree_card;
            row_len_sum += f64::from(schemas[root.index()].avg_row_len());
            tree_template_min = tree_template_min.min(stable_hash64(tree_sig.as_bytes()));
        }
        let ntrees = trees.len().max(1) as f64;
        Self {
            normalized_name: normalize_job_name(job_name),
            latency: m.latency_sec,
            estimated_cost: est_cost,
            query_template: tree_template_min,
            total_vertices: m.vertices as f64,
            estimated_cardinalities: est_cardinalities,
            bytes_read: m.data_read,
            max_memory: m.max_memory,
            avg_memory: m.avg_memory,
            avg_row_length: row_len_sum / ntrees,
            row_count,
            pn_hours: m.pn_hours,
        }
    }
}

/// One row of the denormalized daily view.
#[derive(Debug, Clone)]
pub struct ViewRow {
    pub job_id: JobId,
    pub day: u32,
    pub template: TemplateId,
    pub recurring: bool,
    pub job_seed: u64,
    /// The job's logical plan ("a description of the job plan", §4).
    /// Shared with the [`JobInstance`] it was built from.
    pub plan: Arc<LogicalPlan>,
    /// Rule signature of the production compilation.
    pub signature: RuleBits,
    /// Estimated cost of the production compilation.
    pub est_cost: f64,
    /// Runtime statistics of the production run.
    pub metrics: ExecutionMetrics,
    pub features: Table1Features,
    /// Whether a SIS hint was applied to this compilation.
    pub hint_applied: bool,
}

/// A production compilation failed on the *default* path while building the
/// daily view — the one place the pipeline has no safe fallback left. A
/// hinted compile that fails with `RuleInstability` is not an error (it
/// falls back to the default configuration); this is the default
/// configuration itself refusing a job, which means the submitted plan is
/// broken, not the steering.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewBuildError {
    /// The job whose compilation failed.
    pub job_id: JobId,
    /// Its submitted (un-normalized) name.
    pub job_name: String,
    /// Its template (for correlating with hints/spans).
    pub template: TemplateId,
    /// The underlying compile failure.
    pub error: CompileError,
}

impl fmt::Display for ViewBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "default-path compile of production job {:?} (`{}`, template {:?}) failed: {}",
            self.job_id, self.job_name, self.template, self.error
        )
    }
}

impl std::error::Error for ViewBuildError {}

/// Compile (honoring SIS hints) and execute a day's jobs, producing the
/// denormalized view. Jobs whose hinted compilation fails fall back to the
/// default configuration, mirroring SCOPE's behaviour of never letting a
/// bad hint take down a production job; a job whose *default-path* compile
/// fails aborts the day with a typed [`ViewBuildError`] instead (generated
/// workloads never trigger this — it guards externally supplied plans).
///
/// Generic over [`Compiler`] *and* [`Executor`]: pass a bare
/// [`scope_opt::Optimizer`] and [`scope_runtime::Cluster`] for direct
/// compilation/execution, or a [`scope_opt::CachingOptimizer`] and
/// [`scope_runtime::CachingExecutor`] so the production compiles and runs
/// share the steering pipeline's result caches — under a sticky
/// [`crate::LiteralPolicy`] these are the caches' biggest win, because
/// recurring instances rebind the identical plan day after day.
pub fn build_view<C: Compiler, E: Executor>(
    jobs: &[JobInstance],
    optimizer: &C,
    hints: &HintSet,
    executor: &E,
) -> Result<Vec<ViewRow>, ViewBuildError> {
    let default = optimizer.default_config();
    jobs.iter()
        .map(|job| build_view_row(job, optimizer, hints, &default, executor))
        .collect()
}

/// Build the view row of a single job — [`build_view`]'s per-job body,
/// callable on its own.
///
/// This function is *pure* given its inputs: the row depends only on the
/// job, the hint set, the default configuration, and the (deterministic)
/// compiler and executor — never on other jobs or on call order. That is
/// what lets a fleet's streaming worker pool (`qo_advisor`'s fleet module)
/// build rows for many tenants' jobs in whatever order workers pull them
/// from the arrival queue, reorder each tenant's rows back to job order, and
/// obtain byte-for-byte the view a serial [`build_view`] would have built.
///
/// `default` must be `optimizer.default_config()`; it is a parameter only so
/// per-job callers don't recompute it.
///
/// # Errors
///
/// [`ViewBuildError`] when the job's *default-path* compile fails — exactly
/// the [`build_view`] contract.
pub fn build_view_row<C: Compiler, E: Executor>(
    job: &JobInstance,
    optimizer: &C,
    hints: &HintSet,
    default: &scope_opt::RuleConfig,
    executor: &E,
) -> Result<ViewRow, ViewBuildError> {
    let hinted = hints.lookup(job.template).is_some();
    let config = hints.config_for(job.template, default);
    let (compiled, hint_applied) = match optimizer.compile(&job.plan, &config) {
        Ok(c) => (c, hinted),
        Err(CompileError::RuleInstability { .. }) if hinted => {
            match optimizer.compile(&job.plan, default) {
                Ok(c) => (c, false),
                Err(error) => {
                    return Err(ViewBuildError {
                        job_id: job.job_id,
                        job_name: job.name.clone(),
                        template: job.template,
                        error,
                    })
                }
            }
        }
        Err(error) => {
            return Err(ViewBuildError {
                job_id: job.job_id,
                job_name: job.name.clone(),
                template: job.template,
                error,
            })
        }
    };
    let run_seed = production_run_seed(job.day);
    let metrics = executor.execute(&compiled.physical, job.job_seed, run_seed);
    let features = Table1Features::aggregate(&job.name, &job.plan, compiled.est_cost, &metrics);
    Ok(ViewRow {
        job_id: job.job_id,
        day: job.day,
        template: job.template,
        recurring: job.recurring,
        job_seed: job.job_seed,
        plan: job.plan.clone(),
        signature: compiled.signature,
        est_cost: compiled.est_cost,
        metrics,
        features,
        hint_applied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Workload, WorkloadConfig};
    use scope_opt::Optimizer;
    use scope_runtime::Cluster;

    fn small_day() -> Vec<ViewRow> {
        let w = Workload::new(WorkloadConfig {
            seed: 11,
            num_templates: 8,
            adhoc_per_day: 2,
            max_instances_per_day: 1,
            ..WorkloadConfig::default()
        });
        let jobs = w.jobs_for_day(0);
        build_view(
            &jobs,
            &Optimizer::default(),
            &HintSet::new(),
            &Cluster::default(),
        )
        .expect("generated workloads always compile on the default path")
    }

    #[test]
    fn view_has_one_row_per_job() {
        let rows = small_day();
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.est_cost > 0.0);
            assert!(r.metrics.pn_hours > 0.0);
            assert!(!r.signature.is_empty());
            assert!(!r.hint_applied);
        }
    }

    #[test]
    fn features_follow_table1_semantics() {
        let rows = small_day();
        for r in &rows {
            let f = &r.features;
            assert_eq!(
                f.latency, r.metrics.latency_sec,
                "J-level min = the job value"
            );
            assert_eq!(f.pn_hours, r.metrics.pn_hours);
            assert_eq!(f.total_vertices, r.metrics.vertices as f64);
            assert!(f.estimated_cardinalities > 0.0);
            assert!(f.avg_row_length > 0.0);
            assert!(!f.normalized_name.is_empty());
            // Normalization strips instance numbers.
            assert!(!f.normalized_name.chars().any(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn multi_output_jobs_sum_per_tree_features() {
        // SharedMultiOutput templates have 2 output trees; their estimated
        // cardinalities must double-count the shared scan (per-tree sums).
        let rows = small_day();
        let multi = rows.iter().find(|r| r.plan.outputs().len() > 1);
        if let Some(r) = multi {
            let single_tree_card: f64 = r
                .plan
                .topo_order()
                .iter()
                .filter_map(|id| match &r.plan.node(*id).op {
                    LogicalOp::Extract { table } => Some(table.rows.estimated),
                    _ => None,
                })
                .sum();
            assert!(r.features.estimated_cardinalities >= single_tree_card);
        }
    }

    #[test]
    fn hints_change_view_rows() {
        use scope_opt::{Hint, RuleFlip, RuleId};
        let w = Workload::new(WorkloadConfig {
            seed: 11,
            num_templates: 8,
            adhoc_per_day: 0,
            max_instances_per_day: 1,
            ..WorkloadConfig::default()
        });
        let jobs = w.jobs_for_day(0);
        let optimizer = Optimizer::default();
        let cluster = Cluster::default();
        let base = build_view(&jobs, &optimizer, &HintSet::new(), &cluster).unwrap();
        // Hint: flip an off-by-default transform on for the first template.
        let mut hints = HintSet::new();
        hints.insert(Hint {
            template: jobs[0].template,
            flip: RuleFlip {
                rule: RuleId(21),
                enable: true,
            },
        });
        let hinted = build_view(&jobs, &optimizer, &hints, &cluster).unwrap();
        let changed = base
            .iter()
            .zip(hinted.iter())
            .any(|(a, b)| a.template == jobs[0].template && b.hint_applied);
        assert!(changed, "hinted template must be marked");
    }

    #[test]
    fn default_path_compile_failure_is_a_typed_error() {
        use scope_ir::logical::LogicalPlan;

        // A structurally broken plan (no outputs) fails optimizer
        // validation on the default path — build_view must surface it as a
        // ViewBuildError naming the job, not panic.
        let w = Workload::new(WorkloadConfig {
            seed: 11,
            num_templates: 2,
            adhoc_per_day: 0,
            max_instances_per_day: 1,
            ..WorkloadConfig::default()
        });
        let mut jobs = w.jobs_for_day(0);
        jobs[0].plan = Arc::new(LogicalPlan::new());
        jobs[0].name = "broken_job".to_string();
        let err = build_view(
            &jobs,
            &Optimizer::default(),
            &HintSet::new(),
            &Cluster::default(),
        )
        .expect_err("an invalid plan must fail view building");
        assert_eq!(err.job_id, jobs[0].job_id);
        assert_eq!(err.job_name, "broken_job");
        assert!(matches!(err.error, CompileError::Invalid(_)));
        let msg = err.to_string();
        assert!(msg.contains("broken_job"), "error names the job: {msg}");
    }

    #[test]
    fn build_view_is_identical_through_a_caching_compiler() {
        use scope_opt::{CacheConfig, CachingOptimizer};

        let w = Workload::new(WorkloadConfig {
            seed: 11,
            num_templates: 6,
            adhoc_per_day: 1,
            max_instances_per_day: 1,
            literals: crate::LiteralPolicy::Sticky {
                redraw_every_days: 0,
            },
        });
        let cluster = Cluster::default();
        let cached = CachingOptimizer::new(Optimizer::default(), CacheConfig::default());
        let mut direct_rows = Vec::new();
        let mut cached_rows = Vec::new();
        for day in 0..2u32 {
            let jobs = w.jobs_for_day(day);
            direct_rows.extend(
                build_view(&jobs, &Optimizer::default(), &HintSet::new(), &cluster).unwrap(),
            );
            cached_rows.extend(build_view(&jobs, &cached, &HintSet::new(), &cluster).unwrap());
        }
        for (a, b) in direct_rows.iter().zip(cached_rows.iter()) {
            assert_eq!(a.signature, b.signature);
            assert_eq!(a.est_cost, b.est_cost);
            assert_eq!(a.metrics, b.metrics, "cache must be invisible");
        }
        // Sticky literals: day 1 recompiles the very plans day 0 inserted.
        let stats = cached.stats();
        assert!(
            stats.hits > 0,
            "sticky recurring plans must hit across days: {stats:?}"
        );
    }

    #[test]
    fn build_view_is_identical_through_a_caching_executor() {
        use scope_runtime::{CachingExecutor, ExecCacheConfig};

        let w = Workload::new(WorkloadConfig {
            seed: 11,
            num_templates: 6,
            adhoc_per_day: 1,
            max_instances_per_day: 1,
            literals: crate::LiteralPolicy::Sticky {
                redraw_every_days: 0,
            },
        });
        let optimizer = Optimizer::default();
        let cluster = Cluster::default();
        let cached = CachingExecutor::with_config(cluster.clone(), ExecCacheConfig::default());
        for day in 0..2u32 {
            let jobs = w.jobs_for_day(day);
            let direct = build_view(&jobs, &optimizer, &HintSet::new(), &cluster).unwrap();
            let via_cache = build_view(&jobs, &optimizer, &HintSet::new(), &cached).unwrap();
            for (a, b) in direct.iter().zip(via_cache.iter()) {
                assert_eq!(a.metrics, b.metrics, "the execution cache is invisible");
                assert_eq!(a.features, b.features);
            }
        }
        // Sticky literals: day 1 re-executes day-0 plans (fresh run seeds),
        // so the stage-graph memo is hot even though full results are not.
        let stats = cached.stats();
        assert!(
            stats.graphs.hits > 0,
            "sticky recurring plans must reuse memoized stage graphs: {stats:?}"
        );
    }
}

//! Job-name normalization: recurring instances submit names like
//! `Ingest_Clicks_2021_11_03_run7`; the normalized form collapses the
//! varying numeric parts so instances of a template share one name.

/// Normalize a job name by replacing every maximal digit run with `#`.
#[must_use]
pub fn normalize_job_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut in_digits = false;
    for c in name.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
                in_digits = true;
            }
        } else {
            in_digits = false;
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_runs_collapse() {
        assert_eq!(
            normalize_job_name("Ingest_2021_11_03_run7"),
            "Ingest_#_#_#_run#"
        );
        assert_eq!(
            normalize_job_name("Ingest_2022_01_09_run12"),
            normalize_job_name("Ingest_2021_11_03_run7")
        );
    }

    #[test]
    fn names_without_digits_unchanged() {
        assert_eq!(normalize_job_name("DailyRollup"), "DailyRollup");
    }

    #[test]
    fn distinct_templates_stay_distinct() {
        assert_ne!(
            normalize_job_name("IngestA_7"),
            normalize_job_name("IngestB_7")
        );
    }
}

//! Property-based tests for the workload generator: every generated
//! template binds, instances preserve template identity, and the daily view
//! is well-formed.

use proptest::prelude::*;
use scope_lang::bind_script;
use scope_opt::{HintSet, Optimizer};
use scope_runtime::Cluster;
use scope_workload::{build_view, normalize_job_name, TemplateSpec, Workload, WorkloadConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any template seed yields a script that parses, binds, validates, and
    /// compiles under the default rule configuration.
    #[test]
    fn every_template_is_compilable(seed in 0u64..100_000, day in 0u32..60, inst in 0u32..3) {
        let spec = TemplateSpec::generate(seed);
        let (script, catalog) = spec.instantiate(day, inst);
        let plan = bind_script(&script, &catalog).expect("generated scripts bind");
        prop_assert!(plan.validate().is_ok());
        let opt = Optimizer::default();
        let compiled = opt.compile(&plan, &opt.default_config()).expect("default compiles");
        prop_assert!(compiled.est_cost > 0.0);
    }

    /// Template identity is invariant to day and instance (literals and
    /// cardinalities vary; structure does not).
    #[test]
    fn template_identity_is_instance_invariant(
        seed in 0u64..50_000,
        d1 in 0u32..40, i1 in 0u32..3,
        d2 in 0u32..40, i2 in 0u32..3,
    ) {
        let spec = TemplateSpec::generate(seed);
        let (s1, c1) = spec.instantiate(d1, i1);
        let (s2, c2) = spec.instantiate(d2, i2);
        let t1 = bind_script(&s1, &c1).unwrap().template_id();
        let t2 = bind_script(&s2, &c2).unwrap().template_id();
        prop_assert_eq!(t1, t2);
        // And the normalized job name is instance-invariant too.
        prop_assert_eq!(
            normalize_job_name(&spec.instance_name(d1, i1)),
            normalize_job_name(&spec.instance_name(d2, i2))
        );
    }

    /// The daily view always has one consistent row per job.
    #[test]
    fn daily_view_is_well_formed(seed in 0u64..1000, day in 0u32..10) {
        let w = Workload::new(WorkloadConfig {
            seed,
            num_templates: 6,
            adhoc_per_day: 2,
            max_instances_per_day: 1,
            ..WorkloadConfig::default()
        });
        let jobs = w.jobs_for_day(day);
        let view = build_view(&jobs, &Optimizer::default(), &HintSet::new(), &Cluster::default())
            .expect("generated workloads compile on the default path");
        prop_assert_eq!(view.len(), jobs.len());
        for (job, row) in jobs.iter().zip(view.iter()) {
            prop_assert_eq!(row.job_id, job.job_id);
            prop_assert_eq!(row.template, job.template);
            prop_assert!(row.est_cost > 0.0);
            prop_assert!(row.metrics.pn_hours > 0.0);
            prop_assert!(row.features.estimated_cardinalities > 0.0);
            prop_assert!(!row.hint_applied, "no hints installed");
        }
    }
}

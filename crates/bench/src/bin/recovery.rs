//! Crash-recovery smoke driver: run the closed steering loop for N days,
//! optionally snapshotting at every day boundary, or resume a snapshotted
//! run and replay its tail. Prints one *normalized* `DailyReport` line per
//! day run in THIS process (telemetry-only fields zeroed, exactly like
//! `tests/determinism.rs`), so a resumed tail can be byte-diffed against
//! the same days of an uninterrupted golden run:
//!
//! ```text
//! # uninterrupted 10-day golden run
//! recovery --days 10 --sis sis_golden --out golden.txt
//! # run 6 days, snapshotting at each boundary, then "crash"
//! recovery --days 6 --sis sis_crash --snapshot state.qosnap --out head.txt
//! # restore and finish days 6..10 in a fresh process
//! recovery --days 10 --sis sis_crash --resume state.qosnap --out tail.txt
//! # equivalence: tail -n 4 golden.txt == tail.txt, and the SIS dirs match
//! ```
//!
//! CI's crash-recovery leg runs exactly this sequence and diffs the
//! outputs; see `.github/workflows/ci.yml`.

use qo_advisor::{DailyReport, PipelineConfig, ProductionSim, SnapshotPolicy};
use scope_workload::{LiteralPolicy, WorkloadConfig};
use sis::SisStore;

fn normalized(report: &DailyReport) -> String {
    let mut r = report.clone();
    r.compile_cache = Default::default();
    r.exec_cache = Default::default();
    r.delta_compile = Default::default();
    r.feature_cache = Default::default();
    r.timings = Default::default();
    format!("{r:?}")
}

fn usage() -> ! {
    eprintln!("usage: recovery --days N --sis DIR --out FILE [--snapshot PATH] [--resume PATH]");
    std::process::exit(2);
}

fn main() {
    let mut days: Option<u32> = None;
    let mut sis_dir: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut snapshot: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--days" => days = value().parse().ok(),
            "--sis" => sis_dir = Some(value()),
            "--out" => out_path = Some(value()),
            "--snapshot" => snapshot = Some(value()),
            "--resume" => resume = Some(value()),
            _ => usage(),
        }
    }
    let (Some(days), Some(sis_dir), Some(out_path)) = (days, sis_dir, out_path) else {
        usage()
    };

    // The sticky-literal recurring-script regime: the one with cross-day
    // literal-epoch state, so resuming mid-run exercises every durable
    // component.
    let wl = WorkloadConfig {
        // qo-lint: allow(seed-salt) — top-level smoke-workload seed, not a derivation salt
        seed: 99,
        num_templates: 24,
        adhoc_per_day: 3,
        max_instances_per_day: 1,
        literals: LiteralPolicy::Sticky {
            redraw_every_days: 0,
        },
    };
    let mut sim = ProductionSim::with_sis_store(
        wl,
        PipelineConfig::default(),
        SisStore::at_dir(&sis_dir).expect("create sis dir"),
    );
    if let Some(path) = &resume {
        sim.restore(path).expect("restore snapshot");
        eprintln!("resumed from {path} at day {}", sim.day);
    }
    if let Some(path) = &snapshot {
        sim.set_snapshot_policy(Some(SnapshotPolicy::every_day(path)));
    }

    let mut lines = Vec::new();
    while sim.day < days {
        let out = sim
            .advance_day()
            .expect("generated workloads compile on the default path");
        lines.push(normalized(&out.report));
    }
    let mut body = lines.join("\n");
    body.push('\n');
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).expect("create output dir");
    }
    std::fs::write(&out_path, body).expect("write report lines");
    eprintln!(
        "ran days {}..{days}, wrote {} report line(s) to {out_path}",
        days - lines.len() as u32,
        lines.len()
    );
}

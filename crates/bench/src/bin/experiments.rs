//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! cargo run --release -p qo_bench --bin experiments -- all
//! cargo run --release -p qo_bench --bin experiments -- fig6
//! cargo run --release -p qo_bench --bin experiments -- table2 --threads 8
//! ```
//!
//! `--threads N` (or the `QO_THREADS` env var) runs the pipeline's
//! compile-bound stages on `N` worker threads (`0` = all cores); results
//! are bit-identical to the serial default. `--cache on|off` (or `QO_CACHE`)
//! toggles the compile-result cache, `--exec-cache on|off` (or
//! `QO_EXEC_CACHE`) the execution-result cache, `--delta-compile on|off`
//! (or `QO_DELTA`) delta treatment compilation, and `--feature-cache on|off`
//! (or `QO_FEATURE_CACHE`) the span-feature cache — all bit-identical either
//! way, only throughput differs (all on by default). `--snapshot-every N`
//! (or `QO_SNAPSHOT_EVERY`) writes a durable-state snapshot to
//! `results/snapshots/<experiment>.qosnap` after every `N`-th simulated day
//! of the closed-loop experiments (0 = never, the default) — outputs are
//! bit-identical either way; the write cost lands in each day's
//! `timings.snapshot_ns`. `--compile-budget N` (or `QO_COMPILE_BUDGET`)
//! caps every counterfactual recompile at `N` optimizer tasks (0 =
//! unlimited, the default): the anytime engine sheds exploration past the
//! budget and extracts the best plan found so far — hint files and steering
//! reports are budget-invariant; only the measurement path degrades.
//!
//! Each experiment writes its raw series to `results/<name>.csv` and prints
//! a summary row comparing the paper's reported shape with the measured one.
//! Absolute numbers are not expected to match (the substrate is a simulator,
//! not SCOPE's production fleet); the *shape* — who wins, by roughly what
//! factor, where the crossovers fall — is the reproduction target.

use flighting::{FlightBudget, FlightRequest, FlightingService};
use qo_advisor::{
    aggregate_impact, CacheConfig, DeltaConfig, ExecCacheConfig, FeatureCacheConfig,
    HintedComparison, ParallelismConfig, PipelineConfig, ProductionSim, QoAdvisor,
    RecommendStrategy, SnapshotPolicy, ValidationModel, ValidationSample,
};
use qo_bench::corpus::{write_csv, Env};
use qo_bench::{mean, pearson, percentile, polyfit1};
use scope_runtime::{Cluster, ClusterExecutor, Executor};
use scope_workload::{build_view, LiteralPolicy, WorkloadConfig};

/// Worker-thread override for every experiment in this run.
static THREADS: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();

fn set_threads(threads: Option<usize>) {
    let _ = THREADS.set(threads);
}

/// Compile-result-cache override for every experiment in this run.
static CACHE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();

fn set_cache(enabled: bool) {
    let _ = CACHE.set(enabled);
}

fn parse_cache_flag(value: &str) -> bool {
    match value {
        "on" | "1" | "true" => true,
        "off" | "0" | "false" => false,
        other => {
            eprintln!("cache flag must be on|off, got `{other}`");
            std::process::exit(2);
        }
    }
}

/// Execution-result-cache override for every experiment in this run.
static EXEC_CACHE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();

fn set_exec_cache(enabled: bool) {
    let _ = EXEC_CACHE.set(enabled);
}

/// Delta-slate-compilation override for every experiment in this run.
static DELTA: std::sync::OnceLock<bool> = std::sync::OnceLock::new();

fn set_delta(enabled: bool) {
    let _ = DELTA.set(enabled);
}

/// Span-feature-cache override for every experiment in this run.
static FEATURE_CACHE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();

fn set_feature_cache(enabled: bool) {
    let _ = FEATURE_CACHE.set(enabled);
}

/// Anytime compile budget for the measurement-path (counterfactual)
/// compiles of every closed-loop experiment in this run.
static COMPILE_BUDGET: std::sync::OnceLock<qo_advisor::CompileBudget> = std::sync::OnceLock::new();

fn set_compile_budget(budget: qo_advisor::CompileBudget) {
    let _ = COMPILE_BUDGET.set(budget);
}

/// Parse via the shared [`qo_advisor::CompileBudget`] parser (same spellings
/// as `QO_COMPILE_BUDGET` everywhere).
fn parse_budget_flag(value: &str) -> qo_advisor::CompileBudget {
    qo_advisor::CompileBudget::parse(value).unwrap_or_else(|e| {
        eprintln!("bad compile budget: {e}");
        std::process::exit(2);
    })
}

/// Day-boundary snapshot cadence for the closed-loop experiments
/// (0 = never).
static SNAPSHOT_EVERY: std::sync::OnceLock<u32> = std::sync::OnceLock::new();

fn set_snapshot_every(every: u32) {
    let _ = SNAPSHOT_EVERY.set(every);
}

/// Install the CLI-selected snapshot policy on a closed-loop simulation,
/// writing to `results/snapshots/<name>.qosnap`. No-op unless
/// `--snapshot-every` (or `QO_SNAPSHOT_EVERY`) selected a cadence.
fn apply_snapshot_policy(sim: &mut ProductionSim, name: &str) {
    let every = *SNAPSHOT_EVERY.get_or_init(|| 0);
    if every == 0 {
        return;
    }
    let dir = std::path::Path::new("results").join("snapshots");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    sim.set_snapshot_policy(Some(SnapshotPolicy {
        path: dir.join(format!("{name}.qosnap")),
        every,
    }));
}

/// Literal-redraw policy for every simulated workload in this run.
static LITERALS: std::sync::OnceLock<LiteralPolicy> = std::sync::OnceLock::new();

fn set_literals(policy: LiteralPolicy) {
    let _ = LITERALS.set(policy);
}

/// The CLI-selected literal-redraw policy (default: fresh every run).
fn literal_policy() -> LiteralPolicy {
    *LITERALS.get_or_init(|| LiteralPolicy::FreshEachRun)
}

/// Parse `fresh` | `sticky` | `sticky:N` | `mixed:F` via the shared
/// [`LiteralPolicy`] parser (same spellings as `QO_LITERALS` everywhere).
fn parse_literals_flag(value: &str) -> LiteralPolicy {
    value.parse().unwrap_or_else(|e| {
        eprintln!("bad literals flag: {e}");
        std::process::exit(2);
    })
}

/// The base pipeline configuration every experiment derives from: defaults
/// plus the CLI-selected parallelism and cache switches.
fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        parallelism: ParallelismConfig {
            threads: *THREADS.get_or_init(|| None),
        },
        cache: if *CACHE.get_or_init(|| true) {
            CacheConfig::default()
        } else {
            CacheConfig::disabled()
        },
        exec_cache: if *EXEC_CACHE.get_or_init(|| true) {
            ExecCacheConfig::default()
        } else {
            ExecCacheConfig::disabled()
        },
        delta: if *DELTA.get_or_init(|| true) {
            DeltaConfig::default()
        } else {
            DeltaConfig::disabled()
        },
        feature_cache: if *FEATURE_CACHE.get_or_init(|| true) {
            FeatureCacheConfig::default()
        } else {
            FeatureCacheConfig::disabled()
        },
        compile_budget: *COMPILE_BUDGET.get_or_init(qo_advisor::CompileBudget::unlimited),
        ..PipelineConfig::default()
    }
}

/// The base workload every simulation experiment derives from: the given
/// shape plus the CLI-selected literal-redraw policy.
fn workload_config(
    seed: u64,
    num_templates: usize,
    adhoc_per_day: usize,
    max_instances_per_day: u32,
) -> WorkloadConfig {
    WorkloadConfig {
        seed,
        num_templates,
        adhoc_per_day,
        max_instances_per_day,
        literals: literal_policy(),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                eprintln!("--threads requires an integer argument");
                std::process::exit(2);
            });
        set_threads(Some(n));
        args.drain(i..=i + 1);
    } else if let Ok(value) = std::env::var("QO_THREADS") {
        let n = value.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("QO_THREADS must be an integer, got `{value}`");
            std::process::exit(2);
        });
        set_threads(Some(n));
    }
    if let Some(i) = args.iter().position(|a| a == "--cache") {
        let enabled = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--cache requires on|off");
            std::process::exit(2);
        });
        set_cache(parse_cache_flag(enabled));
        args.drain(i..=i + 1);
    } else if let Ok(value) = std::env::var("QO_CACHE") {
        set_cache(parse_cache_flag(&value));
    }
    if let Some(i) = args.iter().position(|a| a == "--exec-cache") {
        let enabled = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--exec-cache requires on|off");
            std::process::exit(2);
        });
        set_exec_cache(parse_cache_flag(enabled));
        args.drain(i..=i + 1);
    } else if let Ok(value) = std::env::var("QO_EXEC_CACHE") {
        set_exec_cache(parse_cache_flag(&value));
    }
    if let Some(i) = args.iter().position(|a| a == "--delta-compile") {
        let enabled = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--delta-compile requires on|off");
            std::process::exit(2);
        });
        set_delta(parse_cache_flag(enabled));
        args.drain(i..=i + 1);
    } else if let Ok(value) = std::env::var("QO_DELTA") {
        set_delta(parse_cache_flag(&value));
    }
    if let Some(i) = args.iter().position(|a| a == "--feature-cache") {
        let enabled = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--feature-cache requires on|off");
            std::process::exit(2);
        });
        set_feature_cache(parse_cache_flag(enabled));
        args.drain(i..=i + 1);
    } else if let Ok(value) = std::env::var("QO_FEATURE_CACHE") {
        set_feature_cache(parse_cache_flag(&value));
    }
    if let Some(i) = args.iter().position(|a| a == "--compile-budget") {
        let value = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--compile-budget requires a task count (0 = unlimited)");
            std::process::exit(2);
        });
        set_compile_budget(parse_budget_flag(value));
        args.drain(i..=i + 1);
    } else if let Ok(value) = std::env::var("QO_COMPILE_BUDGET") {
        set_compile_budget(parse_budget_flag(&value));
    }
    if let Some(i) = args.iter().position(|a| a == "--snapshot-every") {
        let every = args
            .get(i + 1)
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or_else(|| {
                eprintln!("--snapshot-every requires an integer argument (0 = never)");
                std::process::exit(2);
            });
        set_snapshot_every(every);
        args.drain(i..=i + 1);
    } else if let Ok(value) = std::env::var("QO_SNAPSHOT_EVERY") {
        set_snapshot_every(value.parse().unwrap_or_else(|_| {
            eprintln!("QO_SNAPSHOT_EVERY must be an integer, got `{value}`");
            std::process::exit(2);
        }));
    }
    if let Some(i) = args.iter().position(|a| a == "--literals") {
        let policy = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--literals requires fresh|sticky[:days]|mixed:fraction");
            std::process::exit(2);
        });
        set_literals(parse_literals_flag(policy));
        args.drain(i..=i + 1);
    } else if let Ok(value) = std::env::var("QO_LITERALS") {
        set_literals(parse_literals_flag(&value));
    }
    let which = args.first().map(String::as_str).unwrap_or("all");
    let run = |name: &str| which == "all" || which == name;

    if run("fig2") || run("fig4") {
        fig2_fig4();
    }
    if run("fig3") || run("fig5") {
        fig3_fig5();
    }
    if run("fig6") {
        fig6();
    }
    if run("fig7") || run("fig8") {
        fig7_fig8();
    }
    if run("fig9") {
        fig9();
    }
    if run("table2") || run("fig10") || run("fig11") || run("fig12") {
        table2_and_figs();
    }
    if run("table3") {
        table3();
    }
    if run("ablation-cost-gate") {
        ablation_cost_gate();
    }
    if run("ablation-span-features") {
        ablation_span_features();
    }
    if run("negi-cost") {
        negi_maintenance_cost();
    }
    if ![
        "all",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "table2",
        "table3",
        "ablation-cost-gate",
        "ablation-span-features",
        "negi-cost",
    ]
    .contains(&which)
    {
        eprintln!("unknown experiment {which}");
        std::process::exit(2);
    }
}

/// Figures 2 and 4: week-over-week instability of single A/B savings.
fn fig2_fig4() {
    println!("\n=== Figures 2 & 4: recurring-job stability (week0 vs week1) ===");
    let env = Env::standard(2022, 60, literal_policy());
    let default = env.default_config();
    let mut svc = FlightingService::new(
        Cluster::preproduction(),
        FlightBudget {
            queue_size: usize::MAX,
            ..FlightBudget::default()
        },
    );
    let preprod_exec = ClusterExecutor::new(Cluster::preproduction());

    // Every estimated-cost-improving span flip of two days of jobs (the
    // candidates the early pipeline would have A/B-tested).
    let mut requests = Vec::new();
    for day in 0..2u32 {
        for j in &env.spanned_jobs(day) {
            for (flip, cost) in env.recompile_span(j) {
                if cost.is_some_and(|c| c < j.default_cost) {
                    requests.push(FlightRequest {
                        template: j.job.template,
                        plan: j.job.plan.clone(),
                        job_seed: j.job.job_seed,
                        baseline: default,
                        treatment: default.with_flip(flip),
                    });
                }
            }
        }
    }
    let (week0, _) = svc.flight_batch(&env.optimizer, &preprod_exec, &requests);
    let (week1, _) = svc.flight_batch(&env.optimizer, &preprod_exec, &requests);

    let mut rows = Vec::new();
    let mut lat = Vec::new();
    let mut pn = Vec::new();
    for (a, b) in week0.iter().zip(week1.iter()) {
        let (Some(m0), Some(m1)) = (a.measurement(), b.measurement()) else {
            continue;
        };
        rows.push(format!(
            "{},{},{},{}",
            m0.latency_delta(),
            m1.latency_delta(),
            m0.pn_delta(),
            m1.pn_delta()
        ));
        lat.push((m0.latency_delta(), m1.latency_delta()));
        pn.push((m0.pn_delta(), m1.pn_delta()));
    }
    write_csv(
        "fig2_fig4_stability.csv",
        "w0_latency,w1_latency,w0_pn,w1_pn",
        &rows,
    );

    let regress = |pairs: &[(f64, f64)]| {
        let improved: Vec<&(f64, f64)> = pairs.iter().filter(|(w0, _)| *w0 < 0.0).collect();
        if improved.is_empty() {
            return 0.0;
        }
        improved.iter().filter(|(_, w1)| *w1 > 0.0).count() as f64 / improved.len() as f64
    };
    println!("  jobs flighted twice: {}", lat.len());
    println!(
        "  Fig 2 latency: {:.0}% of week0-improved jobs regressed in week1 (paper: >40%)",
        100.0 * regress(&lat)
    );
    println!(
        "  Fig 4 PNhours: {:.0}% of week0-improved jobs regressed in week1 (paper: >40%)",
        100.0 * regress(&pn)
    );
}

/// Figures 3 and 5: A/A variance of latency vs PNhours.
fn fig3_fig5() {
    println!("\n=== Figures 3 & 5: A/A variance (10 runs per job) ===");
    let env = Env::standard(2022, 60, literal_policy());
    let default = env.default_config();
    let jobs = env.workload.jobs_for_day(0);
    let mut points = Vec::new();
    for job in &jobs {
        let Ok(compiled) = env.optimizer.compile(&job.plan, &default) else {
            continue;
        };
        let runs = flighting::run_aa(&compiled.physical, &env.cluster, job.job_seed, 10);
        let lat: Vec<f64> = runs.iter().map(|m| m.latency_sec).collect();
        let pn: Vec<f64> = runs.iter().map(|m| m.pn_hours).collect();
        points.push((
            mean(&lat),
            flighting::aa::coefficient_of_variation(&lat),
            flighting::aa::coefficient_of_variation(&pn),
        ));
    }
    let max_t = points.iter().map(|p| p.0).fold(1e-12, f64::max);
    let rows: Vec<String> = points
        .iter()
        .map(|(t, cl, cp)| format!("{},{},{}", t / max_t, cl, cp))
        .collect();
    write_csv(
        "fig3_fig5_aa_variance.csv",
        "norm_exec_time,cv_latency,cv_pnhours",
        &rows,
    );

    let over5 = |sel: &dyn Fn(&(f64, f64, f64)) -> f64| {
        100.0 * points.iter().filter(|p| sel(p) > 0.05).count() as f64 / points.len() as f64
    };
    println!("  jobs: {}", points.len());
    println!(
        "  Fig 3 latency: {:.0}% of jobs exceed 5% variance (paper: >90%)",
        over5(&|p| p.1)
    );
    println!(
        "  Fig 5 PNhours: {:.0}% of jobs exceed 5% variance (paper: <50%)",
        over5(&|p| p.2)
    );
}

/// Figure 6: estimated-cost deltas do not predict latency deltas.
fn fig6() {
    println!("\n=== Figure 6: estimated-cost delta vs latency delta ===");
    let env = Env::standard(2022, 60, literal_policy());
    let default = env.default_config();
    let mut svc = FlightingService::new(
        Cluster::preproduction(),
        FlightBudget {
            queue_size: usize::MAX,
            ..FlightBudget::default()
        },
    );
    let preprod_exec = ClusterExecutor::new(Cluster::preproduction());
    let mut est = Vec::new();
    let mut lat = Vec::new();
    // ~5 days of jobs, every lower-estimate flip per job (paper: 950 jobs
    // over 5 days).
    'days: for day in 0..5u32 {
        let jobs = env.spanned_jobs(day);
        let mut requests = Vec::new();
        let mut deltas = Vec::new();
        for j in &jobs {
            for (flip, cost) in env.recompile_span(j) {
                let Some(cost) = cost else { continue };
                if cost >= j.default_cost {
                    continue;
                }
                deltas.push(cost / j.default_cost - 1.0);
                requests.push(FlightRequest {
                    template: j.job.template,
                    plan: j.job.plan.clone(),
                    job_seed: j.job.job_seed,
                    baseline: default,
                    treatment: default.with_flip(flip),
                });
            }
        }
        let (outcomes, _) = svc.flight_batch(&env.optimizer, &preprod_exec, &requests);
        for (d, o) in deltas.iter().zip(outcomes.iter()) {
            if let Some(m) = o.measurement() {
                est.push(*d);
                lat.push(m.latency_delta());
                if est.len() >= 1000 {
                    break 'days;
                }
            }
        }
    }
    let rows: Vec<String> = est
        .iter()
        .zip(lat.iter())
        .map(|(e, l)| format!("{e},{l}"))
        .collect();
    write_csv(
        "fig6_estcost_vs_latency.csv",
        "est_cost_delta,latency_delta",
        &rows,
    );

    let r = pearson(&est, &lat);
    let med = percentile(&est, 50.0);
    let big_improvers: Vec<usize> = (0..est.len()).filter(|&i| est[i] <= med).collect();
    let regressed = big_improvers.iter().filter(|&&i| lat[i] > 0.0).count() as f64
        / big_improvers.len().max(1) as f64;
    println!("  (job, flip) pairs flighted: {}", est.len());
    println!("  Pearson r(est delta, latency delta) = {r:+.3} (paper: no real correlation)");
    println!(
        "  Among the most-improving half of estimates, {:.0}% regressed in latency (paper: >40%)",
        100.0 * regressed
    );
}

/// Gather (DataRead delta, DataWritten delta, PN delta) flighting samples.
fn gather_samples(env: &Env, days: std::ops::Range<u32>, salt: u64) -> Vec<ValidationSample> {
    let default = env.default_config();
    let mut svc = FlightingService::new(
        Cluster::preproduction(),
        FlightBudget {
            queue_size: usize::MAX,
            ..FlightBudget::default()
        },
    );
    let preprod_exec = ClusterExecutor::new(Cluster::preproduction());
    let mut samples = Vec::new();
    for day in days {
        let jobs = env.spanned_jobs(day);
        let requests: Vec<FlightRequest> = jobs
            .iter()
            .map(|j| {
                let flip = env.random_flip(j, salt ^ u64::from(day));
                FlightRequest {
                    template: j.job.template,
                    plan: j.job.plan.clone(),
                    job_seed: j.job.job_seed,
                    baseline: default,
                    treatment: default.with_flip(flip),
                }
            })
            .collect();
        let (outcomes, _) = svc.flight_batch(&env.optimizer, &preprod_exec, &requests);
        samples.extend(
            outcomes
                .iter()
                .filter_map(|o| o.measurement())
                .map(|m| ValidationSample {
                    data_read_delta: m.data_read_delta(),
                    data_written_delta: m.data_written_delta(),
                    pn_delta: m.pn_delta(),
                }),
        );
    }
    samples
}

/// Figures 7 and 8: DataRead/DataWritten deltas correlate with PN deltas.
fn fig7_fig8() {
    println!("\n=== Figures 7 & 8: data deltas predict PNhours deltas ===");
    let env = Env::standard(2022, 60, literal_policy());
    let samples = gather_samples(&env, 0..3, 0x77);
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "{},{},{}",
                s.data_read_delta, s.data_written_delta, s.pn_delta
            )
        })
        .collect();
    write_csv(
        "fig7_fig8_data_vs_pn.csv",
        "data_read_delta,data_written_delta,pn_delta",
        &rows,
    );

    let dr: Vec<f64> = samples.iter().map(|s| s.data_read_delta).collect();
    let dw: Vec<f64> = samples.iter().map(|s| s.data_written_delta).collect();
    let pn: Vec<f64> = samples.iter().map(|s| s.pn_delta).collect();
    let (a_r, b_r) = polyfit1(&dr, &pn);
    let (a_w, b_w) = polyfit1(&dw, &pn);
    println!("  samples: {}", samples.len());
    println!(
        "  Fig 7 DataRead:    r = {:+.3}, fit pn = {:+.3} + {:+.3}*dr (paper: clear positive trend)",
        pearson(&dr, &pn),
        a_r,
        b_r
    );
    println!(
        "  Fig 8 DataWritten: r = {:+.3}, fit pn = {:+.3} + {:+.3}*dw (paper: positive trend, weaker)",
        pearson(&dw, &pn),
        a_w,
        b_w
    );
}

/// Figure 9: validation-model accuracy on held-out days.
fn fig9() {
    println!("\n=== Figure 9: validation model, predicted vs actual PN delta ===");
    let env = Env::standard(2022, 60, literal_policy());
    // Train on a 14-day window of random pre-production flights (Â§4.3);
    // evaluate against what actually happens in *production*: paired
    // default/flip runs of later days' jobs on the production cluster.
    let train = gather_samples(&env, 0..14, 0x7A11);
    let model = ValidationModel::fit(&train).expect("enough training samples");
    let default = env.default_config();
    let mut test = Vec::new();
    for day in 14..18u32 {
        for j in &env.spanned_jobs(day) {
            let flip = env.random_flip(j, 0x7E57 ^ u64::from(day));
            let Ok(treated) = env.optimizer.compile(&j.job.plan, &default.with_flip(flip)) else {
                continue;
            };
            let base = env
                .optimizer
                .compile(&j.job.plan, &default)
                .expect("default compiles");
            // qo-lint: allow(seed-salt) — experiment-local replay stream, never cached or
            // shared with the steering loop's seed vocabulary
            let run_seed = scope_ir::ids::mix64(u64::from(day), 0xF19);
            let m_base = env
                .cluster
                .execute(&base.physical, j.job.job_seed, run_seed);
            let m_new = env
                .cluster
                .execute(&treated.physical, j.job.job_seed, run_seed);
            test.push(ValidationSample {
                data_read_delta: m_new.data_read_delta(&m_base),
                data_written_delta: m_new.data_written_delta(&m_base),
                pn_delta: m_new.pn_delta(&m_base),
            });
        }
    }

    let rows: Vec<String> = test
        .iter()
        .map(|s| {
            format!(
                "{},{}",
                model.predict(s.data_read_delta, s.data_written_delta),
                s.pn_delta
            )
        })
        .collect();
    write_csv(
        "fig9_predicted_vs_actual.csv",
        "predicted_pn_delta,actual_pn_delta",
        &rows,
    );

    let passing: Vec<&ValidationSample> = test
        .iter()
        .filter(|s| model.predict(s.data_read_delta, s.data_written_delta) < -0.1)
        .collect();
    let below_01 =
        passing.iter().filter(|s| s.pn_delta < -0.1).count() as f64 / passing.len().max(1) as f64;
    let below_0 =
        passing.iter().filter(|s| s.pn_delta < 0.0).count() as f64 / passing.len().max(1) as f64;
    println!(
        "  train {} / test {} samples; model: pn = {:+.3} {:+.3}*dr {:+.3}*dw (R2 test {:.2})",
        train.len(),
        test.len(),
        model.intercept,
        model.w_read,
        model.w_written,
        model.r_squared(&test)
    );
    println!("  of jobs predicted < -0.1: {} jobs", passing.len());
    println!(
        "    {:.0}% had actual delta < -0.1 (paper: 85%)",
        100.0 * below_01
    );
    println!(
        "    {:.0}% had actual delta <  0.0 (paper: 91%)",
        100.0 * below_0
    );
}

/// Table 2 and Figures 10-12: end-to-end production impact.
fn table2_and_figs() {
    println!("\n=== Table 2 + Figures 10-12: pre-production impact of QO-Advisor ===");
    let mut sim = ProductionSim::new(workload_config(2022, 60, 15, 2), pipeline_config());
    apply_snapshot_policy(&mut sim, "table2");
    sim.bootstrap_validation_model(5, 24)
        .expect("generated workloads compile on the default path");
    let outcomes = sim
        .run(25)
        .expect("generated workloads compile on the default path");
    let mut comparisons: Vec<HintedComparison> = Vec::new();
    for o in &outcomes {
        comparisons.extend(o.comparisons.iter().copied());
    }
    let agg = aggregate_impact(&comparisons);

    let series = |f: &dyn Fn(&HintedComparison) -> f64| {
        let mut v: Vec<f64> = comparisons.iter().map(f).collect();
        v.sort_by(|a, b| a.total_cmp(b));
        v
    };
    let pn = series(&|c| c.pn_delta());
    let lat = series(&|c| c.latency_delta());
    let vert = series(&|c| c.vertices_delta());
    let rows: Vec<String> = (0..pn.len())
        .map(|i| format!("{},{},{},{}", i, pn[i], lat[i], vert[i]))
        .collect();
    write_csv(
        "fig10_11_12_deltas.csv",
        "rank,pn_delta,latency_delta,vertices_delta",
        &rows,
    );

    let improved =
        |v: &[f64]| 100.0 * v.iter().filter(|d| **d < 0.0).count() as f64 / v.len().max(1) as f64;
    println!("  hint-matched production jobs measured: {}", agg.jobs);
    println!("  Table 2 (paper -> ours):");
    println!("    PNhours  -14.3%  ->  {:+.1}%", agg.pn_hours_pct);
    println!("    Latency   -8.9%  ->  {:+.1}%", agg.latency_pct);
    println!("    Vertices -52.8%  ->  {:+.1}%", agg.vertices_pct);
    if !pn.is_empty() {
        println!(
            "  Fig 10 PNhours deltas: {:.0}% improved; best {:+.0}%, worst {:+.0}% (paper: ~80%, -50%, +15%)",
            improved(&pn),
            100.0 * pn[0],
            100.0 * pn[pn.len() - 1]
        );
        println!(
            "  Fig 11 latency deltas: {:.0}% improved; best {:+.0}%, worst {:+.0}% (paper: ~80%, -90%, +45%)",
            improved(&lat),
            100.0 * lat[0],
            100.0 * lat[lat.len() - 1]
        );
        println!(
            "  Fig 12 vertices deltas: best {:+.0}%, worst {:+.0}%; {} of {} regressed (paper: -60%, +10%, 2 jobs)",
            100.0 * vert[0],
            100.0 * vert[vert.len() - 1],
            vert.iter().filter(|d| **d > 0.0).count(),
            vert.len()
        );
    }
}

/// Table 3: contextual bandit vs uniform-random rule flips.
fn table3() {
    println!("\n=== Table 3: random vs CB rule flips ===");
    let wl = workload_config(2022, 60, 15, 2);
    // Train the CB through the daily loop.
    let mut sim = ProductionSim::new(wl.clone(), pipeline_config());
    apply_snapshot_policy(&mut sim, "table3");
    sim.bootstrap_validation_model(3, 16)
        .expect("generated workloads compile on the default path");
    for _ in 0..30 {
        sim.advance_day()
            .expect("generated workloads compile on the default path");
    }
    // Evaluation day: identical jobs/view (no hints) for both policies.
    let eval_day = sim.day;
    let jobs = sim.workload.jobs_for_day(eval_day);
    let view = build_view(
        &jobs,
        sim.advisor.caching_optimizer(),
        &Default::default(),
        sim.prod_executor(),
    )
    .expect("generated workloads compile on the default path");
    let report_cb = sim
        .advisor
        .run_day(&view, eval_day)
        .expect("pipeline day runs");

    let mut random = QoAdvisor::new(
        sim.optimizer().clone(),
        FlightingService::new(Cluster::preproduction(), FlightBudget::default()),
        PipelineConfig {
            strategy: RecommendStrategy::UniformRandom,
            ..pipeline_config()
        },
    );
    let report_rand = random.run_day(&view, eval_day).expect("pipeline day runs");

    let pct = |n: usize, d: usize| 100.0 * n as f64 / d.max(1) as f64;
    let n_cb = report_cb.jobs_with_span;
    let n_rd = report_rand.jobs_with_span;
    let rows = vec![
        format!(
            "lower_cost,{},{}",
            report_rand.lower_cost, report_cb.lower_cost
        ),
        format!(
            "equal_cost,{},{}",
            report_rand.equal_cost, report_cb.equal_cost
        ),
        format!(
            "higher_cost,{},{}",
            report_rand.higher_cost, report_cb.higher_cost
        ),
        format!(
            "recompile_failures,{},{}",
            report_rand.recompile_failures, report_cb.recompile_failures
        ),
        format!("noop,{},{}", report_rand.noop_chosen, report_cb.noop_chosen),
        format!(
            "total_default_cost,{},{}",
            report_rand.total_default_cost, report_cb.total_default_cost
        ),
        format!(
            "total_chosen_cost,{},{}",
            report_rand.total_chosen_cost, report_cb.total_chosen_cost
        ),
    ];
    write_csv("table3_random_vs_cb.csv", "metric,random,cb", &rows);

    println!("  spanned jobs: random {n_rd}, cb {n_cb} (paper: ~66% non-empty span)");
    println!("                       Random          CB       (paper Random / CB)");
    println!(
        "    Lower cost      {:4} ({:4.1}%)  {:4} ({:4.1}%)   (10.6% / 34.5%)",
        report_rand.lower_cost,
        pct(report_rand.lower_cost, n_rd),
        report_cb.lower_cost,
        pct(report_cb.lower_cost, n_cb)
    );
    println!(
        "    Equal cost      {:4} ({:4.1}%)  {:4} ({:4.1}%)   (35.4% / 32.1%)",
        report_rand.equal_cost,
        pct(report_rand.equal_cost + report_rand.noop_chosen, n_rd),
        report_cb.equal_cost,
        pct(report_cb.equal_cost + report_cb.noop_chosen, n_cb)
    );
    println!(
        "    Higher cost     {:4} ({:4.1}%)  {:4} ({:4.1}%)   (36.0% / 19.5%)",
        report_rand.higher_cost,
        pct(report_rand.higher_cost, n_rd),
        report_cb.higher_cost,
        pct(report_cb.higher_cost, n_cb)
    );
    println!(
        "    Recompile fail  {:4} ({:4.1}%)  {:4} ({:4.1}%)   (18.0% / 13.9%)",
        report_rand.recompile_failures,
        pct(report_rand.recompile_failures, n_rd),
        report_cb.recompile_failures,
        pct(report_cb.recompile_failures, n_cb)
    );
    println!(
        "    Total est cost  {:.3e} -> {:.3e} (x{:.2} vs default) | CB {:.3e} (x{:.2})   (paper: 1.7e11 -> 1.0e9)",
        report_rand.total_default_cost,
        report_rand.total_chosen_cost,
        report_rand.total_chosen_cost / report_rand.total_default_cost.max(1e-12),
        report_cb.total_chosen_cost,
        report_cb.total_chosen_cost / report_cb.total_default_cost.max(1e-12),
    );
}

/// §5.2 ablation: without estimated-cost gating, flighting drowns.
fn ablation_cost_gate() {
    println!("\n=== §5.2 ablation: estimated-cost gate removed ===");
    // A realistic (tight) daily flighting budget.
    let tight = FlightBudget {
        max_job_seconds: 24.0 * 3600.0,
        total_seconds: 6.0 * 3600.0,
        queue_size: 64,
    };
    let run_one = |gate: bool| {
        let wl = workload_config(2022, 60, 15, 2);
        let mut sim = ProductionSim::new(
            wl,
            PipelineConfig {
                strategy: RecommendStrategy::UniformRandom,
                est_cost_gate: gate,
                flight_budget: tight.clone(),
                max_flights_per_day: 64,
                ..pipeline_config()
            },
        );
        let out = sim
            .advance_day()
            .expect("generated workloads compile on the default path");
        (
            out.report.flighted,
            out.report.flight_success,
            out.report.flight_timeout,
            out.report.flight_seconds_used,
        )
    };
    let (f_gate, s_gate, t_gate, sec_gate) = run_one(true);
    let (f_none, s_none, t_none, sec_none) = run_one(false);
    write_csv(
        "ablation_cost_gate.csv",
        "config,flighted,success,timeout,seconds_used",
        &[
            format!("gated,{f_gate},{s_gate},{t_gate},{sec_gate}"),
            format!("ungated,{f_none},{s_none},{t_none},{sec_none}"),
        ],
    );
    println!(
        "  with cost gate:    {f_gate} flighted, {s_gate} success, {t_gate} timeout, {:.1}h used",
        sec_gate / 3600.0
    );
    println!(
        "  without cost gate: {f_none} flighted, {s_none} success, {t_none} timeout, {:.1}h used",
        sec_none / 3600.0
    );
    println!(
        "  (paper: without cost-based filters, flighting could not complete in 3 days;\n   \
         expect timeouts/abandoned flights to dominate the ungated run)"
    );
}

/// §6 ablation: "the surprising effectiveness of span features". Train two
/// CBs through the same daily loops — one with the full span context, one
/// with span features stripped — then compare their single-day
/// recommendation quality on identical jobs.
fn ablation_span_features() {
    println!("\n=== §6 ablation: span features in the CB context ===");
    let wl = workload_config(2022, 60, 15, 2);
    // Accumulate the acting-policy quality over the back half of training
    // (the first half is warm-up for both variants).
    let run_policy = |span_features: bool| {
        let mut sim = ProductionSim::new(
            wl.clone(),
            PipelineConfig {
                span_features,
                ..pipeline_config()
            },
        );
        sim.bootstrap_validation_model(3, 16)
            .expect("generated workloads compile on the default path");
        let mut acc = qo_advisor::DailyReport::default();
        for i in 0..26 {
            let out = sim
                .advance_day()
                .expect("generated workloads compile on the default path");
            if i >= 13 {
                acc.lower_cost += out.report.lower_cost;
                acc.equal_cost += out.report.equal_cost;
                acc.higher_cost += out.report.higher_cost;
                acc.recompile_failures += out.report.recompile_failures;
                acc.noop_chosen += out.report.noop_chosen;
            }
        }
        acc
    };
    let with = run_policy(true);
    let without = run_policy(false);
    write_csv(
        "ablation_span_features.csv",
        "config,lower,equal,higher,fail,noop",
        &[
            format!(
                "with_span,{},{},{},{},{}",
                with.lower_cost,
                with.equal_cost,
                with.higher_cost,
                with.recompile_failures,
                with.noop_chosen
            ),
            format!(
                "without_span,{},{},{},{},{}",
                without.lower_cost,
                without.equal_cost,
                without.higher_cost,
                without.recompile_failures,
                without.noop_chosen
            ),
        ],
    );
    println!(
        "  with span features:    lower {:>3}  higher {:>3}  fail {:>2}",
        with.lower_cost, with.higher_cost, with.recompile_failures
    );
    println!(
        "  without span features: lower {:>3}  higher {:>3}  fail {:>2}",
        without.lower_cost, without.higher_cost, without.recompile_failures
    );
    println!(
        "  (paper §6: complete-span context features were \"critical to our success\";\n   \
         expect the stripped model to find fewer lower-cost flips and/or regress more)"
    );
}

/// §2.2 "expensive to maintain": the per-job search cost of the Negi et al.
/// 2021 heuristic (sample 1000 configurations, flight the top 10) against
/// QO-Advisor's per-job cost (2 recompiles, amortized span, ≤1 flight per
/// template).
fn negi_maintenance_cost() {
    println!("\n=== §2.2 maintenance cost: Negi et al. 2021 vs QO-Advisor ===");
    let env = Env::standard(2022, 60, literal_policy());
    let mut svc = FlightingService::new(
        Cluster::preproduction(),
        FlightBudget {
            queue_size: usize::MAX,
            ..FlightBudget::default()
        },
    );
    let preprod_exec = ClusterExecutor::new(Cluster::preproduction());
    // A scaled-down heuristic (200 samples instead of 1000) keeps the bench
    // quick; the printed numbers extrapolate linearly.
    let heuristic = qo_advisor::Negi2021 {
        samples: 200,
        top_k: 10,
    };
    let jobs = env.spanned_jobs(0);
    let mut rows = Vec::new();
    let mut total_recompiles = 0usize;
    let mut total_flights = 0usize;
    let mut total_flight_hours = 0.0;
    let mut wins = 0usize;
    let take = jobs.len().min(12);
    for j in jobs.iter().take(take) {
        let out = heuristic.search(
            &env.optimizer,
            &mut svc,
            &preprod_exec,
            j.job.template,
            &j.job.plan,
            j.job.job_seed,
            &j.span,
        );
        total_recompiles += out.recompiles;
        total_flights += out.flights;
        total_flight_hours += out.flight_seconds / 3600.0;
        wins += usize::from(out.chosen.is_some());
        rows.push(format!(
            "{},{},{},{:.2},{}",
            j.job.template,
            out.recompiles,
            out.flights,
            out.flight_seconds / 3600.0,
            out.chosen.is_some()
        ));
    }
    write_csv(
        "negi_cost.csv",
        "template,recompiles,flights,flight_hours,found",
        &rows,
    );
    println!("  Negi-2021 over {take} jobs (200-sample scale-down of the 1000-sample search):");
    println!(
        "    {:.0} recompiles/job, {:.1} flights/job, {:.2} flight-hours/job, {} wins",
        total_recompiles as f64 / take as f64,
        total_flights as f64 / take as f64,
        total_flight_hours / take as f64,
        wins
    );
    println!(
        "  QO-Advisor per job: 2 recompiles (uniform + acting pass), span amortized per\n  \
         template, at most 1 flight per template — a ~{:.0}x recompile reduction even at\n  \
         the scaled-down sample count (5x more at the paper's 1000 samples).",
        (total_recompiles as f64 / take as f64) / 2.0
    );
}

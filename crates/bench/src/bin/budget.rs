//! Anytime-optimization budget sweep: compiles a seeded workload day under
//! a ladder of [`CompileBudget`]s and reports the **tasks-vs-cost-regret
//! curve** — how much plan quality (the anytime objective: summed
//! root-group best costs) each budget point gives up against the unlimited
//! compile, and what fraction of compiles the budget truncates. This is the
//! load-shedding calibration artifact for PERFORMANCE.md's PR-10 chapter:
//! pick the knee of the curve, not a guess, when setting
//! `QO_COMPILE_BUDGET` / `StreamConfig::compile_budget`.
//!
//! Writes the machine-readable record to `results/BENCH_budget.json` by
//! default (`--json [path]` overrides); CI uploads it on every run.
//!
//! Knobs: `--templates N` (default 24), `--adhoc N` (default 4), `--json
//! PATH`.
use scope_lang::{bind_script, Catalog};
use scope_opt::{CompileBudget, Optimizer};
use scope_workload::{Workload, WorkloadConfig};
use std::fmt::Write as _;

/// Transform-heavy pipelines (stacked filters over projections, deep join
/// chains) where exploration genuinely improves the objective — the seeded
/// workload's generated plans are largely normalization-clean, so without
/// these the regret column of the sweep is identically zero and the curve
/// says nothing about where truncation starts costing plan quality.
const DEEP_SCRIPTS: &[&str] = &[
    r#"
        t  = EXTRACT a:int, b:float FROM "store/t";
        f1 = SELECT a, b FROM t WHERE b > 1;
        f2 = SELECT a, b FROM f1 WHERE a < 10;
        f3 = SELECT a, b FROM f2 WHERE b < 100;
        OUTPUT f3 TO "out/f";
    "#,
    r#"
        fact = EXTRACT k:int, m:int, v:float FROM "store/fact";
        d1   = EXTRACT k:int, g:int FROM "store/d1";
        p    = SELECT k, m, v FROM fact;
        f1   = SELECT k, m, v FROM p WHERE v > 100;
        f2   = SELECT k, m, v FROM f1 WHERE k < 50;
        j    = SELECT * FROM f2 AS f JOIN d1 ON f.k == d1.k;
        rpt  = SELECT g, SUM(v) AS total FROM j GROUP BY g;
        OUTPUT rpt TO "out/cube";
    "#,
    r#"
        s  = EXTRACT u:int, x:float, y:float FROM "store/s";
        p1 = SELECT u, x, y FROM s;
        p2 = SELECT u, x, y FROM p1;
        f1 = SELECT u, x, y FROM p2 WHERE x > 0;
        f2 = SELECT u, x, y FROM f1 WHERE y > 0;
        f3 = SELECT u, x, y FROM f2 WHERE u > 10;
        OUTPUT f3 TO "out/deep";
    "#,
];

/// The sweep ladder: powers of two through the observed task range of the
/// workload's cascades, then the unlimited reference point.
const SWEEP: &[u64] = &[8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

struct SweepPoint {
    budget: Option<u64>,
    mean_regret: f64,
    max_regret: f64,
    truncated: usize,
    mean_tasks: f64,
    wall_ms: f64,
}

impl SweepPoint {
    fn json(&self, jobs: usize) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"budget\":{},\"mean_regret\":{:.6},\"max_regret\":{:.6},\
             \"truncated_frac\":{:.4},\"mean_tasks\":{:.1},\"wall_ms\":{:.3}}}",
            self.budget.map_or(0, |b| b),
            self.mean_regret,
            self.max_regret,
            self.truncated as f64 / jobs as f64,
            self.mean_tasks,
            self.wall_ms,
        );
        s
    }
}

fn main() {
    let mut templates = 24usize;
    let mut adhoc = 4usize;
    let mut json_path = "results/BENCH_budget.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        let parse = |v: String, what: &str| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{what} must be an integer, got `{v}`");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--templates" => templates = parse(value("--templates"), "--templates") as usize,
            "--adhoc" => adhoc = parse(value("--adhoc"), "--adhoc") as usize,
            "--json" => json_path = value("--json"),
            other => {
                eprintln!(
                    "unknown argument `{other}` (expected --templates N, \
                     --adhoc N, --json PATH)"
                );
                std::process::exit(2);
            }
        }
    }

    let optimizer = Optimizer::default();
    let default = optimizer.default_config();
    let workload = Workload::new(WorkloadConfig {
        // qo-lint: allow(seed-salt) — top-level probe-workload seed
        seed: 2022,
        num_templates: templates,
        adhoc_per_day: adhoc,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    });
    let mut plans: Vec<std::sync::Arc<scope_ir::LogicalPlan>> = workload
        .jobs_for_day(0)
        .into_iter()
        .map(|job| job.plan)
        .collect();
    let workload_jobs = plans.len();
    for script in DEEP_SCRIPTS {
        plans.push(std::sync::Arc::new(
            bind_script(script, &Catalog::default()).expect("deep scripts bind"),
        ));
    }
    let jobs = plans;

    // Unlimited reference: the floor objective per job, and the cascade
    // sizes the sweep ladder is judged against.
    let reference: Vec<(f64, u64)> = jobs
        .iter()
        .map(|plan| {
            let full = optimizer
                .compile_budgeted(plan, &default, CompileBudget::unlimited())
                .expect("generated workloads compile on the default path");
            (full.objective, full.tasks_executed)
        })
        .collect();
    let mean_full_tasks =
        reference.iter().map(|(_, t)| *t).sum::<u64>() as f64 / reference.len() as f64;
    eprintln!(
        "budget sweep: {} jobs ({} workload + {} transform-heavy), mean \
         unlimited cascade {:.0} tasks",
        jobs.len(),
        workload_jobs,
        DEEP_SCRIPTS.len(),
        mean_full_tasks
    );

    let mut points: Vec<SweepPoint> = Vec::new();
    for &budget in SWEEP.iter() {
        let t0 = std::time::Instant::now();
        let mut regrets: Vec<f64> = Vec::with_capacity(jobs.len());
        let mut truncated = 0usize;
        let mut tasks_total = 0u64;
        for (plan, (full_objective, _)) in jobs.iter().zip(&reference) {
            let b = optimizer
                .compile_budgeted(plan, &default, CompileBudget::tasks(budget))
                .expect("budgeted compiles share the default path's success");
            if b.outcome.is_truncated() {
                truncated += 1;
            }
            tasks_total += b.tasks_executed;
            // Relative cost regret of the anytime plan vs the full search;
            // monotonicity guarantees this is >= 0 (up to f64 rounding).
            regrets.push(b.objective / full_objective - 1.0);
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let point = SweepPoint {
            budget: Some(budget),
            mean_regret: regrets.iter().sum::<f64>() / regrets.len() as f64,
            max_regret: regrets.iter().copied().fold(0.0, f64::max),
            truncated,
            mean_tasks: tasks_total as f64 / jobs.len() as f64,
            wall_ms,
        };
        eprintln!(
            "  budget {budget:>5}: mean regret {:+.3}%, max {:+.3}%, \
             {}/{} truncated, mean {:.0} tasks, {:.1} ms",
            point.mean_regret * 1e2,
            point.max_regret * 1e2,
            truncated,
            jobs.len(),
            point.mean_tasks,
            wall_ms,
        );
        points.push(point);
    }
    // The unlimited endpoint: zero regret by construction, timed for the
    // throughput column.
    let t0 = std::time::Instant::now();
    for plan in &jobs {
        let _ = optimizer
            .compile_budgeted(plan, &default, CompileBudget::unlimited())
            .expect("generated workloads compile on the default path");
    }
    points.push(SweepPoint {
        budget: None,
        mean_regret: 0.0,
        max_regret: 0.0,
        truncated: 0,
        mean_tasks: mean_full_tasks,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    });

    let record = format!(
        "{{\"bench\":\"budget\",\"jobs\":{},\"workload_jobs\":{workload_jobs},\
         \"deep_jobs\":{},\"templates\":{templates},\
         \"mean_full_tasks\":{mean_full_tasks:.1},\"sweep\":[{}]}}\n",
        jobs.len(),
        DEEP_SCRIPTS.len(),
        points
            .iter()
            .map(|p| p.json(jobs.len()))
            .collect::<Vec<_>>()
            .join(","),
    );
    if let Some(parent) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&json_path, &record) {
        Ok(()) => eprintln!("perf record -> {json_path}"),
        Err(e) => {
            eprintln!("failed to write {json_path}: {e}");
            std::process::exit(1);
        }
    }
}

//! Development probe: a fast, verbose run of the closed steering loop used
//! to calibrate the simulator against the paper's shapes. The polished
//! per-figure experiments live in `experiments.rs`; this binary prints the
//! raw daily pipeline counters instead.
use qo_advisor::{
    aggregate_impact, ParallelismConfig, PipelineConfig, ProductionSim, RecommendStrategy,
};
use scope_workload::WorkloadConfig;

fn main() {
    // `QO_THREADS=8` parallelizes the pipeline's compile-bound stages;
    // `QO_CACHE=off` disables the compile-result cache (on by default).
    let threads = std::env::var("QO_THREADS").ok().map(|value| {
        value.parse().unwrap_or_else(|_| {
            eprintln!("QO_THREADS must be an integer, got `{value}`");
            std::process::exit(2);
        })
    });
    let cache = match std::env::var("QO_CACHE").ok().as_deref() {
        None | Some("on" | "1" | "true") => qo_advisor::CacheConfig::default(),
        Some("off" | "0" | "false") => qo_advisor::CacheConfig::disabled(),
        Some(other) => {
            eprintln!("QO_CACHE must be on|off, got `{other}`");
            std::process::exit(2);
        }
    };
    // `QO_EXEC_CACHE=off` disables the execution-result cache (on by
    // default) — the execute-side twin of `QO_CACHE`.
    let exec_cache = std::env::var("QO_EXEC_CACHE").map_or_else(
        |_| qo_advisor::ExecCacheConfig::default(),
        |value| {
            qo_advisor::ExecCacheConfig::parse_switch(&value).unwrap_or_else(|e| {
                eprintln!("bad QO_EXEC_CACHE: {e}");
                std::process::exit(2);
            })
        },
    );
    // `QO_LITERALS=sticky` (or `sticky:N` / `mixed:F`) switches the workload
    // into the recurring-script regime; default redraws literals every run.
    let literals =
        std::env::var("QO_LITERALS").map_or(scope_workload::LiteralPolicy::FreshEachRun, |value| {
            value.parse().unwrap_or_else(|e| {
                eprintln!("bad QO_LITERALS: {e}");
                std::process::exit(2);
            })
        });
    let config = PipelineConfig {
        parallelism: ParallelismConfig { threads },
        cache,
        exec_cache,
        ..PipelineConfig::default()
    };
    let wl = WorkloadConfig {
        seed: 2022,
        num_templates: 60,
        adhoc_per_day: 15,
        max_instances_per_day: 2,
        literals,
    };
    let mut sim = ProductionSim::new(wl.clone(), config.clone());
    let samples = sim
        .bootstrap_validation_model(5, 24)
        .expect("generated workloads compile on the default path");
    eprintln!(
        "bootstrap samples: {} model: {:?}",
        samples.len(),
        sim.advisor.validation_model()
    );
    let mut all_cmp = Vec::new();
    for _ in 0..10 {
        let out = sim
            .advance_day()
            .expect("generated workloads compile on the default path");
        let r = &out.report;
        eprintln!(
            "day {}: span {}/{} lower {} eq {} hi {} fail {} noop {} flighted {} succ {} valid {} hints {} cmp {} cache {}/{} ({:.0}%, view {}/{}) exec {}/{} ({:.0}% full, {:.0}% incl. graphs)",
            r.day, r.jobs_with_span, r.recurring_jobs, r.lower_cost, r.equal_cost, r.higher_cost,
            r.recompile_failures, r.noop_chosen, r.flighted, r.flight_success, r.validated,
            r.hints_published, out.comparisons.len(),
            r.compile_cache.hits(), r.compile_cache.lookups(), 100.0 * r.compile_cache.hit_rate(),
            r.compile_cache.view_build.hits, r.compile_cache.view_build.lookups(),
            r.exec_cache.hits(), r.exec_cache.lookups(),
            100.0 * r.exec_cache.hit_rate(), 100.0 * r.exec_cache.partial_hit_rate()
        );
        all_cmp.extend(out.comparisons);
    }
    let lifetime = sim.advisor.cache_stats();
    eprintln!(
        "compile cache lifetime: {} hits / {} lookups ({:.0}%), {} inserts, {} evictions",
        lifetime.hits,
        lifetime.lookups(),
        100.0 * lifetime.hit_rate(),
        lifetime.inserts,
        lifetime.evictions
    );
    let exec_lifetime = sim.advisor.exec_stats();
    eprintln!(
        "exec cache lifetime: {} executions, {} full replays ({:.0}%), {} graph hits / {} graph lookups ({:.0}%), {} result evictions",
        exec_lifetime.lookups(),
        exec_lifetime.hits(),
        100.0 * exec_lifetime.hit_rate(),
        exec_lifetime.graphs.hits,
        exec_lifetime.graphs.lookups(),
        100.0 * exec_lifetime.graphs.hit_rate(),
        exec_lifetime.results.evictions
    );
    let agg = aggregate_impact(&all_cmp);
    eprintln!(
        "TABLE2: jobs {} pn {:+.1}% latency {:+.1}% vertices {:+.1}%",
        agg.jobs, agg.pn_hours_pct, agg.latency_pct, agg.vertices_pct
    );

    // Table 3 shape: CB vs random on one day after training.
    // CB convergence: train 25 more days, report last-day counters.
    for _ in 0..25 {
        let _ = sim
            .advance_day()
            .expect("generated workloads compile on the default path");
    }
    let out_cb = sim
        .advance_day()
        .expect("generated workloads compile on the default path");
    let r = &out_cb.report;
    eprintln!(
        "CB day {}: lower {} eq {} hi {} fail {} noop {} | total default {:.3e} chosen {:.3e}",
        r.day,
        r.lower_cost,
        r.equal_cost,
        r.higher_cost,
        r.recompile_failures,
        r.noop_chosen,
        r.total_default_cost,
        r.total_chosen_cost
    );
    let mut sim_rand = ProductionSim::new(
        wl,
        PipelineConfig {
            strategy: RecommendStrategy::UniformRandom,
            ..config.clone()
        },
    );
    sim_rand
        .bootstrap_validation_model(1, 4)
        .expect("generated workloads compile on the default path");
    let out = sim_rand
        .advance_day()
        .expect("generated workloads compile on the default path");
    let r = &out.report;
    eprintln!(
        "RANDOM day: lower {} eq {} hi {} fail {} | total default {:.3e} chosen {:.3e}",
        r.lower_cost,
        r.equal_cost,
        r.higher_cost,
        r.recompile_failures,
        r.total_default_cost,
        r.total_chosen_cost
    );
}

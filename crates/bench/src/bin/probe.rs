//! Development probe: a fast, verbose run of the closed steering loop used
//! to calibrate the simulator against the paper's shapes. The polished
//! per-figure experiments live in `experiments.rs`; this binary prints the
//! raw daily pipeline counters instead.
//!
//! With `--json [path]` the probe additionally writes a machine-readable
//! perf record (per-day stage timings + compile/exec/span-feature-cache and
//! delta-compilation counters, plus lifetime totals) to
//! `results/BENCH_probe.json` by default — the cross-PR perf trajectory
//! artifact described in `PERFORMANCE.md`; CI uploads it on every run.
use qo_advisor::{
    aggregate_impact, DayOutcome, ParallelismConfig, PipelineConfig, ProductionSim,
    RecommendStrategy,
};
use scope_workload::WorkloadConfig;
use std::fmt::Write as _;
use std::time::Instant;

/// Minimal JSON record of one simulated day (hand-rendered: every field is
/// an integer or float, so no escaping is needed).
fn day_json(out: &DayOutcome, wall_ms: f64) -> String {
    let r = &out.report;
    let t = &r.timings;
    let cc = r.compile_cache.total();
    let ec = r.exec_cache.total();
    let d = &r.delta_compile;
    let fc = &r.feature_cache;
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"day\":{},\"wall_ms\":{wall_ms:.3},\
         \"timings_ns\":{{\"view_build\":{},\"counterfactual\":{},\
         \"feature_gen\":{},\"recommend\":{},\"flight\":{},\
         \"validate\":{},\"publish\":{},\"snapshot\":{}}},\
         \"compile_cache\":{{\"hits\":{},\"misses\":{},\"inserts\":{},\"evictions\":{}}},\
         \"exec_cache\":{{\"result_hits\":{},\"result_misses\":{},\
         \"graph_hits\":{},\"graph_misses\":{}}},\
         \"delta\":{{\"pruned\":{},\"delta\":{},\"full\":{},\
         \"base_builds\":{},\"base_hits\":{}}},\
         \"feature_cache\":{{\"hits\":{},\"misses\":{},\"inserts\":{},\"evictions\":{}}},\
         \"budget\":{{\"complete\":{},\"truncated\":{}}},\
         \"steering\":{{\"recurring\":{},\"spanned\":{},\"flighted\":{},\
         \"validated\":{},\"hints_published\":{}}}}}",
        r.day,
        t.view_build_ns,
        t.counterfactual_ns,
        t.feature_gen_ns,
        t.recommend_ns,
        t.flight_ns,
        t.validate_ns,
        t.publish_ns,
        t.snapshot_ns,
        cc.hits,
        cc.misses,
        cc.inserts,
        cc.evictions,
        ec.results.hits,
        ec.results.misses,
        ec.graphs.hits,
        ec.graphs.misses,
        d.pruned,
        d.delta,
        d.full,
        d.base_builds,
        d.base_hits,
        fc.hits,
        fc.misses,
        fc.inserts,
        fc.evictions,
        r.compile_budget.complete,
        r.compile_budget.truncated,
        r.recurring_jobs,
        r.jobs_with_span,
        r.flighted,
        r.validated,
        r.hints_published,
    );
    s
}

fn main() {
    let mut args = std::env::args().skip(1);
    // `--json [path]` writes the machine-readable perf record.
    let json_path: Option<String> = match args.next().as_deref() {
        Some("--json") => Some(
            args.next()
                .unwrap_or_else(|| "results/BENCH_probe.json".to_string()),
        ),
        Some(other) => {
            eprintln!("unknown argument `{other}` (expected `--json [path]`)");
            std::process::exit(2);
        }
        None => None,
    };
    // `QO_THREADS=8` parallelizes the pipeline's compile-bound stages;
    // `QO_CACHE=off` disables the compile-result cache (on by default).
    let threads = std::env::var("QO_THREADS").ok().map(|value| {
        value.parse().unwrap_or_else(|_| {
            eprintln!("QO_THREADS must be an integer, got `{value}`");
            std::process::exit(2);
        })
    });
    let cache = match std::env::var("QO_CACHE").ok().as_deref() {
        None | Some("on" | "1" | "true") => qo_advisor::CacheConfig::default(),
        Some("off" | "0" | "false") => qo_advisor::CacheConfig::disabled(),
        Some(other) => {
            eprintln!("QO_CACHE must be on|off, got `{other}`");
            std::process::exit(2);
        }
    };
    // `QO_EXEC_CACHE=off` disables the execution-result cache (on by
    // default) — the execute-side twin of `QO_CACHE`.
    let exec_cache = std::env::var("QO_EXEC_CACHE").map_or_else(
        |_| qo_advisor::ExecCacheConfig::default(),
        |value| {
            qo_advisor::ExecCacheConfig::parse_switch(&value).unwrap_or_else(|e| {
                eprintln!("bad QO_EXEC_CACHE: {e}");
                std::process::exit(2);
            })
        },
    );
    // `QO_DELTA=off` disables delta slate compilation (on by default).
    let delta = std::env::var("QO_DELTA").map_or_else(
        |_| qo_advisor::DeltaConfig::default(),
        |value| {
            qo_advisor::DeltaConfig::parse_switch(&value).unwrap_or_else(|e| {
                eprintln!("bad QO_DELTA: {e}");
                std::process::exit(2);
            })
        },
    );
    // `QO_FEATURE_CACHE=off` disables the span-feature cache (on by
    // default) — the recommend-side twin of `QO_CACHE`.
    let feature_cache = std::env::var("QO_FEATURE_CACHE").map_or_else(
        |_| qo_advisor::FeatureCacheConfig::default(),
        |value| {
            qo_advisor::FeatureCacheConfig::parse_switch(&value).unwrap_or_else(|e| {
                eprintln!("bad QO_FEATURE_CACHE: {e}");
                std::process::exit(2);
            })
        },
    );
    // `QO_COMPILE_BUDGET=N` caps every counterfactual recompile at N
    // optimizer tasks (0/unset = unlimited): the anytime engine sheds
    // exploration past the budget; hints are budget-invariant.
    let compile_budget = std::env::var("QO_COMPILE_BUDGET").map_or_else(
        |_| qo_advisor::CompileBudget::unlimited(),
        |value| {
            qo_advisor::CompileBudget::parse(&value).unwrap_or_else(|e| {
                eprintln!("bad QO_COMPILE_BUDGET: {e}");
                std::process::exit(2);
            })
        },
    );
    // `QO_SNAPSHOT=<path>` writes a durable-state snapshot at every day
    // boundary (see `qo_advisor::snapshot`); the JSON record then carries
    // the per-day write cost plus a measured restore cost.
    let snapshot_path = std::env::var("QO_SNAPSHOT").ok();
    // `QO_LITERALS=sticky` (or `sticky:N` / `mixed:F`) switches the workload
    // into the recurring-script regime; default redraws literals every run.
    let literals =
        std::env::var("QO_LITERALS").map_or(scope_workload::LiteralPolicy::FreshEachRun, |value| {
            value.parse().unwrap_or_else(|e| {
                eprintln!("bad QO_LITERALS: {e}");
                std::process::exit(2);
            })
        });
    let config = PipelineConfig {
        parallelism: ParallelismConfig { threads },
        cache,
        exec_cache,
        delta,
        feature_cache,
        compile_budget,
        ..PipelineConfig::default()
    };
    let wl = WorkloadConfig {
        // qo-lint: allow(seed-salt) — top-level probe-workload seed, not a derivation salt
        seed: 2022,
        num_templates: 60,
        adhoc_per_day: 15,
        max_instances_per_day: 2,
        literals,
    };
    let probe_start = Instant::now();
    let mut sim = ProductionSim::new(wl.clone(), config.clone());
    if let Some(path) = &snapshot_path {
        if let Some(parent) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        sim.set_snapshot_policy(Some(qo_advisor::SnapshotPolicy::every_day(path)));
    }
    let samples = sim
        .bootstrap_validation_model(5, 24)
        .expect("generated workloads compile on the default path");
    eprintln!(
        "bootstrap samples: {} model: {:?}",
        samples.len(),
        sim.advisor.validation_model()
    );
    let mut all_cmp = Vec::new();
    let mut day_records: Vec<String> = Vec::new();
    let mut snapshot_write_ns: u64 = 0;
    let mut advance = |sim: &mut ProductionSim, records: &mut Vec<String>| -> DayOutcome {
        let t = Instant::now();
        let out = sim
            .advance_day()
            .expect("generated workloads compile on the default path");
        records.push(day_json(&out, t.elapsed().as_secs_f64() * 1e3));
        snapshot_write_ns += out.report.timings.snapshot_ns;
        out
    };
    for _ in 0..10 {
        let out = advance(&mut sim, &mut day_records);
        let r = &out.report;
        eprintln!(
            "day {}: span {}/{} lower {} eq {} hi {} fail {} noop {} flighted {} succ {} valid {} hints {} cmp {} cache {}/{} ({:.0}%, view {}/{}) exec {}/{} ({:.0}% full, {:.0}% incl. graphs) delta p/d/f {}/{}/{} (base {}+{})",
            r.day, r.jobs_with_span, r.recurring_jobs, r.lower_cost, r.equal_cost, r.higher_cost,
            r.recompile_failures, r.noop_chosen, r.flighted, r.flight_success, r.validated,
            r.hints_published, out.comparisons.len(),
            r.compile_cache.hits(), r.compile_cache.lookups(), 100.0 * r.compile_cache.hit_rate(),
            r.compile_cache.view_build.hits, r.compile_cache.view_build.lookups(),
            r.exec_cache.hits(), r.exec_cache.lookups(),
            100.0 * r.exec_cache.hit_rate(), 100.0 * r.exec_cache.partial_hit_rate(),
            r.delta_compile.pruned, r.delta_compile.delta, r.delta_compile.full,
            r.delta_compile.base_builds, r.delta_compile.base_hits
        );
        all_cmp.extend(out.comparisons);
    }
    let lifetime = sim.advisor.cache_stats();
    eprintln!(
        "compile cache lifetime: {} hits / {} lookups ({:.0}%), {} inserts, {} evictions",
        lifetime.hits,
        lifetime.lookups(),
        100.0 * lifetime.hit_rate(),
        lifetime.inserts,
        lifetime.evictions
    );
    let exec_lifetime = sim.advisor.exec_stats();
    eprintln!(
        "exec cache lifetime: {} executions, {} full replays ({:.0}%), {} graph hits / {} graph lookups ({:.0}%), {} result evictions",
        exec_lifetime.lookups(),
        exec_lifetime.hits(),
        100.0 * exec_lifetime.hit_rate(),
        exec_lifetime.graphs.hits,
        exec_lifetime.graphs.lookups(),
        100.0 * exec_lifetime.graphs.hit_rate(),
        exec_lifetime.results.evictions
    );
    let delta_lifetime = sim.advisor.delta_stats();
    eprintln!(
        "delta lifetime: {} treatments ({} pruned, {} delta, {} full), {} base builds, {} base hits",
        delta_lifetime.treatments(),
        delta_lifetime.pruned,
        delta_lifetime.delta,
        delta_lifetime.full,
        delta_lifetime.base_builds,
        delta_lifetime.base_hits
    );
    let agg = aggregate_impact(&all_cmp);
    eprintln!(
        "TABLE2: jobs {} pn {:+.1}% latency {:+.1}% vertices {:+.1}%",
        agg.jobs, agg.pn_hours_pct, agg.latency_pct, agg.vertices_pct
    );

    // Table 3 shape: CB vs random on one day after training.
    // CB convergence: train 25 more days, report last-day counters.
    for _ in 0..25 {
        let _ = advance(&mut sim, &mut day_records);
    }
    let out_cb = advance(&mut sim, &mut day_records);
    let r = &out_cb.report;
    eprintln!(
        "CB day {}: lower {} eq {} hi {} fail {} noop {} | total default {:.3e} chosen {:.3e}",
        r.day,
        r.lower_cost,
        r.equal_cost,
        r.higher_cost,
        r.recompile_failures,
        r.noop_chosen,
        r.total_default_cost,
        r.total_chosen_cost
    );
    // The ~40-day probe regime must never churn the compile cache: its
    // capacity is sized ~25x above the per-day insert volume, so a nonzero
    // eviction count here means either the sizing regressed or eviction
    // accounting broke (both worth failing loudly — this is the "assert 0
    // evictions in the 40-day probe" regression gate).
    let lifetime = sim.advisor.cache_stats();
    assert_eq!(
        lifetime.evictions,
        0,
        "40-day probe must not evict compile-cache entries \
         (inserts {} across {:?} per-shard evictions)",
        lifetime.inserts,
        sim.advisor
            .caching_optimizer()
            .cache()
            .map(|c| c.shard_evictions())
    );
    // Final snapshots covering the main simulation's WHOLE run (the eprintln
    // blocks above reported the first 10 pipeline days only) — this is what
    // the JSON record's `lifetime` block carries.
    let exec_lifetime = sim.advisor.exec_stats();
    let delta_lifetime = sim.advisor.delta_stats();
    let feature_lifetime = sim.advisor.feature_stats();
    let budget_lifetime = sim.advisor.budget_stats();
    eprintln!(
        "feature cache lifetime: {} hits / {} lookups ({:.0}%), {} inserts, {} evictions",
        feature_lifetime.hits,
        feature_lifetime.lookups(),
        100.0 * feature_lifetime.hit_rate(),
        feature_lifetime.inserts,
        feature_lifetime.evictions
    );
    let mut sim_rand = ProductionSim::new(
        wl.clone(),
        PipelineConfig {
            strategy: RecommendStrategy::UniformRandom,
            ..config.clone()
        },
    );
    sim_rand
        .bootstrap_validation_model(1, 4)
        .expect("generated workloads compile on the default path");
    // NOT recorded into `day_records`: the JSON record describes the main
    // simulation, and this day belongs to a separate random-strategy sim.
    let out = sim_rand
        .advance_day()
        .expect("generated workloads compile on the default path");
    let r = &out.report;
    eprintln!(
        "RANDOM day: lower {} eq {} hi {} fail {} | total default {:.3e} chosen {:.3e}",
        r.lower_cost,
        r.equal_cost,
        r.higher_cost,
        r.recompile_failures,
        r.total_default_cost,
        r.total_chosen_cost
    );

    // Snapshot cost: per-day write time accumulated above, plus one
    // measured restore into a fresh process image and the on-disk size.
    let (snapshot_restore_ns, snapshot_bytes) = snapshot_path.as_ref().map_or((0, 0), |path| {
        let bytes = std::fs::metadata(path).map_or(0, |m| m.len());
        let mut fresh = ProductionSim::new(wl.clone(), config.clone());
        let t = Instant::now();
        fresh
            .restore(path)
            .expect("restore the probe's own snapshot");
        let restore_ns = t.elapsed().as_nanos() as u64;
        assert_eq!(fresh.day, sim.day, "restored day counter matches");
        eprintln!(
            "snapshot: {} bytes, write total {:.2} ms over {} days, restore {:.2} ms",
            bytes,
            snapshot_write_ns as f64 / 1e6,
            day_records.len(),
            restore_ns as f64 / 1e6,
        );
        (restore_ns, bytes)
    });

    if let Some(path) = json_path {
        let delta_cfg_on = config.delta.enabled;
        let record = format!(
            "{{\"bench\":\"probe\",\"wall_ms\":{:.3},\
             \"config\":{{\"threads\":{},\"cache\":{},\"exec_cache\":{},\
             \"delta\":{delta_cfg_on},\"feature_cache\":{},\"literals\":\"{:?}\"}},\
             \"lifetime\":{{\
             \"compile_cache\":{{\"hits\":{},\"misses\":{},\"inserts\":{},\"evictions\":{}}},\
             \"exec_cache\":{{\"result_hits\":{},\"graph_hits\":{},\"graph_lookups\":{}}},\
             \"delta\":{{\"pruned\":{},\"delta\":{},\"full\":{},\
             \"base_builds\":{},\"base_hits\":{}}},\
             \"feature_cache\":{{\"hits\":{},\"misses\":{},\"inserts\":{},\"evictions\":{}}},\
             \"budget\":{{\"complete\":{},\"truncated\":{}}},\
             \"snapshot\":{{\"enabled\":{},\"write_ns_total\":{},\
             \"restore_ns\":{},\"bytes\":{}}}}},\
             \"days\":[{}]}}",
            probe_start.elapsed().as_secs_f64() * 1e3,
            threads.unwrap_or(1),
            config.cache.enabled,
            config.exec_cache.enabled,
            config.feature_cache.enabled,
            literals,
            lifetime.hits,
            lifetime.misses,
            lifetime.inserts,
            lifetime.evictions,
            exec_lifetime.results.hits,
            exec_lifetime.graphs.hits,
            exec_lifetime.graphs.lookups(),
            delta_lifetime.pruned,
            delta_lifetime.delta,
            delta_lifetime.full,
            delta_lifetime.base_builds,
            delta_lifetime.base_hits,
            feature_lifetime.hits,
            feature_lifetime.misses,
            feature_lifetime.inserts,
            feature_lifetime.evictions,
            budget_lifetime.complete,
            budget_lifetime.truncated,
            snapshot_path.is_some(),
            snapshot_write_ns,
            snapshot_restore_ns,
            snapshot_bytes,
            day_records.join(",")
        );
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).expect("create results dir");
        }
        std::fs::write(&path, record).expect("write perf record");
        eprintln!("perf record written to {path}");
    }
}

//! Fleet serving probe: N tenants' steering loops over one process-wide
//! shared-cache layer, streamed through the bounded-queue worker pool
//! (`qo_advisor::fleet`).
//!
//! Reports the serving numbers the fleet story is about — jobs/sec and the
//! per-job steering-latency distribution (p50/p95/p99) — and then reruns the
//! same fleet with **isolated per-tenant caches** to measure the
//! cross-tenant cache-hit uplift: how much better the compile + span-feature
//! hit rate gets when overlapping tenants share entries instead of each
//! warming a private cache. Writes the machine-readable record to
//! `results/BENCH_fleet.json` by default (`--json [path]` overrides) — the
//! cross-PR perf trajectory artifact described in `PERFORMANCE.md`; CI
//! uploads it on every run.
//!
//! Knobs: `--tenants N` / `QO_TENANTS` (default 64), `--days N` (default 4),
//! `--workers N` / `QO_FLEET_WORKERS` (default 0 = all cores), and
//! `--budget N` / `QO_COMPILE_BUDGET` (default unlimited) — the per-job
//! stream compile budget ([`StreamConfig::compile_budget`]): under load, a
//! finite budget sheds view-build compile work deterministically and the
//! probe reports the shed totals. Flags win over environment variables.
use qo_advisor::fleet::{overlapping_workloads, Fleet, FleetConfig, StreamConfig};
use qo_advisor::{CacheStats, CompileBudget, PipelineConfig};
use scope_workload::WorkloadConfig;
use std::fmt::Write as _;

fn parse_or_exit<T: std::str::FromStr>(value: &str, what: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{what} must be an integer, got `{value}`");
        std::process::exit(2);
    })
}

fn env_knob(name: &str) -> Option<usize> {
    std::env::var(name).ok().map(|v| parse_or_exit(&v, name))
}

fn cache_json(label: &str, s: &CacheStats) -> String {
    format!(
        "\"{label}\":{{\"hits\":{},\"misses\":{},\"inserts\":{},\"evictions\":{}}}",
        s.hits, s.misses, s.inserts, s.evictions
    )
}

struct FleetRun {
    jobs: u64,
    wall_ms: f64,
    jobs_per_sec: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    max_us: f64,
    compile: CacheStats,
    feature: CacheStats,
    exec_results: CacheStats,
    exec_graphs: CacheStats,
    hints_published: usize,
    shed: u64,
    day_lines: Vec<String>,
}

impl FleetRun {
    /// Lifetime compile + span-feature hit rate — the steering layer's two
    /// compile-bound caches, where cross-tenant sharing pays.
    fn steer_hit_rate(&self) -> f64 {
        let hits = self.compile.hits + self.feature.hits;
        let lookups = self.compile.lookups() + self.feature.lookups();
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }

    fn json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"jobs\":{},\"wall_ms\":{:.3},\"jobs_per_sec\":{:.1},\
             \"steering_latency_us\":{{\"p50\":{:.1},\"p95\":{:.1},\
             \"p99\":{:.1},\"max\":{:.1}}},\
             {},{},{},{},\
             \"steer_hit_rate\":{:.4},\"hints_published\":{},\"shed\":{},\
             \"days\":[{}]}}",
            self.jobs,
            self.wall_ms,
            self.jobs_per_sec,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
            cache_json("compile_cache", &self.compile),
            cache_json("feature_cache", &self.feature),
            cache_json("exec_results", &self.exec_results),
            cache_json("exec_graphs", &self.exec_graphs),
            self.steer_hit_rate(),
            self.hints_published,
            self.shed,
            self.day_lines.join(","),
        );
        s
    }
}

fn run_fleet(workloads: &[WorkloadConfig], config: &FleetConfig, days: u32) -> FleetRun {
    let mut fleet = Fleet::new(workloads.to_vec(), config);
    let mut day_lines = Vec::new();
    let mut hints_published = 0usize;
    for _ in 0..days {
        let day = fleet
            .advance_day()
            .expect("generated workloads compile on the default path");
        hints_published += day
            .outcomes
            .iter()
            .map(|o| o.report.hints_published)
            .sum::<usize>();
        day_lines.push(format!(
            "{{\"jobs\":{},\"wall_ms\":{:.3},\"p50_us\":{:.1},\"p99_us\":{:.1},\"shed\":{}}}",
            day.jobs,
            day.wall_ns as f64 / 1e6,
            day.steering_latency.p50() as f64 / 1e3,
            day.steering_latency.p99() as f64 / 1e3,
            day.shed,
        ));
    }
    let exec = fleet.exec_stats();
    let m = fleet.metrics();
    FleetRun {
        jobs: m.jobs,
        wall_ms: m.wall_ns as f64 / 1e6,
        jobs_per_sec: m.jobs_per_sec(),
        p50_us: m.steering_latency.p50() as f64 / 1e3,
        p95_us: m.steering_latency.p95() as f64 / 1e3,
        p99_us: m.steering_latency.p99() as f64 / 1e3,
        max_us: m.steering_latency.max() as f64 / 1e3,
        compile: fleet.compile_stats(),
        feature: fleet.feature_stats(),
        exec_results: exec.results,
        exec_graphs: exec.graphs,
        hints_published,
        shed: m.shed,
        day_lines,
    }
}

fn parse_budget_or_exit(value: &str, what: &str) -> CompileBudget {
    CompileBudget::parse(value).unwrap_or_else(|e| {
        eprintln!("{what}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut tenants = env_knob("QO_TENANTS").unwrap_or(64);
    let mut workers = env_knob("QO_FLEET_WORKERS").unwrap_or(0);
    let mut budget = std::env::var("QO_COMPILE_BUDGET").map_or_else(
        |_| CompileBudget::unlimited(),
        |v| parse_budget_or_exit(&v, "QO_COMPILE_BUDGET"),
    );
    let mut days: u32 = 4;
    let mut json_path = "results/BENCH_fleet.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--tenants" => tenants = parse_or_exit(&value("--tenants"), "--tenants"),
            "--days" => days = parse_or_exit(&value("--days"), "--days"),
            "--workers" => workers = parse_or_exit(&value("--workers"), "--workers"),
            "--budget" => budget = parse_budget_or_exit(&value("--budget"), "--budget"),
            "--json" => json_path = value("--json"),
            other => {
                eprintln!(
                    "unknown argument `{other}` (expected --tenants N, --days N, \
                     --workers N, --budget N, --json PATH)"
                );
                std::process::exit(2);
            }
        }
    }
    if tenants == 0 {
        eprintln!("--tenants must be >= 1");
        std::process::exit(2);
    }

    // The probe workload: probe-shaped templates under the default fresh
    // literal policy (every instance a new exact plan — the hardest case for
    // within-tenant caching, which makes the *cross-tenant* sharing signal
    // cleanest: isolated tenants mostly miss, shared tenants hit each
    // other's entries). Overlapping tenants model the paper's fleet economics
    // — the same recurring templates run across many customers.
    let wl = WorkloadConfig {
        // qo-lint: allow(seed-salt) — top-level probe-workload seed, not a derivation salt
        seed: 2022,
        num_templates: 60,
        adhoc_per_day: 15,
        max_instances_per_day: 2,
        ..WorkloadConfig::default()
    };
    let pipeline = PipelineConfig {
        // 2^16 hashed CB weights per tenant keeps a 64-tenant fleet's bandit
        // state ~32 MB (the default 2^20 would be ~0.5 GB).
        cb: personalizer::CbConfig {
            dim_bits: 16,
            ..personalizer::CbConfig::default()
        },
        ..PipelineConfig::default()
    };
    let workloads = overlapping_workloads(tenants, &wl);
    let stream = StreamConfig {
        workers,
        compile_budget: budget,
        ..StreamConfig::default()
    };

    eprintln!(
        "fleet probe: {tenants} tenants x {days} days, workers={workers} (0=auto), \
         budget={:?}",
        budget.max_tasks
    );
    let shared = run_fleet(
        &workloads,
        &FleetConfig {
            pipeline: pipeline.clone(),
            stream,
            isolated_caches: false,
        },
        days,
    );
    eprintln!(
        "shared-cache fleet: {} jobs in {:.0} ms = {:.0} jobs/sec; steering \
         latency p50 {:.0} us, p95 {:.0} us, p99 {:.0} us; steer hit rate {:.3}",
        shared.jobs,
        shared.wall_ms,
        shared.jobs_per_sec,
        shared.p50_us,
        shared.p95_us,
        shared.p99_us,
        shared.steer_hit_rate(),
    );
    let isolated = run_fleet(
        &workloads,
        &FleetConfig {
            pipeline,
            stream,
            isolated_caches: true,
        },
        days,
    );
    eprintln!(
        "isolated-cache fleet: {} jobs in {:.0} ms = {:.0} jobs/sec; steer hit rate {:.3}",
        isolated.jobs,
        isolated.wall_ms,
        isolated.jobs_per_sec,
        isolated.steer_hit_rate(),
    );
    let uplift = if isolated.steer_hit_rate() > 0.0 {
        shared.steer_hit_rate() / isolated.steer_hit_rate()
    } else {
        f64::INFINITY
    };
    eprintln!("cross-tenant cache-hit uplift: {uplift:.2}x (shared / isolated hit rate)");
    if uplift < 1.2 && tenants > 1 {
        eprintln!("WARNING: uplift below the 1.2x fleet-serving bar");
    }

    if !budget.is_unlimited() {
        eprintln!(
            "stream budget shed {} of {} view-build compiles (shared fleet)",
            shared.shed, shared.jobs
        );
    }
    let record = format!(
        "{{\"bench\":\"fleet\",\"tenants\":{tenants},\"days\":{days},\
         \"workers\":{workers},\"compile_budget\":{},\
         \"shared\":{},\"isolated\":{},\"cross_tenant_hit_uplift\":{uplift:.4}}}\n",
        budget.max_tasks.map_or(0, |n| n),
        shared.json(),
        isolated.json(),
    );
    if let Some(parent) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&json_path, &record) {
        Ok(()) => eprintln!("perf record -> {json_path}"),
        Err(e) => {
            eprintln!("failed to write {json_path}: {e}");
            std::process::exit(1);
        }
    }
}

//! Shared experiment corpora: jobs, spans, and per-flip recompile results,
//! built once per experiment run.

use qo_advisor::reward_from_costs;
use scope_ir::ids::mix64;
use scope_opt::{compute_span, Optimizer, RuleConfig, RuleFlip, SpanResult};
use scope_runtime::Cluster;
use scope_workload::{JobInstance, LiteralPolicy, Workload, WorkloadConfig};

/// A job plus its span and default compilation cost.
pub struct SpannedJob {
    pub job: JobInstance,
    pub span: SpanResult,
    pub default_cost: f64,
}

/// The standard experiment environment.
pub struct Env {
    pub optimizer: Optimizer,
    pub cluster: Cluster,
    pub workload: Workload,
}

impl Env {
    /// Deterministic environment used by every experiment (the "production
    /// SCOPE workload" of the evaluation), under the given literal-redraw
    /// policy — callers plumb the CLI-selected policy here so `--literals`
    /// really does govern every simulated workload of a run.
    #[must_use]
    pub fn standard(seed: u64, num_templates: usize, literals: LiteralPolicy) -> Env {
        Env {
            optimizer: Optimizer::default(),
            cluster: Cluster::default(),
            workload: Workload::new(WorkloadConfig {
                seed,
                num_templates,
                adhoc_per_day: num_templates / 4,
                max_instances_per_day: 2,
                literals,
            }),
        }
    }

    /// Jobs of `day` with non-empty spans and their default costs.
    #[must_use]
    pub fn spanned_jobs(&self, day: u32) -> Vec<SpannedJob> {
        let default = self.optimizer.default_config();
        self.workload
            .jobs_for_day(day)
            .into_iter()
            .filter_map(|job| {
                let default_cost = self.optimizer.compile(&job.plan, &default).ok()?.est_cost;
                let span = compute_span(&self.optimizer, &job.plan, 6).ok()?;
                if span.is_empty() {
                    return None;
                }
                Some(SpannedJob {
                    job,
                    span,
                    default_cost,
                })
            })
            .collect()
    }

    /// All (flip, new estimated cost) pairs over a job's span; `None` cost
    /// marks recompile failures.
    #[must_use]
    pub fn recompile_span(&self, job: &SpannedJob) -> Vec<(RuleFlip, Option<f64>)> {
        let default = self.optimizer.default_config();
        job.span
            .span
            .iter()
            .map(|rule| {
                let flip = RuleFlip {
                    rule,
                    enable: !default.enabled(rule),
                };
                let cost = self
                    .optimizer
                    .compile(&job.job.plan, &default.with_flip(flip))
                    .ok()
                    .map(|c| c.est_cost);
                (flip, cost)
            })
            .collect()
    }

    /// A deterministic random span flip for a job (the random baseline).
    #[must_use]
    pub fn random_flip(&self, job: &SpannedJob, salt: u64) -> RuleFlip {
        let default = self.optimizer.default_config();
        let rules: Vec<_> = job.span.span.iter().collect();
        let rule = rules[(mix64(job.job.job_seed, salt) as usize) % rules.len()];
        RuleFlip {
            rule,
            enable: !default.enabled(rule),
        }
    }

    #[must_use]
    pub fn default_config(&self) -> RuleConfig {
        self.optimizer.default_config()
    }

    /// Clipped CB-style reward of a flip (diagnostics in summaries).
    #[must_use]
    pub fn flip_reward(&self, job: &SpannedJob, cost: Option<f64>) -> f64 {
        reward_from_costs(job.default_cost, cost, 2.0)
    }
}

/// Write a CSV file under `results/`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    std::fs::write(&path, body).expect("write csv");
    path
}

//! Shared experiment utilities for the per-figure/table regenerators.

pub mod corpus;
pub mod stats;

pub use stats::{mean, pearson, percentile, polyfit1, stddev};

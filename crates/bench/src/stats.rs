//! Small statistics helpers used by the experiment harness.

/// Arithmetic mean (0 for empty input).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (0 for < 2 points).
#[must_use]
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Pearson correlation coefficient (0 when undefined).
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return 0.0;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        num += (x - mx) * (y - my);
        dx += (x - mx) * (x - mx);
        dy += (y - my) * (y - my);
    }
    if dx <= 0.0 || dy <= 0.0 {
        return 0.0;
    }
    num / (dx * dy).sqrt()
}

/// Least-squares straight line `y = a + b·x` (the paper's "one-dimensional
/// polynomial fit" in Figures 7/8). Returns `(a, b)`.
#[must_use]
pub fn polyfit1(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return (mean(ys), 0.0);
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    if den <= 0.0 {
        return (my, 0.0);
    }
    let b = num / den;
    (my - b * mx, b)
}

/// Percentile via linear interpolation on the sorted sample; `p` in
/// `[0, 100]`.
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (rank - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138).abs() < 1e-3);
    }

    #[test]
    fn pearson_detects_relationships() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let pos = [2.0, 4.0, 6.0, 8.0];
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&xs, &flat), 0.0);
    }

    #[test]
    fn polyfit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let (a, b) = polyfit1(&xs, &ys);
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 3.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 5.0).abs() < 1e-12);
        assert!((percentile(&xs, 90.0) - 4.6).abs() < 1e-12);
    }
}

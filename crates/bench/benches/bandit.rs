//! Criterion microbenches for the contextual bandit: rank and reward
//! throughput at the feature sizes the pipeline produces.

use criterion::{criterion_group, criterion_main, Criterion};
use personalizer::{CbConfig, ContextualBandit, FeatureVector, SparseSlate};
use std::hint::black_box;

fn context(span: usize) -> FeatureVector {
    let mut fv = FeatureVector::new();
    for i in 0..11 {
        fv.log_bucket("job", &format!("f{i}"), 10f64.powi(i));
    }
    let rules: Vec<String> = (0..span).map(|i| format!("R{i:03}")).collect();
    for r in &rules {
        fv.flag("span", r);
    }
    for i in 0..rules.len() {
        for j in (i + 1)..rules.len() {
            fv.pair_weighted("span2", &rules[i], &rules[j], 0.25);
        }
    }
    fv
}

fn actions(n: usize) -> Vec<FeatureVector> {
    (0..n)
        .map(|i| {
            let mut fv = FeatureVector::new();
            fv.flag("action", &format!("R{i:03}"));
            fv.flag("action", "cat:off-by-default");
            fv.flag("action", "dir:on");
            fv
        })
        .collect()
}

fn bench_bandit(c: &mut Criterion) {
    let ctx = context(10);
    let slate = actions(11);

    let cb = ContextualBandit::new(CbConfig::default());
    c.bench_function("rank_slate_11_actions", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(cb.rank(black_box(&ctx), black_box(&slate), seed).chosen)
        })
    });

    c.bench_function("reward_update", |b| {
        let mut cb = ContextualBandit::new(CbConfig::default());
        b.iter(|| {
            cb.reward(black_box(&ctx), black_box(&slate[3]), 1.3, 0.09);
            black_box(cb.events)
        })
    });

    c.bench_function("joint_featurization", |b| {
        b.iter(|| black_box(ContextualBandit::joint(&ctx, &slate[0]).len()))
    });

    // Batched slate scoring vs the sequential `rank_slate_11_actions` leg
    // above: the same decision computed via one pass over the CSR slate
    // instead of per-action joint featurization (bit-identical by
    // construction; this pair measures the speedup and the one-off
    // slate-build cost it must amortize).
    let sparse = SparseSlate::build(&ctx, &slate, CbConfig::default().dim_bits);
    c.bench_function("rank_batched_11_actions", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(cb.rank_slate(black_box(&sparse), seed).chosen)
        })
    });
    c.bench_function("sparse_slate_build_11_actions", |b| {
        b.iter(|| {
            black_box(SparseSlate::build(
                black_box(&ctx),
                black_box(&slate),
                CbConfig::default().dim_bits,
            ))
            .num_actions()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_bandit
}
criterion_main!(benches);

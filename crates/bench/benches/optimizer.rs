//! Criterion microbenches for the optimizer: compilation throughput, span
//! computation, and single-flip recompilation (the pipeline's hot path).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use scope_lang::{bind_script, Catalog};
use scope_opt::{compute_span, Optimizer, RuleFlip, RuleId};
use std::hint::black_box;

const JOIN_AGG: &str = r#"
    fact = EXTRACT k:int, m:int, v:float FROM "store/fact";
    d1   = EXTRACT k:int, g:int FROM "store/d1";
    d2   = EXTRACT m:int, region:string FROM "store/d2";
    flt  = SELECT k, m, v FROM fact WHERE v > 100;
    j1   = SELECT * FROM flt AS f JOIN d1 ON f.k == d1.k;
    j2   = SELECT * FROM j1 JOIN d2 ON j1.m == d2.m;
    rpt  = SELECT g, SUM(v) AS total FROM j2 GROUP BY g;
    OUTPUT rpt TO "out/cube";
"#;

fn bench_optimizer(c: &mut Criterion) {
    let plan = bind_script(JOIN_AGG, &Catalog::default()).unwrap();
    let optimizer = Optimizer::default();
    let default = optimizer.default_config();

    c.bench_function("compile_default_tri_join", |b| {
        b.iter(|| {
            black_box(
                optimizer
                    .compile(black_box(&plan), &default)
                    .unwrap()
                    .est_cost,
            )
        })
    });

    let flip = RuleFlip {
        rule: RuleId(21),
        enable: true,
    };
    let flipped = default.with_flip(flip);
    c.bench_function("recompile_single_flip", |b| {
        b.iter(|| {
            black_box(
                optimizer
                    .compile(black_box(&plan), &flipped)
                    .map(|c| c.est_cost)
                    .ok(),
            )
        })
    });

    c.bench_function("compute_span_fixpoint", |b| {
        b.iter_batched(
            || plan.clone(),
            |p| black_box(compute_span(&optimizer, &p, 6).unwrap().len()),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("bind_script_tri_join", |b| {
        b.iter(|| black_box(bind_script(JOIN_AGG, &Catalog::default()).unwrap().len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_optimizer
}
criterion_main!(benches);

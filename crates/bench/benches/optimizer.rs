//! Criterion microbenches for the optimizer: compilation throughput, span
//! computation, single-flip recompilation (the pipeline's hot path), and
//! the delta-slate path (base-memo build + incremental treatment pricing)
//! against the same slate compiled from scratch.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use scope_lang::{bind_script, Catalog};
use scope_opt::{
    compute_span, BaseMemo, DeltaCompiler, DeltaConfig, Optimizer, RuleConfig, RuleFlip, RuleId,
};
use std::hint::black_box;

const JOIN_AGG: &str = r#"
    fact = EXTRACT k:int, m:int, v:float FROM "store/fact";
    d1   = EXTRACT k:int, g:int FROM "store/d1";
    d2   = EXTRACT m:int, region:string FROM "store/d2";
    flt  = SELECT k, m, v FROM fact WHERE v > 100;
    j1   = SELECT * FROM flt AS f JOIN d1 ON f.k == d1.k;
    j2   = SELECT * FROM j1 JOIN d2 ON j1.m == d2.m;
    rpt  = SELECT g, SUM(v) AS total FROM j2 GROUP BY g;
    OUTPUT rpt TO "out/cube";
"#;

fn bench_optimizer(c: &mut Criterion) {
    let plan = bind_script(JOIN_AGG, &Catalog::default()).unwrap();
    let optimizer = Optimizer::default();
    let default = optimizer.default_config();

    c.bench_function("compile_default_tri_join", |b| {
        b.iter(|| {
            black_box(
                optimizer
                    .compile(black_box(&plan), &default)
                    .unwrap()
                    .est_cost,
            )
        })
    });

    let flip = RuleFlip {
        rule: RuleId(21),
        enable: true,
    };
    let flipped = default.with_flip(flip);
    c.bench_function("recompile_single_flip", |b| {
        b.iter(|| {
            black_box(
                optimizer
                    .compile(black_box(&plan), &flipped)
                    .map(|c| c.est_cost)
                    .ok(),
            )
        })
    });

    c.bench_function("compute_span_fixpoint", |b| {
        b.iter_batched(
            || plan.clone(),
            |p| black_box(compute_span(&optimizer, &p, 6).unwrap().len()),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("bind_script_tri_join", |b| {
        b.iter(|| black_box(bind_script(JOIN_AGG, &Catalog::default()).unwrap().len()))
    });
}

/// The slate shapes of the pipeline: the job's span flips priced from
/// scratch vs through a warm `DeltaCompiler` (base memo already cached —
/// the steady-state regime once a plan has been seen), plus the one-off
/// base-memo build cost itself.
fn bench_slate(c: &mut Criterion) {
    let plan = bind_script(JOIN_AGG, &Catalog::default()).unwrap();
    let optimizer = Optimizer::default();
    let default = optimizer.default_config();
    let span = compute_span(&optimizer, &plan, 6).unwrap();
    let treatments: Vec<RuleConfig> = span
        .span
        .iter()
        .map(|rule| {
            default.with_flip(RuleFlip {
                rule,
                enable: !default.enabled(rule),
            })
        })
        .collect();
    assert!(!treatments.is_empty());

    c.bench_function("slate_span_flips_fullcompile", |b| {
        b.iter(|| {
            let priced: usize = treatments
                .iter()
                .filter_map(|t| optimizer.compile(black_box(&plan), t).ok())
                .count();
            black_box(priced)
        })
    });

    let warm = DeltaCompiler::new(DeltaConfig::default());
    let _ = warm.compile_slate(&optimizer, &plan, &default, &treatments);
    c.bench_function("slate_span_flips_delta_warm", |b| {
        b.iter(|| {
            // The compile cache is deliberately absent: every iteration
            // re-prices the whole slate through the shared base memo.
            let results = warm.compile_slate(&optimizer, black_box(&plan), &default, &treatments);
            black_box(results.iter().filter(|r| r.is_ok()).count())
        })
    });

    c.bench_function("slate_base_memo_build", |b| {
        b.iter(|| black_box(BaseMemo::build(&optimizer, black_box(&plan), &default).is_ok()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_optimizer, bench_slate
}
criterion_main!(benches);

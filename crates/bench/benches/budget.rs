//! Criterion microbenches for the anytime task-queue engine
//! (`scope_opt::tasks`): budgeted compilation across the budget sweep the
//! `budget` bin measures regret for, plus the recursive reference engine
//! and the unlimited task-queue point — the pair whose byte-equality
//! `tests/budget_equivalence.rs` proves, benched here so a throughput gap
//! between the engines shows up in CI's criterion history.

use criterion::{criterion_group, criterion_main, Criterion};
use scope_lang::{bind_script, Catalog};
use scope_opt::{CompileBudget, Optimizer};
use std::hint::black_box;

const JOIN_AGG: &str = r#"
    fact = EXTRACT k:int, m:int, v:float FROM "store/fact";
    d1   = EXTRACT k:int, g:int FROM "store/d1";
    d2   = EXTRACT m:int, region:string FROM "store/d2";
    flt  = SELECT k, m, v FROM fact WHERE v > 100;
    j1   = SELECT * FROM flt AS f JOIN d1 ON f.k == d1.k;
    j2   = SELECT * FROM j1 JOIN d2 ON j1.m == d2.m;
    rpt  = SELECT g, SUM(v) AS total FROM j2 GROUP BY g;
    OUTPUT rpt TO "out/cube";
"#;

fn bench_budget(c: &mut Criterion) {
    let plan = bind_script(JOIN_AGG, &Catalog::default()).unwrap();
    let optimizer = Optimizer::default();
    let default = optimizer.default_config();

    c.bench_function("compile_recursive_reference", |b| {
        b.iter(|| {
            black_box(
                optimizer
                    .compile_recursive(black_box(&plan), &default)
                    .unwrap()
                    .est_cost,
            )
        })
    });

    c.bench_function("compile_taskqueue_unlimited", |b| {
        b.iter(|| {
            black_box(
                optimizer
                    .compile_budgeted(black_box(&plan), &default, CompileBudget::unlimited())
                    .unwrap()
                    .objective,
            )
        })
    });

    for tasks in [16u64, 64, 256, 1024] {
        c.bench_function(&format!("compile_budgeted_{tasks}_tasks"), |b| {
            b.iter(|| {
                black_box(
                    optimizer
                        .compile_budgeted(black_box(&plan), &default, CompileBudget::tasks(tasks))
                        .unwrap()
                        .objective,
                )
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_budget
}
criterion_main!(benches);

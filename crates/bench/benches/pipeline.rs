//! Criterion macrobench: one full QO-Advisor pipeline day (feature
//! generation + recommendation + flighting + validation + hint generation)
//! over a small workload.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flighting::{FlightBudget, FlightingService};
use qo_advisor::{CacheConfig, ParallelismConfig, PipelineConfig, QoAdvisor};
use scope_opt::Optimizer;
use scope_runtime::Cluster;
use scope_workload::{build_view, Workload, WorkloadConfig};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let optimizer = Optimizer::default();
    let workload = Workload::new(WorkloadConfig {
        seed: 99,
        num_templates: 10,
        adhoc_per_day: 2,
        max_instances_per_day: 1,
    });
    let cluster = Cluster::default();
    let jobs = workload.jobs_for_day(0);

    c.bench_function("build_daily_view_12_jobs", |b| {
        b.iter(|| black_box(build_view(&jobs, &optimizer, &Default::default(), &cluster).len()))
    });

    let view = build_view(&jobs, &optimizer, &Default::default(), &cluster);
    c.bench_function("pipeline_run_day_12_jobs", |b| {
        b.iter_batched(
            || {
                QoAdvisor::new(
                    optimizer.clone(),
                    FlightingService::new(Cluster::preproduction(), FlightBudget::default()),
                    PipelineConfig::default(),
                )
            },
            |mut qa| black_box(qa.run_day(&view, 0).hints_published),
            BatchSize::PerIteration,
        )
    });
}

/// Serial vs parallel `run_day` on a compile-heavy day (cold span cache), so
/// the bench trajectory tracks the fan-out speedup of Feature Generation +
/// Recompilation. Outputs are bit-identical; only throughput may differ.
fn bench_pipeline_parallelism(c: &mut Criterion) {
    let optimizer = Optimizer::default();
    let workload = Workload::new(WorkloadConfig {
        seed: 2022,
        num_templates: 48,
        adhoc_per_day: 4,
        max_instances_per_day: 1,
    });
    let cluster = Cluster::default();
    let jobs = workload.jobs_for_day(0);
    let view = build_view(&jobs, &optimizer, &Default::default(), &cluster);

    let advisor_with = |parallelism: ParallelismConfig| {
        QoAdvisor::new(
            optimizer.clone(),
            FlightingService::new(Cluster::preproduction(), FlightBudget::default()),
            PipelineConfig {
                parallelism,
                ..PipelineConfig::default()
            },
        )
    };

    let cases = [
        (
            "pipeline_run_day_48_templates_serial",
            ParallelismConfig::serial(),
        ),
        (
            "pipeline_run_day_48_templates_parallel",
            ParallelismConfig::with_threads(0),
        ),
    ];
    for (name, parallelism) in cases {
        c.bench_function(name, |b| {
            b.iter_batched(
                || advisor_with(parallelism),
                |mut qa| black_box(qa.run_day(&view, 0).hints_published),
                BatchSize::PerIteration,
            )
        });
    }
}

/// Cached vs uncached `run_day` on the same compile-heavy day (serial, so
/// the comparison isolates the compile-result cache from the thread-pool
/// speedup), plus a 3-day sequence where cross-day reuse compounds.
/// Outputs are byte-identical cache-on vs cache-off; only throughput may
/// differ — the ratio between these pairs is the cache's report card.
fn bench_pipeline_compile_cache(c: &mut Criterion) {
    let optimizer = Optimizer::default();
    let workload = Workload::new(WorkloadConfig {
        seed: 2022,
        num_templates: 48,
        adhoc_per_day: 4,
        max_instances_per_day: 1,
    });
    let cluster = Cluster::default();
    let views: Vec<_> = (0..3u32)
        .map(|day| {
            build_view(
                &workload.jobs_for_day(day),
                &optimizer,
                &Default::default(),
                &cluster,
            )
        })
        .collect();

    let advisor_with = |cache: CacheConfig| {
        QoAdvisor::new(
            optimizer.clone(),
            FlightingService::new(Cluster::preproduction(), FlightBudget::default()),
            PipelineConfig {
                cache,
                ..PipelineConfig::default()
            },
        )
    };

    let cases = [
        ("uncached", CacheConfig::disabled()),
        ("cached", CacheConfig::default()),
    ];
    for (name, cache) in cases {
        c.bench_function(&format!("pipeline_run_day_48_templates_{name}"), |b| {
            b.iter_batched(
                || advisor_with(cache),
                |mut qa| black_box(qa.run_day(&views[0], 0).hints_published),
                BatchSize::PerIteration,
            )
        });
    }
    for (name, cache) in cases {
        c.bench_function(&format!("pipeline_3_days_48_templates_{name}"), |b| {
            b.iter_batched(
                || advisor_with(cache),
                |mut qa| {
                    let mut published = 0;
                    for (day, view) in views.iter().enumerate() {
                        published += qa.run_day(view, day as u32).hints_published;
                    }
                    black_box(published)
                },
                BatchSize::PerIteration,
            )
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline, bench_pipeline_parallelism, bench_pipeline_compile_cache
}
criterion_main!(benches);

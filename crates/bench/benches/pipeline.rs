//! Criterion macrobench: one full QO-Advisor pipeline day (feature
//! generation + recommendation + flighting + validation + hint generation)
//! over a small workload.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flighting::{FlightBudget, FlightingService};
use qo_advisor::{
    CacheConfig, ExecCacheConfig, ParallelismConfig, PipelineConfig, ProductionSim, QoAdvisor,
};
use scope_opt::Optimizer;
use scope_runtime::Cluster;
use scope_workload::{build_view, LiteralPolicy, Workload, WorkloadConfig};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let optimizer = Optimizer::default();
    let workload = Workload::new(WorkloadConfig {
        seed: 99,
        num_templates: 10,
        adhoc_per_day: 2,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    });
    let cluster = Cluster::default();
    let jobs = workload.jobs_for_day(0);

    c.bench_function("build_daily_view_12_jobs", |b| {
        b.iter(|| {
            black_box(
                build_view(&jobs, &optimizer, &Default::default(), &cluster)
                    .unwrap()
                    .len(),
            )
        })
    });

    let view = build_view(&jobs, &optimizer, &Default::default(), &cluster).unwrap();
    c.bench_function("pipeline_run_day_12_jobs", |b| {
        b.iter_batched(
            || {
                QoAdvisor::new(
                    optimizer.clone(),
                    FlightingService::new(Cluster::preproduction(), FlightBudget::default()),
                    PipelineConfig::default(),
                )
            },
            |mut qa| {
                black_box(
                    qa.run_day(&view, 0)
                        .expect("pipeline day runs")
                        .hints_published,
                )
            },
            BatchSize::PerIteration,
        )
    });
}

/// Serial vs parallel `run_day` on a compile-heavy day (cold span cache), so
/// the bench trajectory tracks the fan-out speedup of Feature Generation +
/// Recompilation. Outputs are bit-identical; only throughput may differ.
fn bench_pipeline_parallelism(c: &mut Criterion) {
    let optimizer = Optimizer::default();
    let workload = Workload::new(WorkloadConfig {
        seed: 2022,
        num_templates: 48,
        adhoc_per_day: 4,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    });
    let cluster = Cluster::default();
    let jobs = workload.jobs_for_day(0);
    let view = build_view(&jobs, &optimizer, &Default::default(), &cluster).unwrap();

    let advisor_with = |parallelism: ParallelismConfig| {
        QoAdvisor::new(
            optimizer.clone(),
            FlightingService::new(Cluster::preproduction(), FlightBudget::default()),
            PipelineConfig {
                parallelism,
                ..PipelineConfig::default()
            },
        )
    };

    let cases = [
        (
            "pipeline_run_day_48_templates_serial",
            ParallelismConfig::serial(),
        ),
        (
            "pipeline_run_day_48_templates_parallel",
            ParallelismConfig::with_threads(0),
        ),
    ];
    for (name, parallelism) in cases {
        c.bench_function(name, |b| {
            b.iter_batched(
                || advisor_with(parallelism),
                |mut qa| {
                    black_box(
                        qa.run_day(&view, 0)
                            .expect("pipeline day runs")
                            .hints_published,
                    )
                },
                BatchSize::PerIteration,
            )
        });
    }
}

/// Cached vs uncached `run_day` on the same compile-heavy day (serial, so
/// the comparison isolates the compile-result cache from the thread-pool
/// speedup), plus a 3-day sequence where cross-day reuse compounds.
/// Outputs are byte-identical cache-on vs cache-off; only throughput may
/// differ — the ratio between these pairs is the cache's report card.
fn bench_pipeline_compile_cache(c: &mut Criterion) {
    let optimizer = Optimizer::default();
    let workload = Workload::new(WorkloadConfig {
        seed: 2022,
        num_templates: 48,
        adhoc_per_day: 4,
        max_instances_per_day: 1,
        ..WorkloadConfig::default()
    });
    let cluster = Cluster::default();
    let views: Vec<_> = (0..3u32)
        .map(|day| {
            build_view(
                &workload.jobs_for_day(day),
                &optimizer,
                &Default::default(),
                &cluster,
            )
            .unwrap()
        })
        .collect();

    let advisor_with = |cache: CacheConfig| {
        QoAdvisor::new(
            optimizer.clone(),
            FlightingService::new(Cluster::preproduction(), FlightBudget::default()),
            PipelineConfig {
                cache,
                // Pinned off so this pair keeps its PR 2 meaning (compile
                // cache alone); `bench_sim_delta_compile` measures delta.
                delta: qo_advisor::DeltaConfig::disabled(),
                ..PipelineConfig::default()
            },
        )
    };

    let cases = [
        ("uncached", CacheConfig::disabled()),
        ("cached", CacheConfig::default()),
    ];
    for (name, cache) in cases {
        c.bench_function(&format!("pipeline_run_day_48_templates_{name}"), |b| {
            b.iter_batched(
                || advisor_with(cache),
                |mut qa| {
                    black_box(
                        qa.run_day(&views[0], 0)
                            .expect("pipeline day runs")
                            .hints_published,
                    )
                },
                BatchSize::PerIteration,
            )
        });
    }
    for (name, cache) in cases {
        c.bench_function(&format!("pipeline_3_days_48_templates_{name}"), |b| {
            b.iter_batched(
                || advisor_with(cache),
                |mut qa| {
                    let mut published = 0;
                    for (day, view) in views.iter().enumerate() {
                        published += qa
                            .run_day(view, day as u32)
                            .expect("pipeline day runs")
                            .hints_published;
                    }
                    black_box(published)
                },
                BatchSize::PerIteration,
            )
        });
    }
}

/// The whole closed loop (`ProductionSim::advance_day`, which `build_view`'s
/// production compiles dominate) over 3 days, compile cache on vs off, under
/// fresh vs sticky literals. Sticky literals are the recurring-script regime
/// the paper assumes: every warm day's production compile repeats a day-0
/// plan, so the shared sim-wide cache turns `build_view` into lookups and
/// this pair shows the cache's headline win. Fresh literals bound the same
/// comparison from below (only within-day repeats can hit). The execution
/// cache is OFF in every variant so the pair isolates the compile cache;
/// `bench_sim_exec_cache` below layers the execution cache on top.
fn bench_sim_advance_day(c: &mut Criterion) {
    let policies = [
        ("fresh", LiteralPolicy::FreshEachRun),
        (
            "sticky",
            LiteralPolicy::Sticky {
                redraw_every_days: 0,
            },
        ),
    ];
    let caches = [
        ("uncached", CacheConfig::disabled()),
        ("cached", CacheConfig::default()),
    ];
    for (policy_name, literals) in policies {
        for (cache_name, cache) in caches {
            let workload = WorkloadConfig {
                seed: 2022,
                num_templates: 48,
                adhoc_per_day: 4,
                max_instances_per_day: 1,
                literals,
            };
            c.bench_function(
                &format!("sim_advance_3_days_48_templates_{policy_name}_{cache_name}"),
                |b| {
                    b.iter_batched(
                        || {
                            ProductionSim::new(
                                workload.clone(),
                                PipelineConfig {
                                    cache,
                                    exec_cache: ExecCacheConfig::disabled(),
                                    // Pinned off so this pair keeps its
                                    // PR 3 meaning (compile cache alone).
                                    delta: qo_advisor::DeltaConfig::disabled(),
                                    ..PipelineConfig::default()
                                },
                            )
                        },
                        |mut sim| {
                            let mut published = 0;
                            for _ in 0..3 {
                                published += sim
                                    .advance_day()
                                    .expect("generated workloads compile")
                                    .report
                                    .hints_published;
                            }
                            black_box(published)
                        },
                        BatchSize::PerIteration,
                    )
                },
            );
        }
    }
}

/// The execution cache's report card: the same sticky 3-day closed loop with
/// the compile cache ON in both arms, execution cache off vs on. The delta
/// over `sim_advance_3_days_48_templates_sticky_cached` (whose remaining
/// cost is execution-dominated, per ROADMAP) is what the `Executor` refactor
/// buys: memoized stage graphs for every recurring plan, plus whole-run
/// replays wherever seeds repeat exactly. Outputs are byte-identical in
/// both arms.
fn bench_sim_exec_cache(c: &mut Criterion) {
    let workload = WorkloadConfig {
        seed: 2022,
        num_templates: 48,
        adhoc_per_day: 4,
        max_instances_per_day: 1,
        literals: LiteralPolicy::Sticky {
            redraw_every_days: 0,
        },
    };
    let cases = [
        ("exec_uncached", ExecCacheConfig::disabled()),
        ("exec_cached", ExecCacheConfig::default()),
    ];
    for (name, exec_cache) in cases {
        c.bench_function(
            &format!("sim_advance_3_days_48_templates_sticky_{name}"),
            |b| {
                b.iter_batched(
                    || {
                        ProductionSim::new(
                            workload.clone(),
                            PipelineConfig {
                                cache: CacheConfig::default(),
                                exec_cache,
                                // Pinned off so this pair keeps its PR 4
                                // meaning (execution cache alone);
                                // `bench_sim_delta_compile` layers delta on.
                                delta: qo_advisor::DeltaConfig::disabled(),
                                ..PipelineConfig::default()
                            },
                        )
                    },
                    |mut sim| {
                        let mut published = 0;
                        for _ in 0..3 {
                            published += sim
                                .advance_day()
                                .expect("generated workloads compile")
                                .report
                                .hints_published;
                        }
                        black_box(published)
                    },
                    BatchSize::PerIteration,
                )
            },
        );
    }
}

/// Delta compilation's report card: the same sticky 3-day closed loop with
/// both result caches ON in both arms (the PR 4 shipping configuration),
/// delta slate compilation off vs on. The remaining cost of the
/// `..._sticky_exec_cached` baseline is compile-miss-bound — the ~40-60
/// fresh flip treatments recommendation and flighting price per day are
/// genuinely new `(plan, config)` pairs the caches can never serve — and
/// pricing them against the shared base memo is the lever that attacks it.
/// Outputs are byte-identical in both arms (`tests/determinism.rs`).
fn bench_sim_delta_compile(c: &mut Criterion) {
    let workload = WorkloadConfig {
        seed: 2022,
        num_templates: 48,
        adhoc_per_day: 4,
        max_instances_per_day: 1,
        literals: LiteralPolicy::Sticky {
            redraw_every_days: 0,
        },
    };
    let cases = [
        ("delta_off", qo_advisor::DeltaConfig::disabled()),
        ("delta_on", qo_advisor::DeltaConfig::default()),
    ];
    for (name, delta) in cases {
        c.bench_function(
            &format!("sim_advance_3_days_48_templates_sticky_{name}"),
            |b| {
                b.iter_batched(
                    || {
                        ProductionSim::new(
                            workload.clone(),
                            PipelineConfig {
                                cache: CacheConfig::default(),
                                exec_cache: ExecCacheConfig::default(),
                                delta,
                                ..PipelineConfig::default()
                            },
                        )
                    },
                    |mut sim| {
                        let mut published = 0;
                        for _ in 0..3 {
                            published += sim
                                .advance_day()
                                .expect("generated workloads compile")
                                .report
                                .hints_published;
                        }
                        black_box(published)
                    },
                    BatchSize::PerIteration,
                )
            },
        );
    }
}

/// The recommend/featurize fast path's report card: one *warm* sticky day
/// (the steady-state regime — every compile/graph already cached, delta on;
/// setup advances 3 days first) with the span-feature cache and batched
/// sparse rank scoring off vs on. With compiles amortized by PRs 2–5, the
/// warm day is featurization/scoring-bound, and these two knobs attack
/// exactly that remainder. Outputs are byte-identical in both arms
/// (`tests/determinism.rs`).
fn bench_sim_recommend_fastpath(c: &mut Criterion) {
    let workload = WorkloadConfig {
        seed: 2022,
        num_templates: 48,
        adhoc_per_day: 4,
        max_instances_per_day: 1,
        literals: LiteralPolicy::Sticky {
            redraw_every_days: 0,
        },
    };
    let cases = [("fastpath_off", false), ("fastpath_on", true)];
    for (name, enabled) in cases {
        c.bench_function(&format!("sim_warm_day_48_templates_sticky_{name}"), |b| {
            b.iter_batched(
                || {
                    let mut config = PipelineConfig {
                        feature_cache: if enabled {
                            qo_advisor::FeatureCacheConfig::default()
                        } else {
                            qo_advisor::FeatureCacheConfig::disabled()
                        },
                        ..PipelineConfig::default()
                    };
                    config.cb.batch_rank = enabled;
                    let mut sim = ProductionSim::new(workload.clone(), config);
                    for _ in 0..3 {
                        sim.advance_day().expect("generated workloads compile");
                    }
                    sim
                },
                |mut sim| {
                    black_box(
                        sim.advance_day()
                            .expect("generated workloads compile")
                            .report
                            .hints_published,
                    )
                },
                BatchSize::PerIteration,
            )
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline, bench_pipeline_parallelism, bench_pipeline_compile_cache,
        bench_sim_advance_day, bench_sim_exec_cache, bench_sim_delta_compile,
        bench_sim_recommend_fastpath
}
criterion_main!(benches);

//! Criterion microbenches for the execution simulator: stage-graph
//! extraction and noisy execution.

use criterion::{criterion_group, criterion_main, Criterion};
use scope_ir::stats::DualStats;
use scope_lang::{bind_script, Catalog, TableInfo};
use scope_opt::Optimizer;
use scope_runtime::{execute, CachingExecutor, Cluster, ExecCacheConfig, Executor, StageGraph};
use std::hint::black_box;

fn physical() -> scope_ir::PhysicalPlan {
    let mut catalog = Catalog::default();
    catalog.register(
        "store/fact",
        TableInfo {
            rows: DualStats::exact(5e8),
        },
    );
    let plan = bind_script(
        r#"
        fact = EXTRACT k:int, m:int, v:float FROM "store/fact";
        dim  = EXTRACT k:int, g:int FROM "store/dim";
        flt  = SELECT k, v FROM fact WHERE v > 100;
        j    = SELECT * FROM flt AS f JOIN dim AS d ON f.k == d.k;
        rpt  = SELECT g, SUM(v) AS total FROM j GROUP BY g;
        OUTPUT rpt TO "out/r";
    "#,
        &catalog,
    )
    .unwrap();
    let opt = Optimizer::default();
    opt.compile(&plan, &opt.default_config()).unwrap().physical
}

fn bench_runtime(c: &mut Criterion) {
    let plan = physical();
    let cluster = Cluster::default();

    c.bench_function("stage_graph_build", |b| {
        b.iter(|| black_box(StageGraph::build(black_box(&plan), &cluster.config).vertices()))
    });

    c.bench_function("execute_with_variance", |b| {
        let mut run = 0u64;
        b.iter(|| {
            run += 1;
            black_box(execute(black_box(&plan), &cluster, 7, run).pn_hours)
        })
    });

    let quiet = Cluster::deterministic();
    c.bench_function("execute_deterministic", |b| {
        b.iter(|| black_box(execute(black_box(&plan), &quiet, 7, 0).pn_hours))
    });

    // Fresh run seeds through the caching executor: every call misses the
    // result map but reuses the memoized stage graph — the delta vs
    // `execute_with_variance` is the graph-build share of execute().
    let memoized = CachingExecutor::with_config(Cluster::default(), ExecCacheConfig::default());
    c.bench_function("execute_with_graph_memo", |b| {
        let mut run = 0u64;
        b.iter(|| {
            run += 1;
            black_box(memoized.execute(black_box(&plan), 7, run).pn_hours)
        })
    });

    // Identical seeds: the whole run replays from the result map (the A/A
    // re-probe regime).
    c.bench_function("execute_cached_replay", |b| {
        b.iter(|| black_box(memoized.execute(black_box(&plan), 7, 0).pn_hours))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_runtime
}
criterion_main!(benches);

//! CB featurization (paper §3.2, §4.2, §6).
//!
//! * **Context** = Table-1 job features (log-bucketed: the dynamic ranges of
//!   costs and cardinalities span many decades) + the complete job span as
//!   indicator features, *"especially when interacted to create second and
//!   third order co-occurrence indicators"* (§3.2) — the paper calls these
//!   span features "critical to our success" (§6).
//! * **Actions** = the no-op plus one flip per span rule, featurized by rule
//!   id and rule category (§4.2).

use personalizer::{FeatureVector, SparseSlate};
use scope_ir::ids::{mix64, SLATE_ACTION_SENTINEL, SLATE_FP_SEED};
use scope_ir::{ShardedCache, TemplateId};
use scope_opt::{CacheStats, RuleFlip, RuleId, RuleSet, SpanResult};
use scope_workload::Table1Features;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Build the CB context vector for one job.
#[must_use]
pub fn context_features(
    table1: &Table1Features,
    span: &SpanResult,
    max_span_for_triples: usize,
) -> FeatureVector {
    context_features_opt(table1, span, max_span_for_triples, true)
}

/// [`context_features`] with the span block optional (the §6 ablation).
///
/// The context is the concatenation [`job_features`] ⧺ [`span_block`], in
/// that item order — callers that cache the (template-stable) span block
/// rebuild the identical vector by extending the job block with the cached
/// one.
#[must_use]
pub fn context_features_opt(
    table1: &Table1Features,
    span: &SpanResult,
    max_span_for_triples: usize,
    include_span: bool,
) -> FeatureVector {
    let mut fv = job_features(table1);
    if include_span {
        fv.extend_from(&span_block(span, max_span_for_triples));
    }
    fv
}

/// The per-instance half of the CB context: Table-1 job features,
/// log-bucketed (the dynamic ranges of costs and cardinalities span many
/// decades).
#[must_use]
pub fn job_features(table1: &Table1Features) -> FeatureVector {
    let mut fv = FeatureVector::new();
    fv.log_bucket("job", "est_cost", table1.estimated_cost);
    fv.log_bucket("job", "est_cards", table1.estimated_cardinalities);
    fv.log_bucket("job", "bytes_read", table1.bytes_read);
    fv.log_bucket("job", "row_count", table1.row_count);
    fv.log_bucket("job", "latency", table1.latency);
    fv.log_bucket("job", "pn_hours", table1.pn_hours);
    fv.log_bucket("job", "vertices", table1.total_vertices);
    fv.log_bucket("job", "max_memory", table1.max_memory);
    fv.log_bucket("job", "avg_row_len", table1.avg_row_length);
    fv.flag("job", &format!("name:{}", table1.normalized_name));
    fv.flag("job", &format!("qtpl:{:x}", table1.query_template));
    fv
}

/// The template-stable half of the CB context: the complete span as
/// indicators + co-occurrence interactions. The higher-order indicators are
/// down-weighted: under normalized SGD the correction is distributed by
/// value², and with C(S,2)+C(S,3) of them they would otherwise drown the
/// action main effects that our (much smaller than SCOPE's) event volume can
/// actually estimate.
///
/// Spans are a pure function of the template's plan, so this block is
/// identical for every instance of a template on every day — which is why
/// [`FeatureCache`] can memoize it.
#[must_use]
pub fn span_block(span: &SpanResult, max_span_for_triples: usize) -> FeatureVector {
    let mut fv = FeatureVector::new();
    let rules: Vec<String> = span.span.iter().map(|r| r.to_string()).collect();
    for r in &rules {
        fv.flag("span", r);
    }
    for i in 0..rules.len() {
        for j in (i + 1)..rules.len() {
            fv.pair_weighted("span2", &rules[i], &rules[j], 0.25);
        }
    }
    if rules.len() <= max_span_for_triples {
        for i in 0..rules.len() {
            for j in (i + 1)..rules.len() {
                for k in (j + 1)..rules.len() {
                    fv.triple_weighted("span3", &rules[i], &rules[j], &rules[k], 0.1);
                }
            }
        }
    }
    fv
}

/// Span-feature-cache configuration (the `QO_FEATURE_CACHE` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureCacheConfig {
    /// Disabled = rebuild the span block per job (the pre-cache behavior).
    pub enabled: bool,
    /// Maximum cached span blocks across all shards (FIFO per shard beyond
    /// this; `0` = unbounded). One entry per live template, so this stays
    /// tiny next to the compile cache.
    pub capacity: usize,
    /// Lock shards (clamped to a power of two in `[1, 1024]`).
    pub shards: usize,
}

impl Default for FeatureCacheConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            capacity: 1 << 12,
            shards: 16,
        }
    }
}

impl FeatureCacheConfig {
    /// A disabled cache (the `--feature-cache off` setting).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Parse the shared `QO_FEATURE_CACHE` / `--feature-cache` switch
    /// spellings (`on`/`1`/`true`, `off`/`0`/`false`) into a config, so
    /// every CLI entry point accepts the identical vocabulary.
    pub fn parse_switch(value: &str) -> Result<Self, String> {
        match value {
            "on" | "1" | "true" => Ok(Self::default()),
            "off" | "0" | "false" => Ok(Self::disabled()),
            other => Err(format!("expected on|off, got `{other}`")),
        }
    }
}

/// Shard router for the span-feature cache: the key is already two hashes,
/// so one `mix64` folds it.
fn span_key_hash(key: &(u64, u64)) -> u64 {
    mix64(key.0, key.1)
}

/// Content fingerprint of a `(context, actions, dim_bits)` slate input: a
/// `mix64` fold over every hashed feature id and value-bit pattern, with a
/// boundary sentinel between actions. [`SparseSlate::build`] is a pure
/// function of exactly these inputs, so equal fingerprints (within one
/// template — the cache key pairs this with the template id) rebuild the
/// identical slate.
fn slate_fingerprint(context: &FeatureVector, actions: &[FeatureVector], dim_bits: u32) -> u64 {
    let mut h = mix64(SLATE_FP_SEED, u64::from(dim_bits));
    for &(key, value) in context.items() {
        h = mix64(h, key);
        h = mix64(h, value.to_bits());
    }
    for action in actions {
        h = mix64(h, SLATE_ACTION_SENTINEL);
        for &(key, value) in action.items() {
            h = mix64(h, key);
            h = mix64(h, value.to_bits());
        }
    }
    h
}

/// The span-feature cache: built span blocks ([`span_block`]) keyed by
/// `(template id, span fingerprint)` in a [`scope_ir::ShardedCache`] (the
/// workspace-wide lock-sharded FIFO cache). The span fingerprint acts as the
/// epoch: if a template's span ever changed (e.g. a different rule
/// universe), the old entry is simply never looked up again.
///
/// Construction is deterministic, so a cached block is byte-identical to a
/// rebuilt one — like every other cache in the workspace this is a
/// throughput knob, never a behavior knob (asserted in
/// `tests/determinism.rs`). The C(S,2)+C(S,3) interaction block costs
/// O(S³) string formatting + hashing per build; warm days previously paid
/// that per *job*, the cache pays it per *template*.
#[derive(Debug)]
pub struct FeatureCache {
    entries: ShardedCache<(u64, u64), Arc<FeatureVector>>,
    /// Built rank slates keyed by `(template id, slate fingerprint)` — the
    /// downstream sibling of `entries`: once the context is assembled, the
    /// CSR fold of the whole `(context, actions)` slate is itself
    /// template-stable on warm days (the Table-1 half of the context is
    /// log-bucketed, so run-to-run noise rarely moves a bucket), and
    /// fingerprinting the inputs costs ~2% of refolding them.
    slates: ShardedCache<(u64, u64), Arc<SparseSlate>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl FeatureCache {
    #[must_use]
    pub fn new(config: FeatureCacheConfig) -> Self {
        Self {
            entries: ShardedCache::new(config.capacity, config.shards, span_key_hash),
            slates: ShardedCache::new(config.capacity, config.shards, span_key_hash),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// The span block for `template`, built via [`span_block`] on miss and
    /// memoized. Bit-identical to calling [`span_block`] directly.
    #[must_use]
    pub fn span_block_for(
        &self,
        template: TemplateId,
        span: &SpanResult,
        max_span_for_triples: usize,
    ) -> Arc<FeatureVector> {
        let key = (template.0, span.span.fingerprint());
        if let Some(block) = self.entries.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return block;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let block = Arc::new(span_block(span, max_span_for_triples));
        if self.entries.insert(key, block.clone()) {
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
        block
    }

    /// The built rank slate for `(context, actions)` under `template`,
    /// folded via [`SparseSlate::build`] on miss and memoized by content
    /// fingerprint. Bit-identical to calling `build` directly: the key
    /// covers every input of the pure fold, so a hit can only return the
    /// slate the caller would have built.
    #[must_use]
    pub fn slate_for(
        &self,
        template: TemplateId,
        context: &FeatureVector,
        actions: &[FeatureVector],
        dim_bits: u32,
    ) -> Arc<SparseSlate> {
        let key = (template.0, slate_fingerprint(context, actions, dim_bits));
        if let Some(slate) = self.slates.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return slate;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let slate = Arc::new(SparseSlate::build(context, actions, dim_bits));
        if self.slates.insert(key, slate.clone()) {
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
        slate
    }

    /// Lifetime counters (same vocabulary as the compile/execution caches),
    /// summed over the span-block and slate maps.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.entries.evictions() + self.slates.evictions(),
        }
    }

    /// Cached span blocks and slates currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len() + self.slates.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.slates.is_empty()
    }
}

/// The action slate for a job: index 0 is the no-op ("changing nothing"),
/// followed by one flip per span rule (§3.2: the action count is `1 + S`).
#[must_use]
pub fn action_slate(
    span: &SpanResult,
    rules: &RuleSet,
) -> (Vec<FeatureVector>, Vec<Option<RuleFlip>>) {
    let default = rules.default_config();
    let mut features = Vec::with_capacity(1 + span.span.len());
    let mut flips = Vec::with_capacity(1 + span.span.len());

    let mut noop = FeatureVector::new();
    noop.flag("action", "noop");
    features.push(noop);
    flips.push(None);

    for rule_id in span.span.iter() {
        let def = rules.rule(rule_id);
        let enable = !default.enabled(rule_id);
        let mut fv = FeatureVector::new();
        fv.flag("action", &rule_id.to_string());
        fv.flag("action", &format!("cat:{}", def.category.name()));
        fv.flag("action", if enable { "dir:on" } else { "dir:off" });
        features.push(fv);
        flips.push(Some(RuleFlip {
            rule: rule_id,
            enable,
        }));
    }
    (features, flips)
}

/// Clipped reward (§4.2): ratio of default estimated cost over the
/// recompiled estimated cost, clipped at `clip` (paper: 2.0). Failures pay 0.
#[must_use]
pub fn reward_from_costs(default_cost: f64, new_cost: Option<f64>, clip: f64) -> f64 {
    match new_cost {
        Some(new) if new > 0.0 => (default_cost / new).min(clip),
        _ => 0.0,
    }
}

/// Rule id of an action index in the slate, for diagnostics.
#[must_use]
pub fn action_rule(flips: &[Option<RuleFlip>], index: usize) -> Option<RuleId> {
    flips.get(index).and_then(|f| f.map(|f| f.rule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_lang::{bind_script, Catalog};
    use scope_opt::{compute_span, Optimizer};

    fn sample_span() -> (Optimizer, SpanResult, Table1Features) {
        let opt = Optimizer::default();
        let plan = bind_script(
            r#"
            a = EXTRACT k:int, v:float FROM "t1";
            b = EXTRACT k:int, g:int FROM "t2";
            j = SELECT * FROM a JOIN b ON a.k == b.k;
            r = SELECT g, SUM(v) AS s FROM j GROUP BY g;
            OUTPUT r TO "o";
        "#,
            &Catalog::default(),
        )
        .unwrap();
        let span = compute_span(&opt, &plan, 6).unwrap();
        let t1 = Table1Features {
            normalized_name: "JoinAgg_x".into(),
            latency: 120.0,
            estimated_cost: 1e9,
            query_template: 42,
            total_vertices: 64.0,
            estimated_cardinalities: 2e6,
            bytes_read: 4e10,
            max_memory: 1e8,
            avg_memory: 5e7,
            avg_row_length: 24.0,
            row_count: 2e6,
            pn_hours: 3.4,
        };
        (opt, span, t1)
    }

    #[test]
    fn context_contains_span_and_interactions() {
        let (_, span, t1) = sample_span();
        let s = span.len();
        let fv = context_features(&t1, &span, 12);
        // 11 job features + S span flags + C(S,2) pairs (+ triples when small).
        let pairs = s * (s - 1) / 2;
        assert!(fv.len() >= 11 + s + pairs, "len {} for span {s}", fv.len());
    }

    #[test]
    fn triples_are_capped_by_span_size() {
        let (_, span, t1) = sample_span();
        let with = context_features(&t1, &span, 64);
        let without = context_features(&t1, &span, 0);
        assert!(with.len() > without.len(), "triples add features");
    }

    #[test]
    fn action_slate_is_one_plus_span() {
        let (opt, span, _) = sample_span();
        let (features, flips) = action_slate(&span, opt.rules());
        assert_eq!(features.len(), 1 + span.len());
        assert_eq!(flips.len(), features.len());
        assert!(flips[0].is_none(), "index 0 is the no-op");
        // Every flip toggles the rule's default state.
        let default = opt.rules().default_config();
        for f in flips.iter().flatten() {
            assert_eq!(f.enable, !default.enabled(f.rule));
        }
    }

    #[test]
    fn context_is_job_block_concat_span_block() {
        let (_, span, t1) = sample_span();
        let whole = context_features(&t1, &span, 12);
        let mut split = job_features(&t1);
        split.extend_from(&span_block(&span, 12));
        assert_eq!(whole, split, "split halves concatenate bit-identically");
        // Span off = job block alone.
        assert_eq!(
            context_features_opt(&t1, &span, 12, false),
            job_features(&t1)
        );
    }

    #[test]
    fn feature_cache_returns_identical_blocks_and_counts() {
        let (_, span, _) = sample_span();
        let cache = FeatureCache::new(FeatureCacheConfig::default());
        let t = TemplateId(9);
        let a = cache.span_block_for(t, &span, 12);
        let b = cache.span_block_for(t, &span, 12);
        assert_eq!(*a, span_block(&span, 12), "miss builds the real block");
        assert_eq!(a, b);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!(cache.len(), 1);
        // A different template is a separate entry even with the same span.
        let _ = cache.span_block_for(TemplateId(10), &span, 12);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn slate_cache_returns_identical_slates_and_keys_by_content() {
        let (opt, span, t1) = sample_span();
        let cache = FeatureCache::new(FeatureCacheConfig::default());
        let t = TemplateId(9);
        let context = context_features(&t1, &span, 12);
        let (actions, _) = action_slate(&span, opt.rules());
        let a = cache.slate_for(t, &context, &actions, 18);
        let b = cache.slate_for(t, &context, &actions, 18);
        assert_eq!(
            *a,
            SparseSlate::build(&context, &actions, 18),
            "miss builds the real slate"
        );
        assert_eq!(a, b);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        // Any input change — context item, action set, or dim_bits — is a
        // different key, so a hit can never cross contents.
        let mut other_ctx = context.clone();
        other_ctx.flag("job", "extra");
        let c = cache.slate_for(t, &other_ctx, &actions, 18);
        assert_eq!(*c, SparseSlate::build(&other_ctx, &actions, 18));
        let d = cache.slate_for(t, &context, &actions, 20);
        assert_eq!(*d, SparseSlate::build(&context, &actions, 20));
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn feature_cache_evicts_fifo_beyond_capacity() {
        let (_, span, _) = sample_span();
        let cache = FeatureCache::new(FeatureCacheConfig {
            enabled: true,
            capacity: 2,
            shards: 1,
        });
        for t in 0..3 {
            let _ = cache.span_block_for(TemplateId(t), &span, 12);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // The evicted entry rebuilds to the same block.
        let again = cache.span_block_for(TemplateId(0), &span, 12);
        assert_eq!(*again, span_block(&span, 12));
    }

    #[test]
    fn reward_follows_paper_clipping() {
        assert!(
            (reward_from_costs(100.0, Some(50.0), 2.0) - 2.0).abs() < 1e-12,
            "clipped at 2"
        );
        assert!((reward_from_costs(100.0, Some(80.0), 2.0) - 1.25).abs() < 1e-12);
        assert!((reward_from_costs(100.0, Some(200.0), 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(
            reward_from_costs(100.0, None, 2.0),
            0.0,
            "failures pay zero"
        );
    }
}

//! CB featurization (paper §3.2, §4.2, §6).
//!
//! * **Context** = Table-1 job features (log-bucketed: the dynamic ranges of
//!   costs and cardinalities span many decades) + the complete job span as
//!   indicator features, *"especially when interacted to create second and
//!   third order co-occurrence indicators"* (§3.2) — the paper calls these
//!   span features "critical to our success" (§6).
//! * **Actions** = the no-op plus one flip per span rule, featurized by rule
//!   id and rule category (§4.2).

use personalizer::FeatureVector;
use scope_opt::{RuleFlip, RuleId, RuleSet, SpanResult};
use scope_workload::Table1Features;

/// Build the CB context vector for one job.
#[must_use]
pub fn context_features(
    table1: &Table1Features,
    span: &SpanResult,
    max_span_for_triples: usize,
) -> FeatureVector {
    context_features_opt(table1, span, max_span_for_triples, true)
}

/// [`context_features`] with the span block optional (the §6 ablation).
#[must_use]
pub fn context_features_opt(
    table1: &Table1Features,
    span: &SpanResult,
    max_span_for_triples: usize,
    include_span: bool,
) -> FeatureVector {
    let mut fv = FeatureVector::new();
    // Table-1 numeric features, log-bucketed.
    fv.log_bucket("job", "est_cost", table1.estimated_cost);
    fv.log_bucket("job", "est_cards", table1.estimated_cardinalities);
    fv.log_bucket("job", "bytes_read", table1.bytes_read);
    fv.log_bucket("job", "row_count", table1.row_count);
    fv.log_bucket("job", "latency", table1.latency);
    fv.log_bucket("job", "pn_hours", table1.pn_hours);
    fv.log_bucket("job", "vertices", table1.total_vertices);
    fv.log_bucket("job", "max_memory", table1.max_memory);
    fv.log_bucket("job", "avg_row_len", table1.avg_row_length);
    fv.flag("job", &format!("name:{}", table1.normalized_name));
    fv.flag("job", &format!("qtpl:{:x}", table1.query_template));

    if !include_span {
        return fv;
    }
    // The complete span as indicators + co-occurrence interactions. The
    // higher-order indicators are down-weighted: under normalized SGD the
    // correction is distributed by value², and with C(S,2)+C(S,3) of them
    // they would otherwise drown the action main effects that our (much
    // smaller than SCOPE's) event volume can actually estimate.
    let rules: Vec<String> = span.span.iter().map(|r| r.to_string()).collect();
    for r in &rules {
        fv.flag("span", r);
    }
    for i in 0..rules.len() {
        for j in (i + 1)..rules.len() {
            fv.pair_weighted("span2", &rules[i], &rules[j], 0.25);
        }
    }
    if rules.len() <= max_span_for_triples {
        for i in 0..rules.len() {
            for j in (i + 1)..rules.len() {
                for k in (j + 1)..rules.len() {
                    fv.triple_weighted("span3", &rules[i], &rules[j], &rules[k], 0.1);
                }
            }
        }
    }
    fv
}

/// The action slate for a job: index 0 is the no-op ("changing nothing"),
/// followed by one flip per span rule (§3.2: the action count is `1 + S`).
#[must_use]
pub fn action_slate(
    span: &SpanResult,
    rules: &RuleSet,
) -> (Vec<FeatureVector>, Vec<Option<RuleFlip>>) {
    let default = rules.default_config();
    let mut features = Vec::with_capacity(1 + span.span.len());
    let mut flips = Vec::with_capacity(1 + span.span.len());

    let mut noop = FeatureVector::new();
    noop.flag("action", "noop");
    features.push(noop);
    flips.push(None);

    for rule_id in span.span.iter() {
        let def = rules.rule(rule_id);
        let enable = !default.enabled(rule_id);
        let mut fv = FeatureVector::new();
        fv.flag("action", &rule_id.to_string());
        fv.flag("action", &format!("cat:{}", def.category.name()));
        fv.flag("action", if enable { "dir:on" } else { "dir:off" });
        features.push(fv);
        flips.push(Some(RuleFlip {
            rule: rule_id,
            enable,
        }));
    }
    (features, flips)
}

/// Clipped reward (§4.2): ratio of default estimated cost over the
/// recompiled estimated cost, clipped at `clip` (paper: 2.0). Failures pay 0.
#[must_use]
pub fn reward_from_costs(default_cost: f64, new_cost: Option<f64>, clip: f64) -> f64 {
    match new_cost {
        Some(new) if new > 0.0 => (default_cost / new).min(clip),
        _ => 0.0,
    }
}

/// Rule id of an action index in the slate, for diagnostics.
#[must_use]
pub fn action_rule(flips: &[Option<RuleFlip>], index: usize) -> Option<RuleId> {
    flips.get(index).and_then(|f| f.map(|f| f.rule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_lang::{bind_script, Catalog};
    use scope_opt::{compute_span, Optimizer};

    fn sample_span() -> (Optimizer, SpanResult, Table1Features) {
        let opt = Optimizer::default();
        let plan = bind_script(
            r#"
            a = EXTRACT k:int, v:float FROM "t1";
            b = EXTRACT k:int, g:int FROM "t2";
            j = SELECT * FROM a JOIN b ON a.k == b.k;
            r = SELECT g, SUM(v) AS s FROM j GROUP BY g;
            OUTPUT r TO "o";
        "#,
            &Catalog::default(),
        )
        .unwrap();
        let span = compute_span(&opt, &plan, 6).unwrap();
        let t1 = Table1Features {
            normalized_name: "JoinAgg_x".into(),
            latency: 120.0,
            estimated_cost: 1e9,
            query_template: 42,
            total_vertices: 64.0,
            estimated_cardinalities: 2e6,
            bytes_read: 4e10,
            max_memory: 1e8,
            avg_memory: 5e7,
            avg_row_length: 24.0,
            row_count: 2e6,
            pn_hours: 3.4,
        };
        (opt, span, t1)
    }

    #[test]
    fn context_contains_span_and_interactions() {
        let (_, span, t1) = sample_span();
        let s = span.len();
        let fv = context_features(&t1, &span, 12);
        // 11 job features + S span flags + C(S,2) pairs (+ triples when small).
        let pairs = s * (s - 1) / 2;
        assert!(fv.len() >= 11 + s + pairs, "len {} for span {s}", fv.len());
    }

    #[test]
    fn triples_are_capped_by_span_size() {
        let (_, span, t1) = sample_span();
        let with = context_features(&t1, &span, 64);
        let without = context_features(&t1, &span, 0);
        assert!(with.len() > without.len(), "triples add features");
    }

    #[test]
    fn action_slate_is_one_plus_span() {
        let (opt, span, _) = sample_span();
        let (features, flips) = action_slate(&span, opt.rules());
        assert_eq!(features.len(), 1 + span.len());
        assert_eq!(flips.len(), features.len());
        assert!(flips[0].is_none(), "index 0 is the no-op");
        // Every flip toggles the rule's default state.
        let default = opt.rules().default_config();
        for f in flips.iter().flatten() {
            assert_eq!(f.enable, !default.enabled(f.rule));
        }
    }

    #[test]
    fn reward_follows_paper_clipping() {
        assert!(
            (reward_from_costs(100.0, Some(50.0), 2.0) - 2.0).abs() < 1e-12,
            "clipped at 2"
        );
        assert!((reward_from_costs(100.0, Some(80.0), 2.0) - 1.25).abs() < 1e-12);
        assert!((reward_from_costs(100.0, Some(200.0), 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(
            reward_from_costs(100.0, None, 2.0),
            0.0,
            "failures pay zero"
        );
    }
}

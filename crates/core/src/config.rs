//! Pipeline configuration.
//!
//! # Runtime knobs
//!
//! Every throughput/workload knob reachable from the CLI tools
//! (`experiments`, `probe`) in one place. Flags win over environment
//! variables; all four knobs are *throughput or workload-shape* switches —
//! `--threads`, `--cache`, and `--exec-cache` never change steering outputs
//! (see `tests/determinism.rs`), `--literals` changes the generated workload
//! itself.
//!
//! | Env var         | `experiments` flag | Values                            | Effect |
//! |-----------------|--------------------|-----------------------------------|--------|
//! | `QO_THREADS`    | `--threads N`      | integer (`0` = all cores)         | Worker threads for the pipeline's compile-bound fan-outs ([`ParallelismConfig`]); unset/`1` = serial |
//! | `QO_CACHE`      | `--cache V`        | `on`/`1`/`true`, `off`/`0`/`false`| Compile-result cache ([`scope_opt::CacheConfig`], on by default) shared across view building, span fixpoint, recommendation, flighting, and days |
//! | `QO_EXEC_CACHE` | `--exec-cache V`   | `on`/`1`/`true`, `off`/`0`/`false`| Execution-result cache ([`scope_runtime::ExecCacheConfig`], on by default) shared across production runs, counterfactual runs, flighting, and days — memoizes stage graphs and whole simulated runs |
//! | `QO_DELTA`      | `--delta-compile V`| `on`/`1`/`true`, `off`/`0`/`false`| Delta treatment compilation ([`scope_opt::DeltaConfig`], on by default): recommendation and flighting treatment slates are priced as incremental passes over a shared per-plan base memo instead of from-scratch compiles — byte-identical results, only throughput differs |
//! | `QO_LITERALS`   | `--literals P`     | `fresh`, `sticky`, `sticky:N`, `mixed:F` | Literal-redraw policy ([`scope_workload::LiteralPolicy`]) of recurring templates: fresh per run (default), pinned per N-day epoch (`sticky:0` = forever), or a sticky fraction `F` of templates |
//! | `QO_FEATURE_CACHE` | `--feature-cache V` | `on`/`1`/`true`, `off`/`0`/`false`| Span-feature cache ([`crate::features::FeatureCache`], on by default): the CB context's C(S,2)+C(S,3) span co-occurrence block is built once per template and memoized keyed on `(template, span fingerprint)` instead of rebuilt per job-day — byte-identical context vectors, only throughput differs |
//! | `QO_SNAPSHOT_EVERY` | `--snapshot-every N` | integer N days (`0` = never, default) | Durable-state snapshot cadence ([`crate::snapshot::SnapshotPolicy`]): write the full steering state (bandit, SIS, flighting salt, explored set, monitor, warm span cache) to `results/snapshots/<experiment>.qosnap` at every Nth day boundary. Purely operational — steering outputs are bit-identical with snapshots on or off (`tests/snapshot_recovery.rs`); the write cost lands in `DailyReport.timings.snapshot_ns` |
//! | `QO_SNAPSHOT` | *(probe only)* | file path | `probe` installs an every-day [`crate::snapshot::SnapshotPolicy`] at this path, reports per-day write cost and a timed end-of-run restore in its JSON record, and the `recovery` bin's `--snapshot`/`--resume` flags drive the CI crash-recovery smoke leg against the same format |
//! | `QO_COMPILE_BUDGET` | `--compile-budget N` | integer N tasks (`0`/`unlimited`/`off` = unlimited, default) | Anytime compile budget ([`scope_opt::CompileBudget`]) for the loop's *measurement-path* compiles — the counterfactual default recompiles of hinted jobs. At N tasks the optimizer's task-queue cascade stops exploring after N tasks and extracts the best plan from the partial memo (`scope_opt::tasks`). Steering-path compiles (view build, span fixpoint, recommendation, flighting) always run to completion, so hint files and reports are budget-invariant; shed tallies land in `DailyReport.compile_budget`. Finite-budget compiles bypass the compile cache and delta compiler (truncated results are not cacheable under unbudgeted keys), so shed decisions are a pure function of `(plan, config, budget)` — deterministic at any thread count |
//! | `QO_TENANTS` | `fleet --tenants N` | integer ≥ 1 (fleet probe default 64) | Tenant count for the multi-tenant fleet probe (`crates/bench/src/bin/fleet.rs`): N per-tenant steering loops ([`crate::fleet::Fleet`]) over one process-wide [`crate::pipeline::SharedCaches`]. A serving-scale knob, not a behavior knob — each tenant's outputs are byte-identical to running it alone (`tests/fleet_determinism.rs`) |
//! | `QO_FLEET_WORKERS` | `fleet --workers N` | integer (`0` = all cores) | Worker threads of the fleet's streaming job pipeline ([`crate::fleet::StreamConfig`]): workers pull job arrivals off the bounded queue and build view rows; per-tenant reduces stay serial. Pure throughput knob |
//!
//! `probe` reads the same environment variables; `experiments` also accepts
//! the flags. Programmatic equivalents: [`PipelineConfig::parallelism`],
//! [`PipelineConfig::cache`], [`PipelineConfig::exec_cache`],
//! [`PipelineConfig::delta`], [`PipelineConfig::feature_cache`],
//! [`scope_workload::WorkloadConfig::literals`], and
//! [`crate::simulation::ProductionSim::set_snapshot_policy`].

use crate::features::FeatureCacheConfig;
use flighting::FlightBudget;
use personalizer::CbConfig;
use scope_opt::{CacheConfig, CompileBudget, DeltaConfig};
use scope_runtime::ExecCacheConfig;
use serde::{Deserialize, Serialize};

/// How the Recommendation task chooses flips (Table 3 compares these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecommendStrategy {
    /// Contextual bandit (production QO-Advisor).
    ContextualBandit,
    /// Uniform-at-random flip from the span (the paper's baseline).
    UniformRandom,
}

/// Data-parallelism knob for the pipeline's compile-bound fan-outs (Feature
/// Generation span computation and Recommendation recompilation). The paper's
/// production pipeline runs these tasks over hundreds of thousands of jobs
/// per day; here they shard across threads.
///
/// Results are **bit-identical at any setting**: parallel stages only run
/// pure per-job compiles, and all bandit-state mutation happens in a
/// deterministic serial reduce afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ParallelismConfig {
    /// Worker threads for the parallel stages. `None` (default) keeps the
    /// original single-threaded execution; `Some(0)` uses every available
    /// core; `Some(n)` uses exactly `n` threads.
    pub threads: Option<usize>,
}

impl ParallelismConfig {
    /// The serial default.
    #[must_use]
    pub fn serial() -> Self {
        Self { threads: None }
    }

    /// Run fan-outs on `n` worker threads (`0` = all available cores).
    #[must_use]
    pub fn with_threads(n: usize) -> Self {
        Self { threads: Some(n) }
    }
}

/// Knobs of the daily pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub strategy: RecommendStrategy,
    /// Thread-parallelism of the per-day fan-out stages.
    pub parallelism: ParallelismConfig,
    /// Compile-result cache over the span / recommendation / validation
    /// recompiles (compilation is deterministic, so cached runs are
    /// byte-identical to uncached ones — the cache is purely a throughput
    /// knob, like `parallelism`).
    pub cache: CacheConfig,
    /// Execution-result cache over every simulated run of the closed loop
    /// (production view builds, counterfactual default runs, flighting
    /// baseline/treatment pairs). Execution is deterministic given the plan
    /// and seeds, so — exactly like `cache` — this is a throughput knob
    /// that never changes steering outputs.
    pub exec_cache: ExecCacheConfig,
    /// Delta treatment compilation over the recommendation/flighting
    /// slates: each plan's default compilation is frozen as a shared
    /// `scope_opt::delta::BaseMemo` and rule-flip treatments are priced
    /// incrementally against it. Byte-identical to from-scratch compiles
    /// (asserted in `tests/delta_equivalence.rs` and
    /// `tests/determinism.rs`), so — like the two result caches — a pure
    /// throughput knob.
    pub delta: DeltaConfig,
    /// Span-feature cache over the CB context's span co-occurrence block
    /// (built per template, memoized across jobs and days). Featurization
    /// is deterministic, so — like the other caches — a pure throughput
    /// knob that never changes steering outputs (`tests/determinism.rs`).
    pub feature_cache: FeatureCacheConfig,
    /// Anytime compile budget for the loop's measurement-path compiles (the
    /// counterfactual default recompiles of hinted jobs). Unlimited by
    /// default; at a finite task budget the optimizer's task-queue cascade
    /// sheds exploration past the budget and extracts the best plan found so
    /// far from the partial memo ([`scope_opt::tasks`]). Steering-path
    /// compiles always run unlimited, so hint files and reports never depend
    /// on this knob; shed tallies surface in
    /// [`crate::pipeline::DailyReport::compile_budget`].
    pub compile_budget: CompileBudget,
    /// Contextual bandit hyper-parameters.
    pub cb: CbConfig,
    /// Flighting budget per daily batch.
    pub flight_budget: FlightBudget,
    /// Validation threshold on predicted PNhours delta: only jobs whose
    /// predicted delta is below this pass (§4.3; paper uses −0.1).
    pub validation_threshold: f64,
    /// Reward clipping bound (§4.2; paper clips the cost ratio at 2.0).
    pub reward_clip: f64,
    /// Maximum span-fixpoint recompilation passes.
    pub span_max_iterations: usize,
    /// Prune recommendations whose recompiled estimated cost is not better
    /// than the default. Disabling this reproduces the §5.2 ablation where
    /// flighting drowns in orders-of-magnitude-worse plans.
    pub est_cost_gate: bool,
    /// Cap on flights per day (one representative job per template).
    pub max_flights_per_day: usize,
    /// Maximum span size used for third-order interaction features (keeps
    /// the feature count bounded on long-tail spans).
    pub max_span_for_triples: usize,
    /// §8 stateful mode: skip jobs whose template was already flighted on a
    /// previous day (it will be re-examined only if its plan changes, i.e.
    /// its template id changes). Off by default, as in the paper.
    pub skip_explored: bool,
    /// Include the job span (and its co-occurrence interactions) in the CB
    /// context. The paper found these features "critical to our success"
    /// (§6); disabling them is the span-features ablation.
    pub span_features: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            strategy: RecommendStrategy::ContextualBandit,
            parallelism: ParallelismConfig::serial(),
            cache: CacheConfig::default(),
            exec_cache: ExecCacheConfig::default(),
            delta: DeltaConfig::default(),
            feature_cache: FeatureCacheConfig::default(),
            compile_budget: CompileBudget::unlimited(),
            cb: CbConfig::default(),
            flight_budget: FlightBudget::default(),
            validation_threshold: -0.1,
            reward_clip: 2.0,
            span_max_iterations: 6,
            est_cost_gate: true,
            max_flights_per_day: 48,
            max_span_for_triples: 12,
            skip_explored: false,
            span_features: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = PipelineConfig::default();
        assert_eq!(c.strategy, RecommendStrategy::ContextualBandit);
        assert!(
            (c.validation_threshold + 0.1).abs() < 1e-12,
            "paper threshold is -0.1"
        );
        assert!((c.reward_clip - 2.0).abs() < 1e-12, "paper clips at 2.0");
        assert!(c.est_cost_gate, "cost gate on by default (§5.2)");
    }
}

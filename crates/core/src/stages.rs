//! The five pipeline tasks of a QO-Advisor day (paper §2.5, Figure 1) as
//! explicit stages with typed intermediates:
//!
//! ```text
//! FeatureGen → Recommend → Flight → Validate → Publish
//! ```
//!
//! The two compile-bound stages — span computation in [`feature_gen`] and
//! recompilation in [`recommend`] — fan out across threads under
//! [`ParallelismConfig`]. Everything that mutates shared state (the span
//! cache, the contextual bandit, SIS) runs in serial reduces over the
//! fan-out results, **in input order**, so a day's outputs are bit-identical
//! at any thread count:
//!
//! * `feature_gen` computes missing spans in parallel, then installs them in
//!   the cache in first-seen template order;
//! * `recommend` splits the Personalizer interaction: all rank calls happen
//!   serially up front (event ids stay sequential in job order), the chosen
//!   flips recompile in parallel, and rewards apply in a serial reduce from
//!   the compiled costs. Relative to the fully interleaved loop this means
//!   the bandit acts on the previous day's model for the whole batch —
//!   matching a daily batch pipeline — while still absorbing every event.
//!
//! Every compile in these stages goes through the advisor's
//! [`CachingOptimizer`], so a `(plan, configuration)` pair recompiled across
//! stages (the flight baseline repeats Feature Generation's default compile;
//! the flight treatment repeats Recommendation's flip compile) or across
//! days is a lookup, not a search — and the treatment compiles the cache
//! can never serve (fresh flips are new `(plan, config)` pairs) go through
//! `Compiler::compile_slate`, priced incrementally against the plan's
//! shared base memo (`scope_opt::delta`). Compilation is deterministic and
//! delta results are byte-identical to from-scratch compiles, so the
//! cache and the delta compiler — like the thread pool — are throughput
//! knobs, never behavior knobs.

use crate::config::{ParallelismConfig, RecommendStrategy};
use crate::features::{action_slate, job_features, reward_from_costs, span_block};
use crate::pipeline::{DailyReport, PipelineError, QoAdvisor, Recommendation};
use personalizer::{FeatureVector, RankRequest, RankResponse, SparseSlate};
use rayon::prelude::*;
use rayon::ThreadPool;
use rustc_hash::{FxHashMap, FxHashSet};
use scope_ir::ids::{mix64, CB_ACT_RANK_SALT, CB_TRAIN_RANK_SALT, UNIFORM_PICK_SALT};
use scope_ir::logical::LogicalPlan;
use scope_ir::TemplateId;
use scope_opt::{compute_span, CachingOptimizer, CompileError, Hint, RuleFlip, SpanResult};
use scope_workload::ViewRow;
use sis::HintFile;
use std::sync::Arc;

/// Build the worker pool a pipeline configuration asks for, once per
/// [`QoAdvisor`] (stages run several fan-outs per day; the pool is reused
/// across all of them). `None` = run stages serially.
pub(crate) fn build_pool(par: ParallelismConfig) -> Option<ThreadPool> {
    match par.threads {
        None | Some(1) => None,
        // Pool construction only fails on resource exhaustion; serial
        // execution is elementwise identical (`par_map` requires pure
        // closures), so fall back instead of panicking.
        Some(n) => rayon::ThreadPoolBuilder::new().num_threads(n).build().ok(),
    }
}

/// Map `f` over `items`, preserving input order. Serial without a pool;
/// either way the result is elementwise identical because `f` must be pure.
pub(crate) fn par_map<'a, T, U, F>(pool: Option<&ThreadPool>, items: &'a [T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    match pool {
        None => items.iter().map(f).collect(),
        Some(pool) => pool.install(|| items.par_iter().map(f).collect()),
    }
}

/// The span-cache entry for one template: the default-configuration
/// estimated cost plus the span fixpoint, or `None` when the template does
/// not compile or has an empty span. Shared by the parallel Feature
/// Generation fan-out and [`QoAdvisor`]'s on-demand `span_for` so the gating
/// cannot diverge between the two paths.
pub(crate) fn compute_template_span(
    optimizer: &CachingOptimizer,
    plan: &LogicalPlan,
    max_iterations: usize,
) -> Option<(SpanResult, f64)> {
    let default_cost = optimizer
        .compile(plan, &optimizer.default_config())
        .ok()?
        .est_cost;
    let span = compute_span(optimizer, plan, max_iterations).ok()?;
    if span.is_empty() {
        return None;
    }
    Some((span, default_cost))
}

/// One recurring job that cleared Feature Generation: its span plus the
/// default-configuration estimated cost.
pub struct SpannedJob<'v> {
    pub row: &'v ViewRow,
    pub span: SpanResult,
    pub default_cost: f64,
}

/// Output of Task 1 — Feature Generation.
pub struct FeatureGenOutput<'v> {
    pub jobs: Vec<SpannedJob<'v>>,
}

/// Output of Task 2 — Recommendation (+ Recompilation): candidates that
/// survived the estimated-cost gate, in job order.
pub struct RecommendOutput {
    pub candidates: Vec<Recommendation>,
}

/// Output of Task 3 — Flighting: the flighted representatives, index-aligned
/// with their outcomes.
pub struct FlightOutput {
    pub reps: Vec<Recommendation>,
    pub outcomes: Vec<flighting::FlightOutcome>,
}

/// Output of Task 4 — Validation.
pub struct ValidateOutput {
    pub accepted: Vec<Hint>,
}

/// Task 1 — Feature Generation: select today's recurring jobs and attach
/// spans. Span computation is template-stable, so the cache is consulted
/// first and only the missing templates are compiled — in parallel, one
/// fan-out item per unique template in first-seen order.
pub(crate) fn feature_gen<'v>(
    qa: &mut QoAdvisor,
    view: &'v [ViewRow],
    report: &mut DailyReport,
) -> FeatureGenOutput<'v> {
    let mut rows: Vec<&ViewRow> = Vec::new();
    for row in view {
        if !row.recurring {
            continue;
        }
        report.recurring_jobs += 1;
        if qa.config.skip_explored && qa.explored.contains(&row.template) {
            report.skipped_explored += 1;
            continue;
        }
        rows.push(row);
    }

    // Unique templates missing from the cache, in first-seen order (the
    // order cache entries are installed in, independent of thread count).
    let mut seen: FxHashSet<TemplateId> = FxHashSet::default();
    let mut pending: Vec<(TemplateId, &LogicalPlan)> = Vec::new();
    for row in &rows {
        if !qa.span_cache.contains_key(&row.template) && seen.insert(row.template) {
            pending.push((row.template, &row.plan));
        }
    }

    let optimizer = &qa.optimizer;
    let iterations = qa.config.span_max_iterations;
    let computed = par_map(qa.pool.as_ref(), &pending, |(_, plan)| {
        compute_template_span(optimizer, plan, iterations)
    });
    for ((template, _), entry) in pending.iter().zip(computed) {
        qa.span_cache.insert(*template, entry);
    }

    let jobs: Vec<SpannedJob<'v>> = rows
        .into_iter()
        .filter_map(|row| {
            let (span, default_cost) = qa.span_cache.get(&row.template)?.clone()?;
            Some(SpannedJob {
                row,
                span,
                default_cost,
            })
        })
        .collect();
    report.jobs_with_span = jobs.len();
    FeatureGenOutput { jobs }
}

/// The Personalizer interactions decided for one job during the serial rank
/// pass, before any recompilation has happened.
struct JobDecisions {
    /// Off-policy training pass (contextual-bandit strategy only): event id
    /// plus the flip whose cost ratio will become the reward (`None` = the
    /// no-op action, rewarded 1.0).
    train: Option<(u64, Option<RuleFlip>)>,
    act: ActDecision,
}

/// The acting-policy decision for one job.
enum ActDecision {
    /// Keep the default configuration. The event id (bandit strategy only)
    /// is rewarded 1.0 in the reduce.
    Noop(Option<u64>),
    /// Recompile under this flip; the event id is rewarded from the
    /// resulting cost ratio.
    Flip(RuleFlip, Option<u64>),
}

/// Task 2 — Recommendation + Recompilation, in three phases:
/// parallel slate construction, serial rank pass, parallel recompile
/// fan-out, then a serial reduce applying rewards and report counters.
pub(crate) fn recommend(
    qa: &mut QoAdvisor,
    input: &FeatureGenOutput<'_>,
    day: u32,
    report: &mut DailyReport,
) -> Result<RecommendOutput, PipelineError> {
    let jobs = &input.jobs;
    let default_config = qa.optimizer.default_config();

    // Phase 1: context + action slates are pure per-job features — fan out.
    // The template-stable span block comes from the span-feature cache when
    // enabled (bit-identical to rebuilding it; see `crate::features`), and
    // under the batched scorer the (context × action) CSR slate is folded
    // here too, so the serial rank pass below only gathers weights.
    let optimizer = &qa.optimizer;
    let config = &qa.config;
    let feature_cache = qa.feature_cache.as_ref();
    let batch = config.strategy == RecommendStrategy::ContextualBandit && config.cb.batch_rank;
    type JobSlate = (
        FeatureVector,
        Vec<FeatureVector>,
        Vec<Option<RuleFlip>>,
        Option<Arc<SparseSlate>>,
    );
    let slates: Vec<JobSlate> = par_map(qa.pool.as_ref(), jobs, |job| {
        let mut context = job_features(&job.row.features);
        if config.span_features {
            match feature_cache {
                Some(cache) => context.extend_from(&cache.span_block_for(
                    job.row.template,
                    &job.span,
                    config.max_span_for_triples,
                )),
                None => context.extend_from(&span_block(&job.span, config.max_span_for_triples)),
            }
        }
        let (actions, flips) = action_slate(&job.span, optimizer.rules());
        let sparse = batch.then(|| match feature_cache {
            Some(cache) => {
                cache.slate_for(job.row.template, &context, &actions, config.cb.dim_bits)
            }
            None => Arc::new(SparseSlate::build(&context, &actions, config.cb.dim_bits)),
        });
        (context, actions, flips, sparse)
    });

    // Phase 2: serial rank pass, job order. Every rank call happens before
    // any reward, so event ids are sequential regardless of thread count
    // and the whole batch acts on the model as of yesterday.
    // That ordering also makes the model constant across the whole pass
    // (rewards apply in phase 4), so each distinct slate is *scored* once
    // and the scores reused by every rank over it — the training and acting
    // ranks of the same job, and every job sharing a cached slate. Keying
    // the memo by slate address is sound because the memo holds the `Arc`:
    // a key's allocation stays live for the whole pass, so no later slate
    // can alias it. Decisions stay bit-identical to the sequential
    // per-action path.
    let mut score_memo: FxHashMap<usize, (Arc<SparseSlate>, Vec<f64>)> = FxHashMap::default();
    let rank = |req: &RankRequest, scores: &Option<Vec<f64>>| -> RankResponse {
        match scores {
            Some(scores) => qa.personalizer.rank_scored(req, scores),
            None => qa.personalizer.rank(req),
        }
    };
    let mut decisions: Vec<JobDecisions> = Vec::with_capacity(jobs.len());
    for (job, (context, actions, flips, sparse)) in jobs.iter().zip(slates) {
        let sparse = sparse.as_ref().map(|slate| {
            score_memo
                .entry(Arc::as_ptr(slate) as usize)
                .or_insert_with(|| (Arc::clone(slate), qa.personalizer.scores_slate(slate)))
                .1
                .clone()
        });
        let train = if qa.config.strategy == RecommendStrategy::ContextualBandit {
            let resp = rank(
                &RankRequest {
                    context: context.clone(),
                    actions: actions.clone(),
                    seed: mix64(job.row.job_id.0, mix64(u64::from(day), CB_TRAIN_RANK_SALT)),
                    log_uniform: true,
                },
                &sparse,
            );
            Some((resp.event_id, flips[resp.decision.chosen]))
        } else {
            None
        };
        let act = match qa.config.strategy {
            RecommendStrategy::ContextualBandit => {
                let resp = rank(
                    &RankRequest {
                        context,
                        actions,
                        seed: mix64(job.row.job_id.0, mix64(u64::from(day), CB_ACT_RANK_SALT)),
                        log_uniform: false,
                    },
                    &sparse,
                );
                match flips[resp.decision.chosen] {
                    None => ActDecision::Noop(Some(resp.event_id)),
                    Some(flip) => ActDecision::Flip(flip, Some(resp.event_id)),
                }
            }
            RecommendStrategy::UniformRandom => {
                // Uniform baseline always flips a span rule (Table 3).
                let idx = 1
                    + (mix64(job.row.job_id.0, mix64(u64::from(day), UNIFORM_PICK_SALT)) as usize
                        % job.span.len());
                match flips[idx] {
                    None => ActDecision::Noop(None),
                    Some(flip) => ActDecision::Flip(flip, None),
                }
            }
        };
        decisions.push(JobDecisions { train, act });
    }

    // Phase 3: recompile fan-out, one *slate* per job — the job's 1-2
    // distinct treatment configurations priced together against the default
    // base configuration, so `Compiler::compile_slate` can reuse the plan's
    // base memo across them (and, through the shared `DeltaCompiler`,
    // across jobs, stages, and days). When the training and acting passes
    // chose the same flip the compile is shared (compilation is
    // deterministic, so this is observationally identical to compiling
    // twice).
    struct CompileSlate<'v> {
        plan: &'v LogicalPlan,
        treatments: Vec<scope_opt::RuleConfig>,
    }
    /// Where a job's decision's cost lives: `(slate index, treatment index)`.
    type TaskRef = Option<(usize, usize)>;
    let mut slates: Vec<CompileSlate<'_>> = Vec::new();
    let mut train_task: Vec<TaskRef> = Vec::with_capacity(jobs.len());
    let mut act_task: Vec<TaskRef> = Vec::with_capacity(jobs.len());
    for (job, decision) in jobs.iter().zip(&decisions) {
        let train_flip = decision.train.and_then(|(_, flip)| flip);
        let act_flip = match decision.act {
            ActDecision::Flip(flip, _) => Some(flip),
            ActDecision::Noop(_) => None,
        };
        if train_flip.is_none() && act_flip.is_none() {
            train_task.push(None);
            act_task.push(None);
            continue;
        }
        let slate_idx = slates.len();
        let mut treatments = Vec::with_capacity(2);
        let train_idx = train_flip.map(|flip| {
            treatments.push(default_config.with_flip(flip));
            (slate_idx, treatments.len() - 1)
        });
        let act_idx = match (act_flip, train_flip, train_idx) {
            (Some(act), Some(train), Some(idx)) if act == train => Some(idx),
            (Some(flip), _, _) => {
                treatments.push(default_config.with_flip(flip));
                Some((slate_idx, treatments.len() - 1))
            }
            (None, _, _) => None,
        };
        slates.push(CompileSlate {
            plan: &job.row.plan,
            treatments,
        });
        train_task.push(train_idx);
        act_task.push(act_idx);
    }
    let costs: Vec<Vec<Result<f64, CompileError>>> = par_map(qa.pool.as_ref(), &slates, |slate| {
        optimizer
            .compile_slate(slate.plan, &default_config, &slate.treatments)
            .into_iter()
            .map(|result| result.map(|compiled| compiled.est_cost))
            .collect()
    });

    // Phase 4: serial reduce, job order — bandit rewards, Table-3 counters,
    // and the estimated-cost gate (§5.6).
    let mut candidates: Vec<Recommendation> = Vec::new();
    for (i, (job, decision)) in jobs.iter().zip(&decisions).enumerate() {
        let default_cost = job.default_cost;
        if let Some((event, flip)) = decision.train {
            let reward = match flip {
                None => 1.0, // no-op: cost ratio is exactly 1
                Some(_) => {
                    let cost = train_task[i].and_then(|(s, t)| costs[s][t].as_ref().ok().copied());
                    reward_from_costs(default_cost, cost, qa.config.reward_clip)
                }
            };
            qa.personalizer.reward(event, reward);
        }
        match decision.act {
            ActDecision::Noop(event) => {
                if let Some(event) = event {
                    qa.personalizer.reward(event, 1.0);
                }
                report.noop_chosen += 1;
                report.total_default_cost += default_cost;
                report.total_chosen_cost += default_cost;
            }
            ActDecision::Flip(flip, event) => {
                report.total_default_cost += default_cost;
                // A `Flip` decision always records the (slate, treatment)
                // indices of its recompile; a miss is a scheduling bug.
                let Some(outcome) = act_task[i].map(|(s, t)| &costs[s][t]) else {
                    return Err(PipelineError::Invariant(
                        "flip decision without a recompiled treatment",
                    ));
                };
                match outcome {
                    Ok(new_cost) => {
                        let new_cost = *new_cost;
                        report.total_chosen_cost += new_cost;
                        if let Some(event) = event {
                            qa.personalizer.reward(
                                event,
                                reward_from_costs(
                                    default_cost,
                                    Some(new_cost),
                                    qa.config.reward_clip,
                                ),
                            );
                        }
                        let rel = (new_cost - default_cost) / default_cost.max(1e-12);
                        // Table-3 classification: deltas within 0.3% count
                        // as "equal" (SCOPE cost units are coarse at plan
                        // scale).
                        if rel < -0.003 {
                            report.lower_cost += 1;
                        } else if rel > 0.003 {
                            report.higher_cost += 1;
                        } else {
                            report.equal_cost += 1;
                        }
                        // Short-circuit when the estimate did not improve
                        // (§5.6).
                        if qa.config.est_cost_gate && rel >= -1e-9 {
                            continue;
                        }
                        candidates.push(Recommendation {
                            template: job.row.template,
                            job_id: job.row.job_id,
                            job_seed: job.row.job_seed,
                            plan: job.row.plan.clone(),
                            flip,
                            default_cost,
                            new_cost,
                        });
                    }
                    Err(_) => {
                        report.recompile_failures += 1;
                        report.total_chosen_cost += default_cost;
                        if let Some(event) = event {
                            qa.personalizer.reward(event, 0.0);
                        }
                    }
                }
            }
        }
    }
    Ok(RecommendOutput { candidates })
}

/// Task 3 — Flighting: one representative job per template (picked
/// deterministically), most-promising estimated-cost deltas first (§4.3),
/// A/B-tested in pre-production under the flighting budget.
pub(crate) fn flight(
    qa: &mut QoAdvisor,
    input: RecommendOutput,
    report: &mut DailyReport,
) -> FlightOutput {
    let mut by_template: FxHashMap<TemplateId, Recommendation> = FxHashMap::default();
    for cand in input.candidates {
        by_template.entry(cand.template).or_insert(cand);
    }
    // qo-lint: allow(unordered-iter) — collected then totally ordered by the
    // (cost_delta, template) sort immediately below
    let mut reps: Vec<Recommendation> = by_template.into_values().collect();
    reps.sort_by(|a, b| {
        a.cost_delta()
            .total_cmp(&b.cost_delta())
            .then(a.template.cmp(&b.template))
    });
    reps.truncate(qa.config.max_flights_per_day);
    let default_config = qa.optimizer.default_config();
    let requests: Vec<flighting::FlightRequest> = reps
        .iter()
        .map(|r| flighting::FlightRequest {
            template: r.template,
            plan: r.plan.clone(),
            job_seed: r.job_seed,
            baseline: default_config,
            treatment: default_config.with_flip(r.flip),
        })
        .collect();
    let (outcomes, tracker) = qa
        .flighting
        .flight_batch(&qa.optimizer, &qa.preprod_exec, &requests);
    report.flighted = requests.len();
    report.flight_seconds_used = tracker.used_seconds;
    for r in &reps {
        qa.explored.insert(r.template);
    }
    FlightOutput { reps, outcomes }
}

/// Task 4 — Validation: accept a flight only when the (modeled) PNhours
/// delta clears the safety threshold.
pub(crate) fn validate(
    qa: &QoAdvisor,
    input: &FlightOutput,
    report: &mut DailyReport,
) -> ValidateOutput {
    let mut accepted: Vec<Hint> = Vec::new();
    for (rec, outcome) in input.reps.iter().zip(input.outcomes.iter()) {
        match outcome {
            flighting::FlightOutcome::Success(m) => {
                report.flight_success += 1;
                let ok = match &qa.validation {
                    Some(model) => model.accepts(
                        m.data_read_delta(),
                        m.data_written_delta(),
                        qa.config.validation_threshold,
                    ),
                    // Without a trained model, fall back to the raw (noisy)
                    // single-flight measurement.
                    None => m.pn_delta() < qa.config.validation_threshold,
                };
                if ok {
                    report.validated += 1;
                    accepted.push(Hint {
                        template: rec.template,
                        flip: rec.flip,
                    });
                }
            }
            flighting::FlightOutcome::Timeout => report.flight_timeout += 1,
            flighting::FlightOutcome::Failure(_) => report.flight_failure += 1,
            flighting::FlightOutcome::Filtered => report.flight_filtered += 1,
        }
    }
    ValidateOutput { accepted }
}

/// Task 5 — Hint Generation: merge today's accepted hints with the live
/// set and publish a new SIS version.
pub(crate) fn publish(
    qa: &mut QoAdvisor,
    input: ValidateOutput,
    day: u32,
    report: &mut DailyReport,
) -> Result<(), PipelineError> {
    let mut merged = qa.sis.snapshot();
    for h in &input.accepted {
        merged.insert(*h);
    }
    report.hints_published = input.accepted.len();
    if !input.accepted.is_empty() {
        let version = qa.sis.version() + 1;
        qa.sis.publish(HintFile {
            version,
            source_day: day,
            hints: merged.hints(),
        })?;
    }
    report.sis_version = qa.sis.version();
    Ok(())
}

//! Post-deployment regression monitoring — the paper's §8 future-work item
//! implemented: *"In future work we will attempt to optimistically accept
//! proposed query plans and detect regressions from subsequent runtime
//! metrics."*
//!
//! The monitor keeps a rolling PNhours baseline per template from the
//! telemetry of *unhinted* runs; once a hint deploys, each hinted production
//! run is compared against that baseline. A hint that regresses in
//! `revert_after` consecutive observations is reverted (removed from SIS) —
//! turning the one-shot validation gate into a closed feedback loop and
//! allowing a looser (or even optimistic) validation threshold.

use rustc_hash::FxHashMap;
use scope_ir::TemplateId;
use scope_workload::ViewRow;
use serde::{Deserialize, Serialize};

/// One day's compile-result-cache telemetry, embedded in
/// [`crate::DailyReport`] so the daily report carries the hit/miss/insert/
/// evict trajectory alongside the steering counters — attributed to the
/// pipeline stage (or simulator phase) that issued each lookup, so the
/// report shows *where* the cache earns its keep: under a sticky
/// [`scope_workload::LiteralPolicy`] the `view_build` stage dominates
/// (recurring production scripts rebind the identical plan every day),
/// while with fresh literals only the within-day repeats
/// (`feature_gen`/`flight`) hit.
///
/// These are *observability* counters, not steering outputs: the cached
/// results themselves are byte-identical to recompiles, but which lookup
/// hits can depend on eviction order under parallel inserts, so
/// reproducibility comparisons zero this field (see `tests/determinism.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Production compiles while building the daily view (filled by
    /// [`crate::ProductionSim::advance_day`]; zero for a bare
    /// [`crate::QoAdvisor::run_day`], which is handed a prebuilt view).
    pub view_build: scope_opt::CacheStats,
    /// Counterfactual default-configuration compiles of hinted production
    /// jobs (also a [`crate::ProductionSim`] phase).
    pub counterfactual: scope_opt::CacheStats,
    /// Task 1 — Feature Generation: the span fixpoint's recompiles.
    pub feature_gen: scope_opt::CacheStats,
    /// Task 2 — Recommendation: the chosen-flip recompiles.
    pub recommend: scope_opt::CacheStats,
    /// Task 3 — Flighting: baseline/treatment validation compiles.
    pub flight: scope_opt::CacheStats,
}

impl CacheCounters {
    /// Counter-wise roll-up across every stage.
    #[must_use]
    pub fn total(&self) -> scope_opt::CacheStats {
        [
            self.view_build,
            self.counterfactual,
            self.feature_gen,
            self.recommend,
            self.flight,
        ]
        .into_iter()
        .sum()
    }

    /// Total lookups across stages.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.total().lookups()
    }

    /// Total hits across stages.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.total().hits
    }

    /// Hit fraction across stages in `[0, 1]` (0 when nothing was looked
    /// up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.total().hit_rate()
    }
}

/// One day's execution-result-cache telemetry, embedded in
/// [`crate::DailyReport`] beside [`CacheCounters`] — the same per-stage
/// attribution, on the execution side. Only three phases of a day execute
/// plans: building the production view, the counterfactual default runs,
/// and flighting's baseline/treatment pairs. Each carries a
/// [`scope_runtime::ExecStats`] with two levels — `results` (whole simulated
/// runs replayed from cache) and `graphs` (memoized stage-graph builds,
/// consulted on result misses): in the closed loop run seeds are fresh every
/// day, so `graphs` is where recurring plans pay off, while `results` hits
/// on exact re-runs (A/A probes, repeated experiment evaluation).
///
/// Observability only, like the compile counters: reproducibility
/// comparisons zero this field (see `tests/determinism.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Production runs while building the daily view (filled by
    /// [`crate::ProductionSim::advance_day`]).
    pub view_build: scope_runtime::ExecStats,
    /// Counterfactual default-plan runs of hinted production jobs.
    pub counterfactual: scope_runtime::ExecStats,
    /// Task 3 — Flighting: baseline/treatment pre-production runs.
    pub flight: scope_runtime::ExecStats,
}

impl ExecCounters {
    /// Counter-wise roll-up across every stage.
    #[must_use]
    pub fn total(&self) -> scope_runtime::ExecStats {
        [self.view_build, self.counterfactual, self.flight]
            .into_iter()
            .sum()
    }

    /// Total executions that consulted the cache.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.total().lookups()
    }

    /// Executions replayed entirely from cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.total().hits()
    }

    /// Whole-run replay rate across stages in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.total().hit_rate()
    }

    /// Fraction of executions that at least reused a memoized stage graph.
    #[must_use]
    pub fn partial_hit_rate(&self) -> f64 {
        self.total().partial_hit_rate()
    }
}

/// Wall-clock time of each phase of one simulated day, in nanoseconds —
/// embedded in [`crate::DailyReport`] so the per-day perf trajectory is
/// machine-readable (the `probe --json` output ships it into
/// `results/BENCH_probe.json`; see `PERFORMANCE.md`).
///
/// Pure observability, like the cache counters: wall clocks obviously vary
/// run to run, so reproducibility comparisons zero this field (see
/// `tests/determinism.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Production view building ([`crate::ProductionSim::advance_day`] only;
    /// zero for a bare [`crate::QoAdvisor::run_day`]).
    pub view_build_ns: u64,
    /// Counterfactual default compiles + runs of hinted production jobs.
    pub counterfactual_ns: u64,
    /// Task 1 — Feature Generation (span fixpoint).
    pub feature_gen_ns: u64,
    /// Task 2 — Recommendation (+ recompilation / slate pricing).
    pub recommend_ns: u64,
    /// Task 3 — Flighting.
    pub flight_ns: u64,
    /// Task 4 — Validation.
    pub validate_ns: u64,
    /// Task 5 — Hint Generation / SIS publish.
    pub publish_ns: u64,
    /// Durable-state snapshot write at the day boundary (zero unless a
    /// [`crate::snapshot::SnapshotPolicy`] is installed and fired today).
    pub snapshot_ns: u64,
    /// Durable-state snapshot *restore* that brought the sim to this day
    /// (zero unless this day resumed from
    /// [`crate::ProductionSim::restore`]). A restore happens between days,
    /// so the day resuming from it carries the cost — the read-side mirror
    /// of `snapshot_ns`.
    pub restore_ns: u64,
}

impl StageTimings {
    /// Total instrumented nanoseconds of the day.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.view_build_ns
            + self.counterfactual_ns
            + self.feature_gen_ns
            + self.recommend_ns
            + self.flight_ns
            + self.validate_ns
            + self.publish_ns
            + self.snapshot_ns
            + self.restore_ns
    }
}

/// Monitor configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Relative PNhours increase over the baseline that counts as a
    /// regression observation (production noise is ~5%, so 0.08 means a
    /// hinted run ran at least 8% hotter than the template's baseline).
    pub regression_margin: f64,
    /// Consecutive regression observations before the hint is reverted.
    pub revert_after: u32,
    /// Exponential-moving-average factor for the per-template baseline.
    pub baseline_alpha: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            regression_margin: 0.08,
            revert_after: 2,
            baseline_alpha: 0.3,
        }
    }
}

impl MonitorConfig {
    /// Stable fingerprint of the monitor's knobs — every field changes
    /// revert decisions, so all of them are part of the snapshot identity
    /// checked by `ProductionSim::import_state`.
    pub(crate) fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(24);
        for knob in [
            self.regression_margin.to_bits(),
            u64::from(self.revert_after),
            self.baseline_alpha.to_bits(),
        ] {
            bytes.extend_from_slice(&knob.to_le_bytes());
        }
        scope_ir::ids::stable_hash64(&bytes)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TemplateState {
    /// EMA of unhinted per-instance PNhours.
    baseline_pn: f64,
    observations: u32,
    /// Consecutive hinted runs above baseline * (1 + margin).
    consecutive_regressions: u32,
}

/// Rolling per-template regression monitor.
#[derive(Debug, Default)]
pub struct RegressionMonitor {
    config: MonitorConfig,
    templates: FxHashMap<TemplateId, TemplateState>,
    /// Templates reverted so far (diagnostics).
    pub reverted: Vec<TemplateId>,
}

impl RegressionMonitor {
    #[must_use]
    pub fn new(config: MonitorConfig) -> Self {
        Self {
            config,
            templates: FxHashMap::default(),
            reverted: Vec::new(),
        }
    }

    /// Ingest one day's view rows; returns the templates whose hints should
    /// be reverted (regressed `revert_after` times in a row).
    pub fn observe_day(&mut self, view: &[ViewRow]) -> Vec<TemplateId> {
        let mut reverts = Vec::new();
        for row in view {
            if !row.recurring {
                continue;
            }
            let state = self.templates.entry(row.template).or_default();
            if row.hint_applied {
                if state.observations == 0 {
                    // No baseline yet: cannot judge; skip.
                    continue;
                }
                let threshold = state.baseline_pn * (1.0 + self.config.regression_margin);
                if row.metrics.pn_hours > threshold {
                    state.consecutive_regressions += 1;
                    if state.consecutive_regressions >= self.config.revert_after
                        && !self.reverted.contains(&row.template)
                    {
                        reverts.push(row.template);
                        self.reverted.push(row.template);
                    }
                } else {
                    state.consecutive_regressions = 0;
                }
            } else {
                // Unhinted run: update the baseline EMA.
                let a = self.config.baseline_alpha;
                state.baseline_pn = if state.observations == 0 {
                    row.metrics.pn_hours
                } else {
                    (1.0 - a) * state.baseline_pn + a * row.metrics.pn_hours
                };
                state.observations += 1;
            }
        }
        reverts
    }

    /// The snapshot-identity fingerprint of this monitor's configuration.
    pub(crate) fn config_fingerprint(&self) -> u64 {
        self.config.fingerprint()
    }

    /// Export the monitor's durable state (snapshot path; `scope-state`).
    /// The config itself is construction-time and not exported — only its
    /// fingerprint travels, so a restore under different monitor tuning is
    /// a typed mismatch instead of a silent divergence.
    #[must_use]
    pub fn export_state(&self) -> scope_state::MonitorState {
        let mut templates: Vec<scope_state::MonitorTemplateState> = self
            .templates
            // qo-lint: allow(unordered-iter) — collected and sorted by template below
            .iter()
            .map(|(&template, s)| scope_state::MonitorTemplateState {
                template,
                baseline_pn: s.baseline_pn,
                observations: s.observations,
                consecutive_regressions: s.consecutive_regressions,
            })
            .collect();
        templates.sort_by_key(|t| t.template);
        scope_state::MonitorState {
            config_fingerprint: self.config.fingerprint(),
            templates,
            reverted: self.reverted.clone(),
        }
    }

    /// Replace the monitor's per-template baselines and revert log with a
    /// snapshot's ([`RegressionMonitor::export_state`] round-trip). The
    /// config is kept as constructed.
    pub fn restore_state(&mut self, state: &scope_state::MonitorState) {
        self.templates = state
            .templates
            // qo-lint: allow(unordered-iter) — snapshot Vec, sorted at export
            .iter()
            .map(|t| {
                (
                    t.template,
                    TemplateState {
                        baseline_pn: t.baseline_pn,
                        observations: t.observations,
                        consecutive_regressions: t.consecutive_regressions,
                    },
                )
            })
            .collect();
        self.reverted = state.reverted.clone();
    }

    /// Baseline PNhours currently tracked for a template, if any.
    #[must_use]
    pub fn baseline(&self, template: TemplateId) -> Option<f64> {
        self.templates
            .get(&template)
            .filter(|s| s.observations > 0)
            .map(|s| s.baseline_pn)
    }

    #[must_use]
    pub fn tracked_templates(&self) -> usize {
        self.templates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::logical::{LogicalOp, LogicalPlan, TableRef};
    use scope_ir::schema::{Column, DataType, Schema};
    use scope_ir::stats::DualStats;
    use scope_ir::JobId;
    use scope_runtime::ExecutionMetrics;
    use scope_workload::Table1Features;

    fn row(template: u64, pn: f64, hinted: bool) -> ViewRow {
        let mut plan = LogicalPlan::new();
        let t = TableRef::new(
            "t",
            Schema::new(vec![Column::new("a", DataType::Int)]),
            DualStats::exact(10.0),
        );
        let s = plan.add(LogicalOp::Extract { table: t }, vec![]);
        plan.add_output("o", s);
        let metrics = ExecutionMetrics {
            pn_hours: pn,
            ..Default::default()
        };
        ViewRow {
            job_id: JobId(template ^ (pn.to_bits() >> 7)),
            day: 0,
            template: TemplateId(template),
            recurring: true,
            job_seed: 1,
            features: Table1Features::aggregate("job_1", &plan, 1.0, &metrics),
            plan: std::sync::Arc::new(plan),
            signature: scope_opt::RuleBits::empty(),
            est_cost: 1.0,
            metrics,
            hint_applied: hinted,
        }
    }

    #[test]
    fn builds_baseline_from_unhinted_runs() {
        let mut m = RegressionMonitor::new(MonitorConfig::default());
        m.observe_day(&[row(1, 10.0, false), row(1, 12.0, false)]);
        let b = m.baseline(TemplateId(1)).unwrap();
        assert!(b > 10.0 && b < 12.0, "EMA between observations: {b}");
    }

    #[test]
    fn reverts_after_consecutive_regressions() {
        let mut m = RegressionMonitor::new(MonitorConfig {
            regression_margin: 0.10,
            revert_after: 2,
            baseline_alpha: 0.5,
        });
        m.observe_day(&[row(1, 10.0, false)]);
        // First regression observation: no revert yet.
        let r1 = m.observe_day(&[row(1, 12.0, true)]);
        assert!(r1.is_empty());
        // Second consecutive regression: revert.
        let r2 = m.observe_day(&[row(1, 12.5, true)]);
        assert_eq!(r2, vec![TemplateId(1)]);
        // Already reverted: not reported again.
        let r3 = m.observe_day(&[row(1, 13.0, true)]);
        assert!(r3.is_empty());
    }

    #[test]
    fn good_hinted_runs_reset_the_streak() {
        let mut m = RegressionMonitor::new(MonitorConfig {
            regression_margin: 0.10,
            revert_after: 2,
            baseline_alpha: 0.5,
        });
        m.observe_day(&[row(1, 10.0, false)]);
        assert!(m.observe_day(&[row(1, 12.0, true)]).is_empty());
        // An improved run breaks the streak...
        assert!(m.observe_day(&[row(1, 9.0, true)]).is_empty());
        // ...so the next regression starts over.
        assert!(m.observe_day(&[row(1, 12.0, true)]).is_empty());
    }

    #[test]
    fn hinted_runs_without_baseline_are_skipped() {
        let mut m = RegressionMonitor::new(MonitorConfig::default());
        let r = m.observe_day(&[row(7, 99.0, true)]);
        assert!(r.is_empty());
        assert!(m.baseline(TemplateId(7)).is_none());
    }
}

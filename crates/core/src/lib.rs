// The steering loop returns typed errors instead of panicking (qo-lint
// rule QL05); tests may unwrap freely. Deeper determinism rules live in
// `crates/qo-lint`.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! **QO-Advisor**: a steered query optimizer pipeline — the Rust
//! reproduction of *"Deploying a Steered Query Optimizer in Production at
//! Microsoft"* (SIGMOD 2022).
//!
//! QO-Advisor externalizes the query planner: a daily offline pipeline mines
//! production telemetry to find, per recurring job template, **one rule
//! flip** (enable/disable a single optimizer rule relative to the default
//! configuration) that steers the engine toward a better plan — safely:
//!
//! 1. **Feature Generation** — job spans (which rules *can* change the plan)
//!    and Table-1 features from the denormalized view;
//! 2. **Recommendation** — a contextual bandit picks a flip per job; reward
//!    is the clipped estimated-cost ratio after recompilation;
//! 3. **Flighting** — one representative job per template A/B-tests the flip
//!    in pre-production under a strict budget;
//! 4. **Validation** — a linear model predicts the PNhours delta from the
//!    flight's DataRead/DataWritten deltas; only predicted wins below the
//!    −0.1 safety threshold survive;
//! 5. **Hint Generation** — accepted (template, flip) pairs publish to SIS
//!    and steer every future occurrence of the template.
//!
//! The closed loop around the pipeline is [`ProductionSim`]: it runs the
//! synthetic workload through `scope_workload::build_view`, measures hinted
//! jobs counterfactually, and feeds the view to [`QoAdvisor::run_day`].
//! Every compile in that loop — production view building, counterfactuals,
//! and all five pipeline stages — goes through one shared
//! `scope_opt::CachingOptimizer` (whose delta compiler prices the
//! recommendation/flighting treatment slates incrementally against each
//! plan's frozen base memo), and every *execution* — production runs,
//! counterfactual default runs, flighting's baseline/treatment pairs —
//! through `scope_runtime::Executor`s behind one shared
//! `scope_runtime::ExecutionCache`; [`DailyReport::compile_cache`],
//! [`DailyReport::exec_cache`], and [`DailyReport::delta_compile`]
//! attribute the traffic, and [`DailyReport::timings`] carries per-stage
//! wall clocks. Throughput knobs (worker threads, the two result caches,
//! delta compilation, the workload's literal-redraw policy) are catalogued
//! in the [`config`] module's knob table; see `ARCHITECTURE.md` at the
//! repo root for the crate map and the determinism contract, and
//! `PERFORMANCE.md` for the measured trajectory.
//!
//! # Quick start
//!
//! ```no_run
//! use qo_advisor::{PipelineConfig, ProductionSim};
//! use scope_workload::WorkloadConfig;
//!
//! let mut sim = ProductionSim::new(WorkloadConfig::default(), PipelineConfig::default());
//! // paper: 14 days of random flights
//! sim.bootstrap_validation_model(3, 16).expect("generated workloads compile");
//! let outcomes = sim.run(7).expect("generated workloads compile");
//! for day in &outcomes {
//!     println!(
//!         "day {}: {} hints published, {} jobs steered",
//!         day.report.day,
//!         day.report.hints_published,
//!         day.comparisons.len()
//!     );
//! }
//! ```

pub mod baselines;
pub mod config;
pub mod features;
pub mod fleet;
pub mod monitoring;
pub mod pipeline;
pub mod simulation;
pub mod snapshot;
pub(crate) mod stages;
pub mod validation_model;

pub use baselines::{random_flip, Negi2021, Negi2021Outcome};
pub use config::{ParallelismConfig, PipelineConfig, RecommendStrategy};
pub use features::{
    action_slate, context_features, context_features_opt, job_features, reward_from_costs,
    span_block, FeatureCache, FeatureCacheConfig,
};
pub use fleet::{
    disjoint_workloads, overlapping_workloads, Fleet, FleetConfig, FleetDayOutcome, FleetMetrics,
    StreamConfig, Tenant,
};
pub use monitoring::{CacheCounters, ExecCounters, MonitorConfig, RegressionMonitor, StageTimings};
pub use pipeline::{DailyReport, PipelineError, QoAdvisor, Recommendation, SharedCaches};
pub use scope_opt::{
    BudgetCounters, BudgetOutcome, BudgetStats, CacheConfig, CacheStats, CompileBudget,
    DeltaConfig, DeltaStats,
};
pub use scope_runtime::{CachingExecutor, ExecCacheConfig, ExecStats, ExecutionCache, Executor};
pub use scope_state::{SnapshotError, SteeringSnapshot};
pub use scope_workload::ViewBuildError;
pub use simulation::{
    aggregate_impact, AggregateImpact, DayOutcome, HintedComparison, ProductionSim,
};
pub use snapshot::SnapshotPolicy;
pub use validation_model::{ValidationModel, ValidationSample};

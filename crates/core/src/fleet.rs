//! Fleet-scale multi-tenant serving: N steering loops over shared caches.
//!
//! The paper's economics are fleet-scale — QO-Advisor steers hundreds of
//! thousands of recurring jobs across many customers per day, and the payoff
//! comes from recurring templates shared *across* the fleet. This module is
//! the structural move from "simulator" to "service": a [`Fleet`] hosts N
//! [`Tenant`]s, each owning a full per-tenant steering loop (workload
//! identity, SIS namespace, Personalizer bandit state, explored set,
//! regression monitor, snapshot path), all layered over ONE process-wide
//! [`SharedCaches`] — compile results, execution results, delta base memos,
//! and span features are shared across tenants because every key is
//! tenant-invariant (see [`SharedCaches`] for the argument).
//!
//! # Streaming pipeline
//!
//! The per-day rayon scope is replaced with a channel-based streaming
//! pipeline:
//!
//! ```text
//!   producer ──▶ bounded mpsc job-arrival queue ──▶ worker pool
//!   (round-robins the     (backpressure: a full      (each worker pulls a
//!    fleet's arrivals)     queue blocks, never        JobInstance, times one
//!                          drops)                     build_view_row call)
//!                                   │
//!                                   ▼
//!            per-tenant reorder to job order (restores build_view's output
//!            byte-for-byte; `build_view_row` is pure per job)
//!                                   │
//!                                   ▼
//!            per-tenant SERIAL reduce: `ProductionSim::finish_day`
//!            (counterfactuals, monitoring, the five pipeline stages —
//!             rank/reward application stays in job order, preserving the
//!             determinism contract per tenant; tenants reduce in parallel
//!             because each touches only its own state)
//! ```
//!
//! Each worker stamps a **steering-latency clock** around its
//! `build_view_row` call (the per-job compile-with-hints + execute path — the
//! latency a tenant's job observes from the steering layer) into a
//! per-worker [`LatencyHistogram`]; histograms merge bucket-wise into the
//! day's and the fleet's lifetime distribution (p50/p95/p99), next to a
//! jobs/sec throughput counter ([`FleetMetrics`]).
//!
//! # Load shedding
//!
//! [`StreamConfig::compile_budget`] bounds the compile work each job may
//! spend: with a finite task budget, workers compile through a
//! [`BudgetedCompiler`] whose task-queue cascade stops exploring at the
//! budget and extracts the best plan found so far from the partial memo
//! (`scope_opt::tasks`) — the job still ships, on a possibly-worse plan.
//! Shed decisions are *static*, a pure function of `(plan, config, budget)`
//! — never of queue depth, worker count, or scheduling — so a saturated
//! queue degrades latency, not determinism. Truncation tallies surface per
//! tenant in `DailyReport.compile_budget`, per day in
//! [`FleetDayOutcome::shed`], and fleet-lifetime in [`FleetMetrics::shed`];
//! shed jobs still stamp the steering-latency histogram (their cheaper
//! compiles are exactly the latency relief the budget buys).
//!
//! # Determinism contract, per tenant
//!
//! A tenant inside a fleet — any worker count, any queue capacity, shared or
//! private caches — produces byte-identical `DailyReport`s (normalized:
//! cache/timing telemetry zeroed) and byte-identical SIS hint files to the
//! same workload run alone in a single-tenant [`ProductionSim`]. Two things
//! make this hold: `build_view_row` is pure per job (so arrival interleaving
//! cannot change any row), and everything stateful is applied in
//! [`ProductionSim::finish_day`]'s per-tenant serial reduce in job order.
//! A finite stream budget keeps the contract at any worker count (sheds are
//! per-job-pure); it changes outputs only relative to a *differently
//! budgeted* run. `tests/fleet_determinism.rs` pins the contract.

use crate::config::PipelineConfig;
use crate::monitoring::MonitorConfig;
use crate::pipeline::{PipelineError, SharedCaches};
use crate::simulation::{DayOutcome, ProductionSim};
use crate::snapshot::SnapshotPolicy;
use scope_ir::ids::tenant_workload_seed;
use scope_ir::LatencyHistogram;
use scope_opt::{
    BudgetCounters, BudgetStats, BudgetedCompiler, CacheStats, CachingOptimizer, CompileBudget,
    HintSet, RuleConfig,
};
use scope_runtime::{CachingExecutor, ExecStats};
use scope_workload::{build_view_row, JobInstance, ViewBuildError, ViewRow, WorkloadConfig};
use sis::{SisError, SisStore};
use std::path::Path;
use std::sync::{mpsc, Mutex};

/// Streaming-pipeline knobs: the worker pool and the arrival queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Worker threads pulling arrivals from the queue (`0` = one per
    /// available core). Purely a throughput knob: per-tenant outputs are
    /// byte-identical at any worker count.
    pub workers: usize,
    /// Bounded capacity of the job-arrival queue. A full queue blocks the
    /// producer (backpressure); arrivals are never dropped.
    pub queue_capacity: usize,
    /// Per-job anytime compile budget the workers apply to view-build
    /// compiles — the fleet's load-shedding knob. Unlimited (the default)
    /// keeps the streaming pipeline a pure throughput knob; a finite task
    /// budget trades plan quality for bounded per-job compile work: each
    /// worker compiles through a [`BudgetedCompiler`], which sheds
    /// exploration past the budget and extracts the best plan found so far
    /// from the partial memo. Shedding is *static and deterministic* — a
    /// budgeted compile is a pure function of `(plan, config, budget)`,
    /// never of queue depth or worker scheduling — so per-tenant outputs
    /// remain byte-identical at any worker count; only which plans ship
    /// changes with the budget itself. Shed tallies land per tenant in
    /// [`crate::pipeline::DailyReport::compile_budget`] and fleet-wide in
    /// [`FleetMetrics::shed`].
    pub compile_budget: CompileBudget,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 256,
            compile_budget: CompileBudget::unlimited(),
        }
    }
}

impl StreamConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// Fleet construction knobs.
#[derive(Debug, Clone, Default)]
pub struct FleetConfig {
    /// The per-tenant pipeline configuration (every tenant runs the same
    /// pipeline; per-tenant *state* is what differs).
    pub pipeline: PipelineConfig,
    /// Streaming-pipeline shape.
    pub stream: StreamConfig,
    /// `true` = all tenants share one process-wide [`SharedCaches`];
    /// `false` = every tenant builds private caches per the pipeline config
    /// (the isolated control regime the cross-tenant uplift benchmark
    /// compares against). Outputs are byte-identical either way.
    pub isolated_caches: bool,
}

/// One tenant: an id plus a full per-tenant steering loop. The sim owns
/// everything tenant-scoped — workload, SIS store, bandit state, explored
/// set, monitor, snapshot policy; only the result caches may be shared.
pub struct Tenant {
    pub id: u32,
    pub sim: ProductionSim,
}

/// Cumulative fleet-level serving metrics.
#[derive(Debug, Clone, Default)]
pub struct FleetMetrics {
    /// Per-job steering latency (one `build_view_row`: compile-with-hints +
    /// production execute) over the fleet's lifetime, in nanoseconds.
    pub steering_latency: LatencyHistogram,
    /// Jobs served over the fleet's lifetime.
    pub jobs: u64,
    /// Finite-budget compiles truncated by the anytime budget over the
    /// fleet's lifetime (view-build sheds under the stream budget plus each
    /// tenant's counterfactual sheds) — the load-shedding counter. Always 0
    /// on unlimited budgets; equals the sum of per-tenant
    /// `DailyReport.compile_budget.truncated` otherwise.
    pub shed: u64,
    /// Wall-clock nanoseconds spent inside [`Fleet::advance_day`].
    pub wall_ns: u64,
}

impl FleetMetrics {
    /// Lifetime fleet throughput: jobs served per wall-clock second of
    /// fleet-day processing (0 before any day ran).
    #[must_use]
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.jobs as f64 / (self.wall_ns as f64 / 1e9)
        }
    }
}

/// One fleet day: every tenant advanced by one day.
#[derive(Debug)]
pub struct FleetDayOutcome {
    /// Per-tenant outcomes, in tenant order.
    pub outcomes: Vec<DayOutcome>,
    /// Jobs served this day across the fleet.
    pub jobs: u64,
    /// Compiles truncated by the anytime budget this day across the fleet
    /// (the day's shed decisions; 0 on unlimited budgets).
    pub shed: u64,
    /// This day's steering-latency distribution (merged across workers).
    pub steering_latency: LatencyHistogram,
    /// Wall-clock nanoseconds of the whole fleet day (stream + reduce).
    pub wall_ns: u64,
}

/// A multi-tenant fleet of steering loops over shared process-wide caches.
pub struct Fleet {
    tenants: Vec<Tenant>,
    /// The process-wide caches every tenant shares (`None` when the fleet
    /// was built with `isolated_caches`, in which case each tenant owns
    /// private caches).
    shared: Option<SharedCaches>,
    stream: StreamConfig,
    metrics: FleetMetrics,
}

/// One queued job arrival, tagged with its tenant and its position in the
/// tenant's daily job order (the reorder key that restores `build_view`'s
/// output order after arbitrary worker scheduling).
struct Arrival {
    tenant: usize,
    index: usize,
    job: JobInstance,
}

/// The immutable per-tenant state a worker needs to build one view row.
struct TenantCtx<'a> {
    optimizer: &'a CachingOptimizer,
    executor: &'a CachingExecutor,
    hints: HintSet,
    default: RuleConfig,
    /// The tenant advisor's shed counters: workers record every
    /// finite-budget view-build compile here, so per-tenant `DailyReport`
    /// attribution and the fleet-wide [`FleetMetrics::shed`] total reconcile
    /// against one tally.
    counters: &'a BudgetCounters,
}

impl Fleet {
    /// A fleet with in-memory SIS stores, one tenant per workload.
    #[must_use]
    pub fn new(workloads: Vec<WorkloadConfig>, config: &FleetConfig) -> Self {
        let stores = workloads.iter().map(|_| SisStore::in_memory()).collect();
        Self::with_stores(workloads, stores, config)
    }

    /// A fleet with disk-backed SIS namespacing: tenant `t` publishes hint
    /// files into `root/tenant-NNN/` (its private namespace — hints never
    /// cross tenants; only result caches do).
    ///
    /// # Errors
    ///
    /// [`SisError`] when a tenant directory cannot be created or opened.
    pub fn with_sis_root(
        workloads: Vec<WorkloadConfig>,
        config: &FleetConfig,
        root: impl AsRef<Path>,
    ) -> Result<Self, SisError> {
        let stores = (0..workloads.len())
            .map(|t| SisStore::at_dir(root.as_ref().join(format!("tenant-{t:03}"))))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::with_stores(workloads, stores, config))
    }

    fn with_stores(
        workloads: Vec<WorkloadConfig>,
        stores: Vec<SisStore>,
        config: &FleetConfig,
    ) -> Self {
        let shared = (!config.isolated_caches).then(|| SharedCaches::from_config(&config.pipeline));
        let tenants = workloads
            .into_iter()
            .zip(stores)
            .enumerate()
            .map(|(t, (workload, sis))| {
                let sim = match &shared {
                    Some(caches) => ProductionSim::with_shared_caches(
                        workload,
                        config.pipeline.clone(),
                        sis,
                        caches,
                    ),
                    None => ProductionSim::with_sis_store(workload, config.pipeline.clone(), sis),
                };
                Tenant { id: t as u32, sim }
            })
            .collect();
        Self {
            tenants,
            shared,
            stream: config.stream,
            metrics: FleetMetrics::default(),
        }
    }

    /// Enable the §8 optimistic-monitoring loop on every tenant.
    #[must_use]
    pub fn with_monitoring(mut self, config: &MonitorConfig) -> Self {
        for tenant in &mut self.tenants {
            tenant.sim.monitor = Some(crate::monitoring::RegressionMonitor::new(config.clone()));
        }
        self
    }

    /// Install per-tenant snapshot policies: tenant `t` snapshots to
    /// `dir/tenant-NNN.qosnap` after every `every`-th of its days.
    pub fn set_snapshot_policies(&mut self, dir: impl AsRef<Path>, every: u32) {
        for tenant in &mut self.tenants {
            tenant.sim.set_snapshot_policy(Some(SnapshotPolicy {
                path: dir.as_ref().join(format!("tenant-{:03}.qosnap", tenant.id)),
                every,
            }));
        }
    }

    #[must_use]
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    pub fn tenants_mut(&mut self) -> &mut [Tenant] {
        &mut self.tenants
    }

    /// Lifetime fleet serving metrics (jobs/sec, latency distribution).
    #[must_use]
    pub fn metrics(&self) -> &FleetMetrics {
        &self.metrics
    }

    /// The process-wide shared caches, when this fleet shares them.
    #[must_use]
    pub fn shared_caches(&self) -> Option<&SharedCaches> {
        self.shared.as_ref()
    }

    /// Fleet-wide lifetime compile-cache counters: the shared cache's, or
    /// the sum over per-tenant private caches in the isolated regime — the
    /// like-for-like comparison behind the cross-tenant hit-uplift number.
    #[must_use]
    pub fn compile_stats(&self) -> CacheStats {
        match &self.shared {
            Some(caches) => caches.compile_stats(),
            None => self
                .tenants
                .iter()
                .map(|t| t.sim.advisor.cache_stats())
                .sum(),
        }
    }

    /// Fleet-wide lifetime span-feature-cache counters (see
    /// [`Fleet::compile_stats`]).
    #[must_use]
    pub fn feature_stats(&self) -> CacheStats {
        match &self.shared {
            Some(caches) => caches.feature_stats(),
            None => self
                .tenants
                .iter()
                .map(|t| t.sim.advisor.feature_stats())
                .sum(),
        }
    }

    /// Fleet-wide lifetime execution-cache counters (see
    /// [`Fleet::compile_stats`]).
    #[must_use]
    pub fn exec_stats(&self) -> ExecStats {
        match &self.shared {
            Some(caches) => caches.exec_stats(),
            None => self
                .tenants
                .iter()
                .map(|t| t.sim.advisor.exec_stats())
                .sum(),
        }
    }

    /// Advance every tenant by one day through the streaming pipeline:
    /// stream all tenants' arrivals through the shared worker pool, then
    /// run each tenant's serial reduce ([`ProductionSim::finish_day`]).
    /// Updates [`Fleet::metrics`].
    ///
    /// # Errors
    ///
    /// The lowest-`(tenant, job)` [`PipelineError::View`] when a default-path
    /// compile fails (deterministic regardless of worker scheduling), or any
    /// typed pipeline failure from a tenant's reduce.
    pub fn advance_day(&mut self) -> Result<FleetDayOutcome, PipelineError> {
        // qo-lint: allow(ambient-entropy) — fleet throughput telemetry only;
        // per-tenant outputs are compared with timings zeroed
        let t_day = std::time::Instant::now();
        let budget0: Vec<BudgetStats> = self
            .tenants
            .iter()
            .map(|t| t.sim.advisor.budget_stats())
            .collect();
        let (views, view_ns, steering_latency, jobs) = self.stream_views()?;
        let mut outcomes = self.reduce_days(views)?;
        let mut shed = 0u64;
        for ((tenant, (outcome, ns)), b0) in self
            .tenants
            .iter()
            .zip(outcomes.iter_mut().zip(view_ns))
            .zip(budget0)
        {
            // Attribute each tenant's summed per-job build time as its
            // view-build wall clock (the streaming analogue of
            // `advance_day`'s serial measurement; per-stage *cache* counters
            // stay zero for view_build here because shared-cache traffic
            // cannot be attributed to one tenant).
            outcome.report.timings.view_build_ns = ns;
            // Widen the reduce's shed attribution to the whole fleet day:
            // worker-side view-build sheds happen before `finish_day`'s
            // snapshot, and they belong to this tenant's day. Per-tenant
            // counters make this deterministic at any worker count.
            outcome.report.compile_budget = tenant.sim.advisor.budget_stats().since(&b0);
            shed += outcome.report.compile_budget.truncated;
        }
        let wall_ns = t_day.elapsed().as_nanos() as u64;
        self.metrics.steering_latency.merge(&steering_latency);
        self.metrics.jobs += jobs;
        self.metrics.shed += shed;
        self.metrics.wall_ns += wall_ns;
        Ok(FleetDayOutcome {
            outcomes,
            jobs,
            shed,
            steering_latency,
            wall_ns,
        })
    }

    /// Run `days` fleet days.
    ///
    /// # Errors
    ///
    /// The first day's [`PipelineError`].
    pub fn run(&mut self, days: u32) -> Result<Vec<FleetDayOutcome>, PipelineError> {
        (0..days).map(|_| self.advance_day()).collect()
    }

    /// Phase 1+2: stream every tenant's arrivals through the worker pool and
    /// reassemble per-tenant views in job order. Returns the views, each
    /// tenant's summed per-job build nanoseconds, the day's latency
    /// histogram, and the arrival count.
    #[allow(clippy::type_complexity)]
    fn stream_views(
        &self,
    ) -> Result<(Vec<Vec<ViewRow>>, Vec<u64>, LatencyHistogram, u64), PipelineError> {
        let contexts: Vec<TenantCtx> = self
            .tenants
            .iter()
            .map(|t| TenantCtx {
                optimizer: t.sim.advisor.caching_optimizer(),
                executor: t.sim.prod_executor(),
                hints: t.sim.advisor.sis().snapshot(),
                default: t.sim.advisor.optimizer().default_config(),
                counters: t.sim.advisor.budget_counters(),
            })
            .collect();
        let jobs_per_tenant: Vec<Vec<JobInstance>> = self
            .tenants
            .iter()
            .map(|t| t.sim.workload.jobs_for_day(t.sim.day))
            .collect();
        let total_jobs: usize = jobs_per_tenant.iter().map(Vec::len).sum();
        let workers = self.stream.effective_workers().clamp(1, total_jobs.max(1));

        let (tx, rx) = mpsc::sync_channel::<Arrival>(self.stream.queue_capacity.max(1));
        let rx = Mutex::new(rx);
        let jobs_ref = &jobs_per_tenant;
        let contexts_ref = &contexts;
        let rx_ref = &rx;
        let budget = self.stream.compile_budget;

        type WorkerRows = Vec<(usize, usize, u64, Result<ViewRow, ViewBuildError>)>;
        let worker_outputs: Result<Vec<(WorkerRows, LatencyHistogram)>, PipelineError> =
            std::thread::scope(|s| {
                let producer = s.spawn(move || {
                    // Round-robin the fleet's arrivals (an interleaved
                    // arrival stream, not tenant-by-tenant batches). A full
                    // queue blocks here — bounded backpressure.
                    let mut cursors = vec![0usize; jobs_ref.len()];
                    loop {
                        let mut sent_any = false;
                        for (tenant, list) in jobs_ref.iter().enumerate() {
                            let index = cursors[tenant];
                            if index < list.len() {
                                cursors[tenant] += 1;
                                sent_any = true;
                                let arrival = Arrival {
                                    tenant,
                                    index,
                                    job: list[index].clone(),
                                };
                                if tx.send(arrival).is_err() {
                                    return; // all workers gone (panic path)
                                }
                            }
                        }
                        if !sent_any {
                            break; // tx drops here; workers drain and stop
                        }
                    }
                });
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(move || {
                            let mut rows: WorkerRows = Vec::new();
                            let mut hist = LatencyHistogram::new();
                            loop {
                                let arrival = {
                                    // Poisoned only if a sibling worker
                                    // panicked; stop and let scope propagate.
                                    let Ok(guard) = rx_ref.lock() else { break };
                                    guard.recv()
                                };
                                let Ok(a) = arrival else { break };
                                let ctx = &contexts_ref[a.tenant];
                                // qo-lint: allow(ambient-entropy) — the per-job
                                // steering-latency clock; telemetry only
                                let t = std::time::Instant::now();
                                // Load shedding: a finite stream budget routes
                                // the job's compiles through a budgeted view
                                // of the tenant's optimizer (still a pure
                                // per-job function — see `StreamConfig`).
                                let row = if budget.is_unlimited() {
                                    build_view_row(
                                        &a.job,
                                        ctx.optimizer,
                                        &ctx.hints,
                                        &ctx.default,
                                        ctx.executor,
                                    )
                                } else {
                                    let shedding =
                                        BudgetedCompiler::new(ctx.optimizer, budget, ctx.counters);
                                    build_view_row(
                                        &a.job,
                                        &shedding,
                                        &ctx.hints,
                                        &ctx.default,
                                        ctx.executor,
                                    )
                                };
                                let ns = t.elapsed().as_nanos() as u64;
                                hist.record(ns);
                                rows.push((a.tenant, a.index, ns, row));
                            }
                            (rows, hist)
                        })
                    })
                    .collect();
                producer
                    .join()
                    .map_err(|_| PipelineError::Invariant("fleet producer panicked"))?;
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .map_err(|_| PipelineError::Invariant("fleet worker panicked"))
                    })
                    .collect()
            });
        let worker_outputs = worker_outputs?;

        // Reassemble: per tenant, rows back in job order — byte-identical to
        // a serial `build_view`. Errors resolve to the lowest (tenant, job)
        // so the failure surfaced is scheduling-independent.
        let mut slots: Vec<Vec<Option<ViewRow>>> = jobs_per_tenant
            .iter()
            .map(|list| list.iter().map(|_| None).collect())
            .collect();
        let mut view_ns: Vec<u64> = vec![0; jobs_per_tenant.len()];
        let mut first_error: Option<(usize, usize, ViewBuildError)> = None;
        let mut steering_latency = LatencyHistogram::new();
        for (rows, hist) in worker_outputs {
            steering_latency.merge(&hist);
            for (tenant, index, ns, row) in rows {
                view_ns[tenant] += ns;
                match row {
                    Ok(row) => slots[tenant][index] = Some(row),
                    Err(e) => {
                        let worse = first_error
                            .as_ref()
                            .is_none_or(|(t0, i0, _)| (tenant, index) < (*t0, *i0));
                        if worse {
                            first_error = Some((tenant, index, e));
                        }
                    }
                }
            }
        }
        if let Some((_, _, error)) = first_error {
            return Err(PipelineError::View(error));
        }
        let views: Vec<Vec<ViewRow>> = slots
            .into_iter()
            .map(|tenant_slots| {
                tenant_slots
                    .into_iter()
                    .map(|slot| {
                        slot.ok_or(PipelineError::Invariant("fleet worker dropped an arrival"))
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<_, _>>()?;
        Ok((views, view_ns, steering_latency, total_jobs as u64))
    }

    /// Phase 3: the per-tenant serial reduce, parallel *across* tenants
    /// (each chunk's thread mutates only its own tenants' state; the shared
    /// caches are `&self`-concurrent).
    fn reduce_days(&mut self, views: Vec<Vec<ViewRow>>) -> Result<Vec<DayOutcome>, PipelineError> {
        let tenant_count = self.tenants.len();
        let workers = self
            .stream
            .effective_workers()
            .clamp(1, tenant_count.max(1));
        let chunk_len = tenant_count.div_ceil(workers).max(1);
        let mut view_iter = views.into_iter();
        let mut chunks: Vec<(&mut [Tenant], Vec<Vec<ViewRow>>)> = Vec::new();
        for tenant_chunk in self.tenants.chunks_mut(chunk_len) {
            let chunk_views: Vec<_> = view_iter.by_ref().take(tenant_chunk.len()).collect();
            chunks.push((tenant_chunk, chunk_views));
        }
        let per_chunk: Vec<Vec<Result<DayOutcome, PipelineError>>> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|(tenant_chunk, chunk_views)| {
                    s.spawn(move || {
                        tenant_chunk
                            .iter_mut()
                            .zip(chunk_views)
                            .map(|(tenant, view)| tenant.sim.finish_day(view))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| PipelineError::Invariant("fleet reduce worker panicked"))
                })
                .collect::<Result<Vec<_>, PipelineError>>()
        })?;
        let mut outcomes = Vec::with_capacity(tenant_count);
        for chunk in per_chunk {
            for outcome in chunk {
                outcomes.push(outcome?);
            }
        }
        Ok(outcomes)
    }
}

/// N tenants running the *same* workload: full template overlap, identical
/// job and run seeds — the cross-tenant cache-sharing best case and the
/// subject of the uplift benchmark (the paper's fleet story: recurring
/// templates shared across customers).
#[must_use]
pub fn overlapping_workloads(n: usize, base: &WorkloadConfig) -> Vec<WorkloadConfig> {
    (0..n).map(|_| base.clone()).collect()
}

/// N tenants with disjoint per-tenant seed streams derived from `base.seed`
/// via [`tenant_workload_seed`]: unrelated templates, schedules, and
/// literals per tenant — the no-overlap regime where shared caches cannot
/// help across tenants (but still cannot hurt correctness).
#[must_use]
pub fn disjoint_workloads(n: usize, base: &WorkloadConfig) -> Vec<WorkloadConfig> {
    (0..n)
        .map(|t| WorkloadConfig {
            seed: tenant_workload_seed(base.seed, t as u32),
            ..base.clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workload() -> WorkloadConfig {
        WorkloadConfig {
            seed: 41,
            num_templates: 8,
            adhoc_per_day: 2,
            max_instances_per_day: 1,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn workload_helpers_shape_the_fleet() {
        let base = small_workload();
        let same = overlapping_workloads(4, &base);
        assert_eq!(same.len(), 4);
        assert!(same.iter().all(|w| w.seed == base.seed));
        let disjoint = disjoint_workloads(4, &base);
        let mut seeds: Vec<u64> = disjoint.iter().map(|w| w.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "disjoint tenants draw distinct seeds");
    }

    #[test]
    fn fleet_day_counts_jobs_and_latencies() {
        let mut fleet = Fleet::new(
            overlapping_workloads(3, &small_workload()),
            &FleetConfig::default(),
        );
        let day = fleet.advance_day().expect("generated workloads run clean");
        assert_eq!(day.outcomes.len(), 3);
        let per_tenant_jobs: u64 = day
            .outcomes
            .iter()
            .map(|o| o.report.jobs_total as u64)
            .sum();
        assert_eq!(day.jobs, per_tenant_jobs);
        assert_eq!(day.steering_latency.count(), day.jobs);
        assert!(day.steering_latency.p99() > 0);
        let m = fleet.metrics();
        assert_eq!(m.jobs, day.jobs);
        assert!(m.jobs_per_sec() > 0.0);
        // Every tenant carries its streamed view-build attribution.
        for outcome in &day.outcomes {
            assert!(outcome.report.timings.view_build_ns > 0);
        }
    }

    #[test]
    fn shared_caches_serve_overlapping_tenants_cross_tenant() {
        let workloads = overlapping_workloads(4, &small_workload());
        let mut shared = Fleet::new(workloads.clone(), &FleetConfig::default());
        let mut isolated = Fleet::new(
            workloads,
            &FleetConfig {
                isolated_caches: true,
                ..FleetConfig::default()
            },
        );
        shared.advance_day().expect("shared fleet day");
        isolated.advance_day().expect("isolated fleet day");
        let s = shared.compile_stats();
        let i = isolated.compile_stats();
        assert_eq!(
            s.lookups(),
            i.lookups(),
            "same traffic either way — sharing changes hits, not lookups"
        );
        assert!(
            s.hits > i.hits,
            "identical tenants must hit each other's compile entries: \
             shared {s:?} vs isolated {i:?}"
        );
        assert!(shared.shared_caches().is_some());
        assert!(isolated.shared_caches().is_none());
    }

    #[test]
    fn stream_shape_is_a_pure_throughput_knob() {
        // Tiny queue + 1 worker vs big queue + 8 workers: identical reports.
        let run = |workers: usize, queue: usize| {
            let mut fleet = Fleet::new(
                overlapping_workloads(2, &small_workload()),
                &FleetConfig {
                    stream: StreamConfig {
                        workers,
                        queue_capacity: queue,
                        ..StreamConfig::default()
                    },
                    ..FleetConfig::default()
                },
            );
            let days = fleet.run(2).expect("fleet days run clean");
            days.into_iter()
                .flat_map(|d| d.outcomes)
                .map(|o| {
                    let mut r = o.report;
                    r.compile_cache = Default::default();
                    r.exec_cache = Default::default();
                    r.delta_compile = Default::default();
                    r.feature_cache = Default::default();
                    r.timings = Default::default();
                    format!("{r:?}")
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1, 1), run(8, 512));
    }
}

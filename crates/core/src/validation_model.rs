//! The validation model (paper §4.3, §5.3): a linear regression that
//! predicts a job's PNhours delta from the DataRead and DataWritten deltas
//! observed in a *single* flighting run.
//!
//! Rationale: PNhours = CPU + I/O time; I/O time is bounded by bytes moved,
//! which are noise-free across runs, so bytes deltas are excellent denoised
//! predictors of the (noisy, single-sample) PNhours delta. The model is
//! trained on flighting results gathered over a multi-day window and applied
//! with a safety threshold (−0.1 in production).

use serde::{Deserialize, Serialize};

/// One training/evaluation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationSample {
    pub data_read_delta: f64,
    pub data_written_delta: f64,
    pub pn_delta: f64,
}

/// `pn_delta ≈ w0 + w1·data_read_delta + w2·data_written_delta`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationModel {
    pub intercept: f64,
    pub w_read: f64,
    pub w_written: f64,
}

impl ValidationModel {
    /// Closed-form ordinary least squares on the 3-parameter model. Returns
    /// `None` with fewer than 3 points or a singular design matrix.
    #[must_use]
    pub fn fit(samples: &[ValidationSample]) -> Option<ValidationModel> {
        if samples.len() < 3 {
            return None;
        }
        // Normal equations: X^T X w = X^T y with X = [1, dr, dw].
        let mut xtx = [[0.0f64; 3]; 3];
        let mut xty = [0.0f64; 3];
        for s in samples {
            let x = [1.0, s.data_read_delta, s.data_written_delta];
            for i in 0..3 {
                for j in 0..3 {
                    xtx[i][j] += x[i] * x[j];
                }
                xty[i] += x[i] * s.pn_delta;
            }
        }
        let w = solve3(xtx, xty)?;
        Some(ValidationModel {
            intercept: w[0],
            w_read: w[1],
            w_written: w[2],
        })
    }

    /// Predicted PNhours delta for a flighted job.
    #[must_use]
    pub fn predict(&self, data_read_delta: f64, data_written_delta: f64) -> f64 {
        self.intercept + self.w_read * data_read_delta + self.w_written * data_written_delta
    }

    /// Accept the flip only when the predicted delta clears the safety
    /// threshold (paper: `delta < −0.1` ⇒ at least 10% predicted reduction).
    #[must_use]
    pub fn accepts(&self, data_read_delta: f64, data_written_delta: f64, threshold: f64) -> bool {
        self.predict(data_read_delta, data_written_delta) < threshold
    }

    /// Coefficient of determination on a held-out set.
    #[must_use]
    pub fn r_squared(&self, samples: &[ValidationSample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mean = samples.iter().map(|s| s.pn_delta).sum::<f64>() / samples.len() as f64;
        let ss_tot: f64 = samples.iter().map(|s| (s.pn_delta - mean).powi(2)).sum();
        let ss_res: f64 = samples
            .iter()
            .map(|s| {
                let p = self.predict(s.data_read_delta, s.data_written_delta);
                (s.pn_delta - p).powi(2)
            })
            .sum();
        if ss_tot <= 0.0 {
            return 0.0;
        }
        1.0 - ss_res / ss_tot
    }
}

/// Solve a 3×3 linear system by Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // index math mirrors the textbook algorithm
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..3 {
            let f = a[row][col] / a[col][col];
            for k in col..3 {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for col in (0..3).rev() {
        let mut sum = b[col];
        for k in (col + 1)..3 {
            sum -= a[col][k] * x[k];
        }
        x[col] = sum / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(n: usize, noise: f64) -> Vec<ValidationSample> {
        // Ground truth: pn = 0.02 + 0.6*dr + 0.3*dw (+ deterministic noise).
        (0..n)
            .map(|i| {
                let dr = -0.5 + (i as f64 / n as f64);
                let dw = -0.3 + ((i * 7 % n) as f64 / n as f64) * 0.6;
                let e = noise * (((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5);
                ValidationSample {
                    data_read_delta: dr,
                    data_written_delta: dw,
                    pn_delta: 0.02 + 0.6 * dr + 0.3 * dw + e,
                }
            })
            .collect()
    }

    #[test]
    fn recovers_noiseless_coefficients() {
        let m = ValidationModel::fit(&synth(100, 0.0)).unwrap();
        assert!((m.intercept - 0.02).abs() < 1e-9);
        assert!((m.w_read - 0.6).abs() < 1e-9);
        assert!((m.w_written - 0.3).abs() < 1e-9);
        assert!(m.r_squared(&synth(50, 0.0)) > 0.9999);
    }

    #[test]
    fn tolerates_label_noise() {
        let m = ValidationModel::fit(&synth(400, 0.1)).unwrap();
        assert!((m.w_read - 0.6).abs() < 0.05, "w_read {}", m.w_read);
        assert!(
            (m.w_written - 0.3).abs() < 0.08,
            "w_written {}",
            m.w_written
        );
        assert!(m.r_squared(&synth(100, 0.0)) > 0.95);
    }

    #[test]
    fn threshold_gates_acceptance() {
        let m = ValidationModel {
            intercept: 0.0,
            w_read: 1.0,
            w_written: 0.0,
        };
        assert!(m.accepts(-0.2, 0.0, -0.1), "predicted -0.2 clears -0.1");
        assert!(!m.accepts(-0.05, 0.0, -0.1), "predicted -0.05 does not");
        assert!(!m.accepts(0.3, 0.0, -0.1), "regressions never accepted");
    }

    #[test]
    fn degenerate_inputs_fail_gracefully() {
        assert!(ValidationModel::fit(&[]).is_none());
        // Collinear inputs (all identical) -> singular.
        let same = vec![
            ValidationSample {
                data_read_delta: 0.1,
                data_written_delta: 0.1,
                pn_delta: 0.1
            };
            10
        ];
        assert!(ValidationModel::fit(&same).is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let m = ValidationModel {
            intercept: 0.01,
            w_read: 0.5,
            w_written: 0.2,
        };
        let s = serde_json::to_string(&m).unwrap();
        assert_eq!(serde_json::from_str::<ValidationModel>(&s).unwrap(), m);
    }
}

//! End-to-end production simulation: the SCOPE engine + workload + the
//! QO-Advisor pipeline advancing day by day, with counterfactual
//! (default-vs-steered) measurement of every hinted job — the machinery
//! behind Table 2 and Figures 10-12.

use crate::config::PipelineConfig;
use crate::monitoring::{MonitorConfig, RegressionMonitor};
use crate::pipeline::{DailyReport, PipelineError, QoAdvisor, SharedCaches};
use crate::validation_model::{ValidationModel, ValidationSample};
use flighting::FlightingService;
use scope_ir::ids::production_run_seed;
use scope_ir::{JobId, TemplateId};
use scope_opt::Optimizer;
use scope_runtime::{CachingExecutor, Cluster, ExecutionMetrics, Executor};
use scope_workload::{build_view, ViewBuildError, ViewRow, Workload, WorkloadConfig};

/// Default-vs-steered measurement of one hinted production job (both runs
/// share the run seed, isolating the plan effect under identical cluster
/// conditions).
#[derive(Debug, Clone, Copy)]
pub struct HintedComparison {
    pub template: TemplateId,
    pub job_id: JobId,
    pub default: ExecutionMetrics,
    pub steered: ExecutionMetrics,
}

impl HintedComparison {
    #[must_use]
    pub fn pn_delta(&self) -> f64 {
        self.steered.pn_delta(&self.default)
    }

    #[must_use]
    pub fn latency_delta(&self) -> f64 {
        self.steered.latency_delta(&self.default)
    }

    #[must_use]
    pub fn vertices_delta(&self) -> f64 {
        self.steered.vertices_delta(&self.default)
    }
}

/// One simulated production day.
#[derive(Debug, Clone)]
pub struct DayOutcome {
    pub report: DailyReport,
    /// Counterfactual measurements for every job that ran with a hint.
    pub comparisons: Vec<HintedComparison>,
    /// Hints reverted today by the optimistic-monitoring loop (§8).
    pub reverted: Vec<TemplateId>,
}

/// Table 2 aggregate: percentage reduction over the hint-matched jobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct AggregateImpact {
    pub jobs: usize,
    /// `Σ steered / Σ default − 1`, as percentages (negative = reduction).
    pub pn_hours_pct: f64,
    pub latency_pct: f64,
    pub vertices_pct: f64,
}

/// Aggregate Table-2 style totals over hinted-job comparisons.
#[must_use]
pub fn aggregate_impact(comparisons: &[HintedComparison]) -> AggregateImpact {
    if comparisons.is_empty() {
        return AggregateImpact::default();
    }
    let sum = |f: &dyn Fn(&HintedComparison) -> (f64, f64)| -> f64 {
        let (steered, default): (Vec<f64>, Vec<f64>) = comparisons.iter().map(f).unzip();
        let (s, d): (f64, f64) = (steered.iter().sum(), default.iter().sum());
        (s / d - 1.0) * 100.0
    };
    AggregateImpact {
        jobs: comparisons.len(),
        pn_hours_pct: sum(&|c| (c.steered.pn_hours, c.default.pn_hours)),
        latency_pct: sum(&|c| (c.steered.latency_sec, c.default.latency_sec)),
        vertices_pct: sum(&|c| (c.steered.vertices as f64, c.default.vertices as f64)),
    }
}

/// The full closed loop.
///
/// Every compile in the loop — production view building, the counterfactual
/// default runs, and all five pipeline stages — goes through the advisor's
/// [`scope_opt::CachingOptimizer`], so one compile-result cache spans the
/// whole simulation *and* every simulated day. Every *execution* likewise
/// goes through an [`Executor`] behind the advisor's shared
/// [`scope_runtime::ExecutionCache`]: the production cluster's executor
/// here, the pre-production one inside flighting. Under a sticky
/// [`scope_workload::LiteralPolicy`] these are the loop's main throughput
/// levers: a recurring script's production compile is a lookup on every day
/// after its first, and its production run reuses the memoized stage graph.
pub struct ProductionSim {
    pub workload: Workload,
    /// The production cluster behind the sim-wide execution cache.
    prod_exec: CachingExecutor,
    pub advisor: QoAdvisor,
    pub day: u32,
    /// §8 post-deployment monitor; hints that regress in production are
    /// automatically reverted when enabled.
    pub monitor: Option<RegressionMonitor>,
    /// Durable-state snapshots at day boundaries (see [`crate::snapshot`]);
    /// `None` = never snapshot.
    pub(crate) snapshot_policy: Option<crate::snapshot::SnapshotPolicy>,
    /// Wall-clock cost of a [`ProductionSim::restore`] awaiting attribution:
    /// billed into the *next* day's `report.timings.restore_ns` (a restore
    /// happens between days, so the day that resumes from it carries its
    /// cost — mirroring how `snapshot_ns` bills the write at the boundary
    /// that produced it).
    pub(crate) pending_restore_ns: u64,
}

impl ProductionSim {
    /// Build a simulation: production and pre-production clusters share the
    /// hardware model but see independent noise.
    #[must_use]
    pub fn new(workload: WorkloadConfig, pipeline: PipelineConfig) -> Self {
        Self::with_sis_store(workload, pipeline, sis::SisStore::in_memory())
    }

    /// Like [`ProductionSim::new`] but publishing hints into an explicit SIS
    /// store (e.g. a disk-backed one, so published hint files can be
    /// inspected). Builds private caches per the pipeline config.
    #[must_use]
    pub fn with_sis_store(
        workload: WorkloadConfig,
        pipeline: PipelineConfig,
        sis: sis::SisStore,
    ) -> Self {
        let caches = SharedCaches::from_config(&pipeline);
        Self::with_shared_caches(workload, pipeline, sis, &caches)
    }

    /// Like [`ProductionSim::with_sis_store`] but layering the advisor over
    /// caches owned elsewhere — the fleet path (`crate::fleet`), where every
    /// tenant's simulation shares one process-wide [`SharedCaches`]. The
    /// shared keys are tenant-invariant (see [`SharedCaches`]), so this sim's
    /// reports and published hints are byte-identical to a privately-cached
    /// one's.
    #[must_use]
    pub fn with_shared_caches(
        workload: WorkloadConfig,
        pipeline: PipelineConfig,
        sis: sis::SisStore,
        caches: &SharedCaches,
    ) -> Self {
        let optimizer = Optimizer::default();
        let flighting =
            FlightingService::new(Cluster::preproduction(), pipeline.flight_budget.clone());
        let advisor = QoAdvisor::with_shared_caches(optimizer, flighting, pipeline, sis, caches);
        let prod_exec = advisor.executor_for(Cluster::default());
        Self {
            workload: Workload::new(workload),
            prod_exec,
            advisor,
            day: 0,
            monitor: None,
            snapshot_policy: None,
            pending_restore_ns: 0,
        }
    }

    /// The production optimizer (the advisor's, *without* the cache).
    #[must_use]
    pub fn optimizer(&self) -> &Optimizer {
        self.advisor.optimizer()
    }

    /// The production cluster model.
    #[must_use]
    pub fn prod_cluster(&self) -> &Cluster {
        self.prod_exec.cluster()
    }

    /// The production executor (the production cluster *behind the sim-wide
    /// execution cache*). Hand this to [`build_view`] when driving the
    /// workload manually so production runs share the loop's cache.
    #[must_use]
    pub fn prod_executor(&self) -> &CachingExecutor {
        &self.prod_exec
    }

    /// Enable the §8 optimistic-monitoring loop: production telemetry of
    /// hinted jobs is compared against per-template baselines, and hints
    /// that regress repeatedly are reverted from SIS.
    #[must_use]
    pub fn with_monitoring(mut self, config: MonitorConfig) -> Self {
        self.monitor = Some(RegressionMonitor::new(config));
        self
    }

    /// The paper's validation-model bootstrap: flight random flips for
    /// `days` days, fit the regression, install it. Returns the samples, or
    /// the first day's [`ViewBuildError`] if a job refuses to compile on
    /// the default path (impossible for generated workloads; guards
    /// externally supplied plans).
    pub fn bootstrap_validation_model(
        &mut self,
        days: u32,
        flights_per_day: usize,
    ) -> Result<Vec<ValidationSample>, ViewBuildError> {
        let mut samples = Vec::new();
        for _ in 0..days {
            let jobs = self.workload.jobs_for_day(self.day);
            let hints = self.advisor.sis().snapshot();
            let view = build_view(
                &jobs,
                self.advisor.caching_optimizer(),
                &hints,
                &self.prod_exec,
            )?;
            samples.extend(self.advisor.gather_validation_samples(
                &view,
                self.day,
                flights_per_day,
            ));
            self.day += 1;
        }
        if let Some(model) = ValidationModel::fit(&samples) {
            self.advisor.set_validation_model(model);
        }
        Ok(samples)
    }

    /// Advance one production day: run the workload (with live hints), feed
    /// the view to the pipeline, and measure hinted jobs counterfactually.
    ///
    /// Production compiles go through the advisor's shared compile-result
    /// cache and production runs through its shared execution cache; the
    /// returned report's `compile_cache` / `exec_cache` attribute them to
    /// the `view_build` and `counterfactual` stages on top of the
    /// pipeline's own per-stage counters.
    ///
    /// Errors with [`PipelineError::View`] when a job's *default-path*
    /// compile fails while building the view — the one failure the loop has
    /// no safe fallback for (generated workloads never trigger it; it
    /// guards externally supplied plans) — and propagates any other typed
    /// pipeline failure ([`PipelineError::Publish`] /
    /// [`PipelineError::Invariant`]) from the daily run.
    pub fn advance_day(&mut self) -> Result<DayOutcome, PipelineError> {
        let jobs = self.workload.jobs_for_day(self.day);
        let hints = self.advisor.sis().snapshot();
        let s0 = self.advisor.cache_stats();
        let e0 = self.advisor.exec_stats();
        let d0 = self.advisor.delta_stats();
        // qo-lint: allow(ambient-entropy) — view-build wall-clock telemetry only;
        // timings are zeroed before every byte-identity comparison
        let t0 = std::time::Instant::now();
        let view = build_view(
            &jobs,
            self.advisor.caching_optimizer(),
            &hints,
            &self.prod_exec,
        )?;
        let view_build_ns = t0.elapsed().as_nanos() as u64;
        let s1 = self.advisor.cache_stats();
        let e1 = self.advisor.exec_stats();

        let mut outcome = self.finish_day(view)?;
        outcome.report.compile_cache.view_build = s1.since(&s0);
        outcome.report.exec_cache.view_build = e1.since(&e0);
        outcome.report.timings.view_build_ns = view_build_ns;
        // Widen finish_day's delta snapshot to the whole simulated day:
        // default-configuration compile misses during view building route
        // through the delta compiler's base builder (that is where most
        // `base_builds` land under fresh literals), and they belong to this
        // day's traffic.
        outcome.report.delta_compile = self.advisor.delta_stats().since(&d0);
        Ok(outcome)
    }

    /// Complete the current day from a prebuilt production view:
    /// counterfactual default runs, §8 monitoring, the five pipeline stages,
    /// the day increment, and any due snapshot.
    /// [`ProductionSim::advance_day`] is exactly [`build_view`] followed by
    /// this; the fleet's streaming pipeline (`crate::fleet`) builds views on
    /// a shared worker pool and feeds them here — the per-tenant *serial
    /// reduce* that keeps rank/reward application in job order and thereby
    /// preserves the determinism contract per tenant.
    ///
    /// `view` must be what [`build_view`] would have produced for this sim's
    /// current day — same jobs, same hint snapshot, same row order. The
    /// per-row computation is pure (see `scope_workload::build_view_row`),
    /// so a view assembled by any scheduling of workers, reordered back to
    /// job order, satisfies this byte-for-byte.
    ///
    /// # Errors
    ///
    /// Propagates any typed pipeline failure from the daily run, exactly as
    /// [`ProductionSim::advance_day`] does.
    pub fn finish_day(&mut self, view: Vec<ViewRow>) -> Result<DayOutcome, PipelineError> {
        let day = self.day;
        let s1 = self.advisor.cache_stats();
        let e1 = self.advisor.exec_stats();
        let d1 = self.advisor.delta_stats();
        let b1 = self.advisor.budget_stats();

        // Counterfactual default runs for hinted jobs (same run seed). The
        // compiles go through the advisor's compile-result cache and the
        // runs through its execution cache — same results as uncached,
        // shared with the pipeline. Under a finite `compile_budget` these
        // are the loop's sheddable compiles: measurement-only work that may
        // return a best-effort plan from a partially explored memo without
        // touching what the pipeline recommends or publishes.
        let default_config = self.advisor.optimizer().default_config();
        let t1 = std::time::Instant::now(); // qo-lint: allow(ambient-entropy) — telemetry
        let mut comparisons = Vec::new();
        for row in view.iter().filter(|r| r.hint_applied) {
            let Ok(default_compiled) = self.advisor.compile_shedding(&row.plan, &default_config)
            else {
                continue;
            };
            let run_seed = production_run_seed(day);
            let default_metrics =
                self.prod_exec
                    .execute(&default_compiled.physical, row.job_seed, run_seed);
            comparisons.push(HintedComparison {
                template: row.template,
                job_id: row.job_id,
                default: default_metrics,
                steered: row.metrics,
            });
        }
        let counterfactual_ns = t1.elapsed().as_nanos() as u64;
        let s2 = self.advisor.cache_stats();
        let e2 = self.advisor.exec_stats();

        // §8 monitoring: revert hints that regress in production.
        let mut reverted = Vec::new();
        if let Some(monitor) = &mut self.monitor {
            for template in monitor.observe_day(&view) {
                if self.advisor.revert_hint(template)? {
                    reverted.push(template);
                }
            }
        }

        let mut report = self.advisor.run_day(&view, day)?;
        report.compile_cache.counterfactual = s2.since(&s1);
        report.exec_cache.counterfactual = e2.since(&e1);
        report.delta_compile = self.advisor.delta_stats().since(&d1);
        report.compile_budget = self.advisor.budget_stats().since(&b1);
        report.timings.counterfactual_ns = counterfactual_ns;
        // A restore that brought this sim to the current day bills its wall
        // cost to the day that resumes from it.
        report.timings.restore_ns = std::mem::take(&mut self.pending_restore_ns);
        self.day += 1;
        report.timings.snapshot_ns = self.snapshot_if_due()?;
        Ok(DayOutcome {
            report,
            comparisons,
            reverted,
        })
    }

    /// Run `days` production days, returning all outcomes (or the first
    /// day's [`PipelineError`]).
    pub fn run(&mut self, days: u32) -> Result<Vec<DayOutcome>, PipelineError> {
        (0..days).map(|_| self.advance_day()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sim() -> ProductionSim {
        ProductionSim::new(
            WorkloadConfig {
                seed: 41,
                num_templates: 12,
                adhoc_per_day: 3,
                max_instances_per_day: 1,
                ..WorkloadConfig::default()
            },
            PipelineConfig::default(),
        )
    }

    #[test]
    fn bootstrap_gathers_samples_and_fits_model() {
        let mut sim = small_sim();
        let samples = sim.bootstrap_validation_model(3, 8).unwrap();
        assert!(!samples.is_empty(), "bootstrap collected flighting data");
        // With enough non-degenerate samples the model installs.
        if samples.len() >= 3 {
            assert!(sim.advisor.validation_model().is_some());
        }
        assert_eq!(sim.day, 3);
    }

    #[test]
    fn steering_loop_eventually_hints_jobs() {
        let mut sim = small_sim();
        sim.bootstrap_validation_model(3, 10).unwrap();
        let outcomes = sim.run(6).unwrap();
        let total_hints: usize = outcomes.iter().map(|o| o.report.hints_published).sum();
        let total_comparisons: usize = outcomes.iter().map(|o| o.comparisons.len()).sum();
        // Hints published on some day must eventually produce hinted runs.
        if total_hints > 0 {
            assert!(
                total_comparisons > 0,
                "published hints must match future recurring instances"
            );
        }
    }

    #[test]
    fn advance_day_attributes_production_compiles_to_their_stage() {
        let mut sim = small_sim();
        let out = sim.advance_day().unwrap();
        let cc = &out.report.compile_cache;
        assert!(
            cc.view_build.lookups() > 0,
            "view building must compile through the shared cache: {cc:?}"
        );
        assert!(
            cc.feature_gen.lookups() > 0,
            "span fixpoint compiles: {cc:?}"
        );
        assert_eq!(
            cc.total(),
            cc.view_build + cc.counterfactual + cc.feature_gen + cc.recommend + cc.flight,
            "per-stage counters partition the day's lookups"
        );
        // The view's default compiles seed the cache the span fixpoint then
        // hits: sharing one cache across sim and pipeline pays within a
        // single day, before any cross-day reuse.
        assert!(cc.feature_gen.hits > 0, "span default compiles hit: {cc:?}");
    }

    #[test]
    fn advance_day_attributes_executions_to_their_stage() {
        let mut sim = small_sim();
        let out = sim.advance_day().unwrap();
        let ec = &out.report.exec_cache;
        assert!(
            ec.view_build.lookups() > 0,
            "every production run must go through the shared execution \
             cache: {ec:?}"
        );
        assert_eq!(
            ec.view_build.lookups() as usize,
            out.report.jobs_total,
            "exactly one production execution per job"
        );
        assert_eq!(
            ec.total(),
            ec.view_build + ec.counterfactual + ec.flight,
            "per-stage counters partition the day's executions"
        );
        // Flighting executes on the pre-production executor behind the SAME
        // cache; its stage graphs come from the very plans the view just
        // executed (identical hardware epoch), so the flight stage reuses
        // them whenever anything flights.
        if out.report.flight_success > 0 {
            assert!(
                ec.flight.lookups() > 0,
                "successful flights must execute through the cache: {ec:?}"
            );
            assert!(
                ec.flight.graphs.hits > 0,
                "flight baselines reuse the view's memoized stage graphs: {ec:?}"
            );
        }
        // Lifetime counters cover the whole day (plus nothing else here).
        assert_eq!(sim.advisor.exec_stats(), ec.total());
    }

    #[test]
    fn exec_cache_disabled_reports_zero_telemetry_and_identical_outputs() {
        let mut on = small_sim();
        let mut off = ProductionSim::new(
            WorkloadConfig {
                seed: 41,
                num_templates: 12,
                adhoc_per_day: 3,
                max_instances_per_day: 1,
                ..WorkloadConfig::default()
            },
            PipelineConfig {
                exec_cache: scope_runtime::ExecCacheConfig::disabled(),
                ..PipelineConfig::default()
            },
        );
        let day_on = on.advance_day().unwrap();
        let day_off = off.advance_day().unwrap();
        assert_eq!(
            day_off.report.exec_cache,
            crate::monitoring::ExecCounters::default(),
            "a disabled execution cache must report zero telemetry"
        );
        assert_eq!(off.advisor.exec_stats(), Default::default());
        let mut normalized = day_on.report.clone();
        normalized.exec_cache = day_off.report.exec_cache;
        // Wall clocks legitimately differ between the two runs.
        normalized.timings = day_off.report.timings;
        assert_eq!(
            normalized, day_off.report,
            "the execution cache must never change what the loop decides"
        );
        assert_eq!(day_on.comparisons.len(), day_off.comparisons.len());
        for (a, b) in day_on.comparisons.iter().zip(day_off.comparisons.iter()) {
            assert_eq!(a.default, b.default, "counterfactual runs are identical");
            assert_eq!(a.steered, b.steered);
        }
    }

    #[test]
    fn aggregate_impact_totals_are_weighted() {
        let mk = |dpn: f64, spn: f64| HintedComparison {
            template: TemplateId(1),
            job_id: JobId(1),
            default: ExecutionMetrics {
                pn_hours: dpn,
                latency_sec: 100.0,
                vertices: 10,
                ..Default::default()
            },
            steered: ExecutionMetrics {
                pn_hours: spn,
                latency_sec: 90.0,
                vertices: 5,
                ..Default::default()
            },
        };
        let agg = aggregate_impact(&[mk(10.0, 9.0), mk(90.0, 72.0)]);
        // Total PN: 100 -> 81, i.e. -19%.
        assert!((agg.pn_hours_pct + 19.0).abs() < 1e-9);
        assert!((agg.latency_pct + 10.0).abs() < 1e-9);
        assert!((agg.vertices_pct + 50.0).abs() < 1e-9);
        assert_eq!(agg.jobs, 2);
    }

    #[test]
    fn empty_comparisons_are_safe() {
        let agg = aggregate_impact(&[]);
        assert_eq!(agg.jobs, 0);
        assert_eq!(agg.pn_hours_pct, 0.0);
    }
}

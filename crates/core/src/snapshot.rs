//! Durable steering state: snapshot and crash recovery.
//!
//! The paper's pipeline is a *daily offline* loop: all steering state lives
//! between days, so the natural durability point is the day boundary. This
//! module composes the per-crate state exports (`personalizer`, `sis`,
//! `flighting`, the §8 monitor, the advisor's own span cache and explored
//! set) into one [`SteeringSnapshot`] (`scope-state`'s versioned,
//! checksummed on-disk format) and applies one back.
//!
//! The contract, proven by `tests/snapshot_recovery.rs`: a process killed
//! at any day boundary and restored from its snapshot produces
//! **byte-identical** remaining [`crate::DailyReport`]s and SIS hint files
//! compared to the uninterrupted run. Restore is all-or-nothing — every
//! failable step runs before any live state mutates, so a corrupt,
//! truncated, or mismatched snapshot leaves the process exactly as it was
//! and surfaces a typed [`SnapshotError`].

use crate::config::{PipelineConfig, RecommendStrategy};
use crate::pipeline::{PipelineError, QoAdvisor};
use crate::simulation::ProductionSim;
use crate::validation_model::ValidationModel;
use personalizer::Personalizer;
use rustc_hash::{FxHashMap, FxHashSet};
use scope_ir::ids::stable_hash64;
use scope_state::{
    ExploredState, FlightingState, LiteralsId, MetaState, SisState, SnapshotError, SpanCacheEntry,
    SpanCacheState, SteeringSnapshot, ValidationState, WorkloadIdentity,
};
use scope_workload::{LiteralPolicy, WorkloadConfig};
use std::path::{Path, PathBuf};

/// When to write snapshots during [`ProductionSim::advance_day`]: after
/// every `every`-th completed day, to `path` (atomically overwritten each
/// time). `every = 1` snapshots at every day boundary — the crash-recovery
/// regime of `tests/snapshot_recovery.rs` and the `QO_SNAPSHOT` probe knob.
#[derive(Debug, Clone)]
pub struct SnapshotPolicy {
    pub path: PathBuf,
    pub every: u32,
}

impl SnapshotPolicy {
    /// Snapshot to `path` at every day boundary.
    #[must_use]
    pub fn every_day(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            every: 1,
        }
    }

    /// Does a snapshot fire once `completed_days` days have finished?
    #[must_use]
    pub fn fires_after(&self, completed_days: u32) -> bool {
        self.every > 0 && completed_days.is_multiple_of(self.every)
    }
}

fn literals_id(policy: LiteralPolicy) -> LiteralsId {
    match policy {
        LiteralPolicy::FreshEachRun => LiteralsId::Fresh,
        LiteralPolicy::Sticky { redraw_every_days } => LiteralsId::Sticky { redraw_every_days },
        LiteralPolicy::Mixed { sticky_fraction } => LiteralsId::Mixed { sticky_fraction },
    }
}

/// Stable fingerprint of every *output-affecting* pipeline knob, carried in
/// the snapshot's META section and checked on restore: a snapshot resumed
/// under different tuning (bandit hyper-parameters, flight budget,
/// validation threshold, …) would silently diverge from the uninterrupted
/// run, so a disagreement is a typed [`SnapshotError::Mismatch`].
///
/// Throughput-only knobs are deliberately **excluded** — `parallelism`, the
/// compile/exec/feature caches, delta compilation, and the bandit's
/// `batch_rank` scoring path never change steering outputs
/// (`tests/determinism.rs` proves it), so a snapshot legally restores
/// across them (`tests/snapshot_recovery.rs` exercises exactly that cross).
fn pipeline_fingerprint(config: &PipelineConfig) -> u64 {
    let mut bytes = Vec::with_capacity(128);
    bytes.push(match config.strategy {
        RecommendStrategy::ContextualBandit => 0u8,
        RecommendStrategy::UniformRandom => 1,
    });
    for knob in [
        config.cb.epsilon.to_bits(),
        config.cb.learning_rate.to_bits(),
        u64::from(config.cb.dim_bits),
        config.cb.max_importance.to_bits(),
        config.flight_budget.max_job_seconds.to_bits(),
        config.flight_budget.total_seconds.to_bits(),
        config.flight_budget.queue_size as u64,
        config.validation_threshold.to_bits(),
        config.reward_clip.to_bits(),
        config.span_max_iterations as u64,
        u64::from(config.est_cost_gate),
        config.max_flights_per_day as u64,
        config.max_span_for_triples as u64,
        u64::from(config.skip_explored),
        u64::from(config.span_features),
        // The anytime budget is output-affecting: it changes which plan the
        // counterfactual measurement path extracts (never the hints).
        u64::from(config.compile_budget.is_unlimited()),
        config.compile_budget.max_tasks.unwrap_or(0),
    ] {
        bytes.extend_from_slice(&knob.to_le_bytes());
    }
    stable_hash64(&bytes)
}

fn workload_identity(config: &WorkloadConfig) -> WorkloadIdentity {
    WorkloadIdentity {
        seed: config.seed,
        num_templates: config.num_templates as u64,
        adhoc_per_day: config.adhoc_per_day as u64,
        max_instances_per_day: config.max_instances_per_day,
        literals: literals_id(config.literals),
    }
}

impl QoAdvisor {
    /// Export the advisor's durable state as of completed day `day` (the
    /// next day the loop will run). Advisor-only snapshots carry no
    /// workload identity and no monitor section — [`ProductionSim`] adds
    /// both on top of this.
    #[must_use]
    pub fn export_state(&self, day: u32) -> SteeringSnapshot {
        let mut explored: Vec<_> = self.explored.iter().copied().collect();
        explored.sort_unstable();
        let mut entries: Vec<_> = self
            .span_cache
            .iter()
            .map(|(&template, entry)| {
                (
                    template,
                    entry.as_ref().map(|(result, default_cost)| SpanCacheEntry {
                        result: result.clone(),
                        default_cost: *default_cost,
                    }),
                )
            })
            .collect();
        entries.sort_by_key(|(template, _)| *template);
        SteeringSnapshot {
            meta: MetaState {
                day,
                config_fingerprint: pipeline_fingerprint(&self.config),
                workload: None,
            },
            sis: SisState {
                version: self.sis.version(),
                hints: self.sis.snapshot().hints(),
            },
            personalizer: self.personalizer.export_state(),
            flighting: FlightingState {
                batch_salt: self.flighting.batch_salt(),
            },
            validation: self.validation.map(|m| ValidationState {
                intercept: m.intercept,
                w_read: m.w_read,
                w_written: m.w_written,
            }),
            explored: ExploredState {
                templates: explored,
            },
            monitor: None,
            span_cache: Some(SpanCacheState { entries }),
        }
    }

    /// Apply a decoded snapshot to this advisor — the restart path, so the
    /// target is a freshly constructed process image (in particular the SIS
    /// store must be pristine: restoring into a store that has already
    /// published would rewind its monotonic version sequence). All fallible
    /// checks run before any live state mutates, so on error the advisor is
    /// untouched.
    ///
    /// The warm span-cache section is installed when present and **cleared**
    /// when absent: a dropped warm section resets, rather than retains,
    /// whatever this advisor had cached, so stale entries keyed by another
    /// run's `TemplateId`s can never leak into a restored process. Either
    /// way only cost changes, never outputs. The compile / execution /
    /// feature caches are *not* part of snapshots at all — they rebuild
    /// deterministically.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Mismatch`] when the snapshot's pipeline-config
    /// fingerprint or personalizer table shape disagrees with this
    /// advisor's configuration, its SIS hints fail validation, or this
    /// advisor's SIS store is not pristine.
    pub fn import_state(&mut self, snap: &SteeringSnapshot) -> Result<(), SnapshotError> {
        let ours = pipeline_fingerprint(&self.config);
        if snap.meta.config_fingerprint != ours {
            return Err(SnapshotError::Mismatch {
                what: format!(
                    "pipeline configuration differs: snapshot fingerprint \
                     {:#018x}, process {ours:#018x} (an output-affecting knob \
                     — bandit hyper-parameters, flight budget, validation \
                     threshold, … — changed between snapshot and restore)",
                    snap.meta.config_fingerprint
                ),
            });
        }
        let scratch = Personalizer::new(self.config.cb.clone());
        scratch
            .restore_state(snap.personalizer.clone())
            .map_err(|e| SnapshotError::Mismatch {
                what: format!("personalizer: {e}"),
            })?;
        self.sis
            .restore_state(snap.sis.version, snap.sis.hints.clone())
            .map_err(|e| SnapshotError::Mismatch {
                what: format!("sis: {e}"),
            })?;
        // Infallible from here on.
        self.personalizer = scratch;
        self.flighting.restore_batch_salt(snap.flighting.batch_salt);
        self.validation = snap.validation.map(|v| ValidationModel {
            intercept: v.intercept,
            w_read: v.w_read,
            w_written: v.w_written,
        });
        self.explored = snap
            .explored
            .templates
            .iter()
            .copied()
            .collect::<FxHashSet<_>>();
        if let Some(span_cache) = &snap.span_cache {
            self.span_cache = span_cache
                .entries
                .iter()
                .map(|(template, entry)| {
                    (
                        *template,
                        entry.as_ref().map(|e| (e.result.clone(), e.default_cost)),
                    )
                })
                .collect::<FxHashMap<_, _>>();
        } else {
            // A snapshot without the warm section resets the cache: entries
            // from before the restore belong to a run this snapshot knows
            // nothing about.
            self.span_cache.clear();
        }
        Ok(())
    }

    /// Write this advisor's snapshot (as of completed day `day`) to `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file cannot be written.
    pub fn snapshot(&self, path: impl AsRef<Path>, day: u32) -> Result<(), SnapshotError> {
        self.export_state(day).write_to(path)
    }

    /// Restore this advisor from a snapshot file, returning the day the
    /// snapshot was taken at (the next day to run).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: unreadable file, bad magic, unsupported
    /// version, truncation, checksum mismatch, corruption, or a
    /// configuration mismatch. On error the advisor is unchanged.
    pub fn restore(&mut self, path: impl AsRef<Path>) -> Result<u32, SnapshotError> {
        let snap = SteeringSnapshot::read_from(path)?;
        self.import_state(&snap)?;
        Ok(snap.meta.day)
    }
}

impl ProductionSim {
    /// Export the whole closed loop's durable state: the advisor's plus the
    /// day counter, the workload identity, and the §8 monitor when enabled.
    #[must_use]
    pub fn export_state(&self) -> SteeringSnapshot {
        let mut snap = self.advisor.export_state(self.day);
        snap.meta.workload = Some(workload_identity(&self.workload.config));
        snap.monitor = self.monitor.as_ref().map(|m| m.export_state());
        snap
    }

    /// Apply a decoded snapshot to this simulation. Beyond
    /// [`QoAdvisor::import_state`], the snapshot must have been taken from
    /// a loop with the *same workload configuration* (the workload is a
    /// pure function of configuration and day, so identity plus the day
    /// counter is exactly "resume the same run") and the same monitor
    /// setting — presence *and* tuning, via the monitor-config fingerprint.
    /// All-or-nothing like the advisor restore.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Mismatch`] on workload-identity, monitor-presence,
    /// or monitor-tuning disagreement, or any advisor-level mismatch
    /// (pipeline-config fingerprint included). On error the simulation is
    /// unchanged.
    pub fn import_state(&mut self, snap: &SteeringSnapshot) -> Result<(), SnapshotError> {
        let ours = workload_identity(&self.workload.config);
        match snap.meta.workload {
            Some(theirs) if theirs == ours => {}
            Some(theirs) => {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "workload identity differs: snapshot {theirs:?}, process {ours:?}"
                    ),
                })
            }
            None => {
                return Err(SnapshotError::Mismatch {
                    what: "snapshot carries no workload identity (advisor-only snapshot \
                           restored into a production simulation)"
                        .to_string(),
                })
            }
        }
        match (&self.monitor, &snap.monitor) {
            (Some(monitor), Some(state)) => {
                let ours = monitor.config_fingerprint();
                if state.config_fingerprint != ours {
                    return Err(SnapshotError::Mismatch {
                        what: format!(
                            "monitor configuration differs: snapshot fingerprint \
                             {:#018x}, process {ours:#018x} (margin, revert \
                             threshold, or EMA factor changed between snapshot \
                             and restore)",
                            state.config_fingerprint
                        ),
                    });
                }
            }
            (None, None) => {}
            (Some(_), None) => {
                return Err(SnapshotError::Mismatch {
                    what: "monitoring enabled but snapshot has no monitor state".to_string(),
                })
            }
            (None, Some(_)) => {
                return Err(SnapshotError::Mismatch {
                    what: "snapshot has monitor state but monitoring is disabled".to_string(),
                })
            }
        }
        self.advisor.import_state(snap)?;
        if let (Some(monitor), Some(state)) = (&mut self.monitor, &snap.monitor) {
            monitor.restore_state(state);
        }
        self.day = snap.meta.day;
        Ok(())
    }

    /// Write the loop's snapshot to `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file cannot be written.
    pub fn snapshot(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        self.export_state().write_to(path)
    }

    /// Restore the loop from a snapshot file; the next
    /// [`ProductionSim::advance_day`] continues from the snapshotted day.
    ///
    /// The wall-clock cost of the read + decode + import is billed into the
    /// *next* day's [`crate::StageTimings::restore_ns`] — the read-side
    /// mirror of how `snapshot_ns` bills the write at the boundary that
    /// produced it, so a resumed run's per-day timings account for the
    /// recovery cost instead of losing it to ad-hoc caller measurement.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]; on error the simulation is unchanged (and
    /// nothing is billed).
    pub fn restore(&mut self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        // qo-lint: allow(ambient-entropy) — restore-cost wall-clock telemetry
        // only; timings are zeroed before every byte-identity comparison
        let t = std::time::Instant::now();
        let snap = SteeringSnapshot::read_from(path)?;
        self.import_state(&snap)?;
        self.pending_restore_ns = t.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// Install (or clear) a snapshot policy:
    /// [`ProductionSim::advance_day`] then writes a snapshot at matching
    /// day boundaries and records the cost in
    /// [`crate::StageTimings::snapshot_ns`].
    pub fn set_snapshot_policy(&mut self, policy: Option<SnapshotPolicy>) {
        self.snapshot_policy = policy;
    }

    /// Builder form of [`ProductionSim::set_snapshot_policy`].
    #[must_use]
    pub fn with_snapshot_policy(mut self, policy: SnapshotPolicy) -> Self {
        self.snapshot_policy = Some(policy);
        self
    }

    /// The installed snapshot policy, if any.
    #[must_use]
    pub fn snapshot_policy(&self) -> Option<&SnapshotPolicy> {
        self.snapshot_policy.as_ref()
    }

    /// The day-boundary hook called by [`ProductionSim::advance_day`] after
    /// the day counter advances. Returns the wall-clock nanoseconds spent
    /// writing (zero when no snapshot fired).
    pub(crate) fn snapshot_if_due(&self) -> Result<u64, PipelineError> {
        let Some(policy) = &self.snapshot_policy else {
            return Ok(0);
        };
        if !policy.fires_after(self.day) {
            return Ok(0);
        }
        // qo-lint: allow(ambient-entropy) — snapshot-cost wall-clock telemetry
        // only; timings are zeroed before every byte-identity comparison
        let t = std::time::Instant::now();
        self.snapshot(&policy.path)?;
        Ok(t.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::monitoring::MonitorConfig;
    use scope_state::FORMAT_VERSION;

    fn small_sim() -> ProductionSim {
        ProductionSim::new(
            WorkloadConfig {
                seed: 41,
                num_templates: 12,
                adhoc_per_day: 3,
                max_instances_per_day: 1,
                ..WorkloadConfig::default()
            },
            PipelineConfig::default(),
        )
    }

    #[test]
    fn export_import_is_a_fixpoint() {
        let mut sim = small_sim();
        sim.bootstrap_validation_model(2, 8).unwrap();
        sim.run(2).unwrap();
        let snap = sim.export_state();
        let mut fresh = small_sim();
        fresh.import_state(&snap).unwrap();
        assert_eq!(fresh.day, sim.day);
        assert_eq!(fresh.export_state(), snap);
    }

    #[test]
    fn restore_rejects_different_workload() {
        let mut sim = small_sim();
        sim.run(1).unwrap();
        let snap = sim.export_state();
        let mut other = ProductionSim::new(
            WorkloadConfig {
                seed: 42,
                num_templates: 12,
                adhoc_per_day: 3,
                max_instances_per_day: 1,
                ..WorkloadConfig::default()
            },
            PipelineConfig::default(),
        );
        let before = other.export_state();
        let err = other.import_state(&snap).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err:?}");
        assert_eq!(
            other.export_state(),
            before,
            "failed restore mutates nothing"
        );
    }

    #[test]
    fn restore_rejects_monitor_presence_mismatch() {
        let mut monitored = small_sim().with_monitoring(MonitorConfig::default());
        monitored.run(1).unwrap();
        let snap = monitored.export_state();
        let mut plain = small_sim();
        assert!(matches!(
            plain.import_state(&snap).unwrap_err(),
            SnapshotError::Mismatch { .. }
        ));
        // And the other direction.
        let mut plain2 = small_sim();
        plain2.run(1).unwrap();
        let snap2 = plain2.export_state();
        let mut monitored2 = small_sim().with_monitoring(MonitorConfig::default());
        assert!(matches!(
            monitored2.import_state(&snap2).unwrap_err(),
            SnapshotError::Mismatch { .. }
        ));
    }

    #[test]
    fn restore_rejects_different_pipeline_tuning() {
        let mut sim = small_sim();
        sim.run(1).unwrap();
        let snap = sim.export_state();
        for tweaked in [
            PipelineConfig {
                cb: personalizer::CbConfig {
                    epsilon: 0.2,
                    ..personalizer::CbConfig::default()
                },
                ..PipelineConfig::default()
            },
            PipelineConfig {
                validation_threshold: -0.2,
                ..PipelineConfig::default()
            },
        ] {
            let mut other = ProductionSim::new(
                WorkloadConfig {
                    seed: 41,
                    num_templates: 12,
                    adhoc_per_day: 3,
                    max_instances_per_day: 1,
                    ..WorkloadConfig::default()
                },
                tweaked,
            );
            let before = other.export_state();
            let err = other.import_state(&snap).unwrap_err();
            assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err:?}");
            assert_eq!(
                other.export_state(),
                before,
                "failed restore mutates nothing"
            );
        }
    }

    #[test]
    fn throughput_knobs_are_not_part_of_the_snapshot_identity() {
        // The determinism contract says threads/caches never change
        // outputs, so a snapshot must restore across them (the recovery
        // harness relies on it; this pins the fingerprint's exclusions).
        let serial_cached = PipelineConfig::default();
        let threaded_uncached = PipelineConfig {
            parallelism: crate::config::ParallelismConfig::with_threads(8),
            cache: scope_opt::CacheConfig::disabled(),
            exec_cache: scope_runtime::ExecCacheConfig::disabled(),
            delta: scope_opt::DeltaConfig::disabled(),
            feature_cache: crate::features::FeatureCacheConfig::disabled(),
            cb: personalizer::CbConfig {
                batch_rank: false,
                ..personalizer::CbConfig::default()
            },
            ..PipelineConfig::default()
        };
        assert_eq!(
            pipeline_fingerprint(&serial_cached),
            pipeline_fingerprint(&threaded_uncached)
        );

        let mut sim = ProductionSim::new(
            WorkloadConfig {
                seed: 41,
                num_templates: 12,
                adhoc_per_day: 3,
                max_instances_per_day: 1,
                ..WorkloadConfig::default()
            },
            serial_cached,
        );
        sim.run(1).unwrap();
        let snap = sim.export_state();
        let mut other = ProductionSim::new(
            WorkloadConfig {
                seed: 41,
                num_templates: 12,
                adhoc_per_day: 3,
                max_instances_per_day: 1,
                ..WorkloadConfig::default()
            },
            threaded_uncached,
        );
        other.import_state(&snap).unwrap();
        assert_eq!(other.day, sim.day);
    }

    #[test]
    fn restore_rejects_different_monitor_tuning() {
        let mut monitored = small_sim().with_monitoring(MonitorConfig::default());
        monitored.run(1).unwrap();
        let snap = monitored.export_state();
        let mut retuned = small_sim().with_monitoring(MonitorConfig {
            regression_margin: 0.20,
            ..MonitorConfig::default()
        });
        let err = retuned.import_state(&snap).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err:?}");
    }

    #[test]
    fn dropped_warm_span_cache_resets_the_restored_cache() {
        // A restore whose snapshot carries no warm section must clear, not
        // retain, whatever the target advisor had cached: stale entries
        // keyed by another run's TemplateIds would survive otherwise.
        let mut sim = small_sim();
        sim.advisor
            .span_cache
            .insert(scope_ir::TemplateId(123), None);
        let mut snap = small_sim().export_state();
        snap.span_cache = None;
        sim.import_state(&snap).unwrap();
        assert!(sim.advisor.span_cache.is_empty());
    }

    #[test]
    fn restore_into_a_used_sis_store_is_rejected() {
        // Restore targets a fresh process image; a store that has already
        // published must not be rewound (its hint-file history on disk is
        // append-only).
        let mut sim = small_sim();
        let snap = sim.export_state();
        sim.advisor
            .sis
            .publish(sis::HintFile {
                version: 1,
                source_day: 0,
                hints: vec![],
            })
            .unwrap();
        let err = sim.import_state(&snap).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err:?}");
        assert_eq!(
            sim.advisor.sis.version(),
            1,
            "failed restore mutates nothing"
        );
    }

    #[test]
    fn advisor_only_snapshot_rejected_by_sim_restore() {
        let sim = small_sim();
        let snap = sim.advisor.export_state(0);
        assert!(snap.meta.workload.is_none());
        let mut other = small_sim();
        assert!(matches!(
            other.import_state(&snap).unwrap_err(),
            SnapshotError::Mismatch { .. }
        ));
    }

    #[test]
    fn snapshot_file_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!(
            "qo-snapshot-test-{}-{FORMAT_VERSION}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.qosnap");
        let mut sim = small_sim();
        sim.run(2).unwrap();
        sim.snapshot(&path).unwrap();
        let mut fresh = small_sim();
        fresh.restore(&path).unwrap();
        assert_eq!(fresh.export_state(), sim.export_state());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn policy_fires_on_multiples_only() {
        let p = SnapshotPolicy {
            path: PathBuf::from("x"),
            every: 3,
        };
        assert!(!p.fires_after(1));
        assert!(!p.fires_after(2));
        assert!(p.fires_after(3));
        assert!(p.fires_after(6));
        let off = SnapshotPolicy {
            path: PathBuf::from("x"),
            every: 0,
        };
        assert!(!off.fires_after(3));
    }
}

//! Pre-QO-Advisor baselines.
//!
//! * [`random_flip`] — the uniform-at-random single-flip policy compared
//!   against the CB in Table 3.
//! * [`Negi2021`] — the heuristic of the authors' earlier work (§2.1):
//!   sample many full configurations over the span, recompile all, keep the
//!   cost-improving ones, flight the top-k, deploy the best measured one.
//!   Its recompile/flight volume is what made the approach "expensive to
//!   maintain" (§2.2); the maintenance-cost comparison is an experiment in
//!   the bench crate.

use flighting::{FlightOutcome, FlightRequest, FlightingService};
use scope_ir::ids::{mix64, EXHAUSTIVE_SAMPLE_SALT, RANDOM_FLIP_SALT};
use scope_ir::logical::LogicalPlan;
use scope_ir::TemplateId;
use scope_opt::{Optimizer, RuleConfig, RuleFlip, SpanResult};
use scope_runtime::Executor;
use std::sync::Arc;

/// Uniform-at-random flip over the span. Deterministic in `seed`.
#[must_use]
pub fn random_flip(span: &SpanResult, default: &RuleConfig, seed: u64) -> Option<RuleFlip> {
    let rules: Vec<_> = span.span.iter().collect();
    if rules.is_empty() {
        return None;
    }
    let rule = rules[(mix64(seed, RANDOM_FLIP_SALT) as usize) % rules.len()];
    Some(RuleFlip {
        rule,
        enable: !default.enabled(rule),
    })
}

/// Configuration of the Negi-et-al.-2021 sampling heuristic.
#[derive(Debug, Clone)]
pub struct Negi2021 {
    /// Configurations sampled uniformly over the span (paper: 1000).
    pub samples: usize,
    /// Best-estimated configurations flighted (paper: 10).
    pub top_k: usize,
}

impl Default for Negi2021 {
    fn default() -> Self {
        Self {
            samples: 1000,
            top_k: 10,
        }
    }
}

/// Cost accounting of one Negi-2021 search (the "expensive to maintain"
/// evidence: recompiles and flights consumed per job).
#[derive(Debug, Clone, Default)]
pub struct Negi2021Outcome {
    /// The winning configuration, if any improved the measured runtime.
    pub chosen: Option<(RuleConfig, f64)>,
    pub recompiles: usize,
    pub recompile_failures: usize,
    pub improved_estimates: usize,
    pub flights: usize,
    pub flight_seconds: f64,
}

impl Negi2021 {
    /// Run the §2.1 heuristic for one job:
    /// 1. sample `samples` uniform configurations over the span;
    /// 2. recompile all, keep those with better estimated cost;
    /// 3. flight the `top_k` most promising against the default;
    /// 4. pick the flighted configuration with the best PNhours, if it
    ///    improves over the default.
    #[allow(clippy::too_many_arguments)] // one knob per §2.1 search input
    pub fn search<E: Executor>(
        &self,
        optimizer: &Optimizer,
        flighting: &mut FlightingService,
        executor: &E,
        template: TemplateId,
        plan: &Arc<LogicalPlan>,
        job_seed: u64,
        span: &SpanResult,
    ) -> Negi2021Outcome {
        let default = optimizer.default_config();
        let mut outcome = Negi2021Outcome::default();
        let Ok(base) = optimizer.compile(plan, &default) else {
            return outcome;
        };
        let rules: Vec<_> = span.span.iter().collect();
        if rules.is_empty() {
            return outcome;
        }

        // Step 1 + 2: uniform sampling over the span, recompile, keep
        // configurations with better estimates.
        let mut improving: Vec<(RuleConfig, f64)> = Vec::new();
        for i in 0..self.samples {
            let draw = mix64(job_seed, i as u64 | EXHAUSTIVE_SAMPLE_SALT);
            let flips: Vec<RuleFlip> = rules
                .iter()
                .enumerate()
                .filter(|(j, _)| (draw >> (j % 63)) & 1 == 1)
                .map(|(_, &rule)| RuleFlip {
                    rule,
                    enable: !default.enabled(rule),
                })
                .collect();
            if flips.is_empty() {
                continue;
            }
            let cfg = default.with_flips(&flips);
            outcome.recompiles += 1;
            match optimizer.compile(plan, &cfg) {
                Ok(c) if c.est_cost < base.est_cost => improving.push((cfg, c.est_cost)),
                Ok(_) => {}
                Err(_) => outcome.recompile_failures += 1,
            }
        }
        outcome.improved_estimates = improving.len();
        improving.sort_by(|a, b| a.1.total_cmp(&b.1));
        improving.dedup_by(|a, b| a.0 == b.0);
        improving.truncate(self.top_k);

        // Step 3: flight the survivors against the default.
        let requests: Vec<FlightRequest> = improving
            .iter()
            .map(|(cfg, _)| FlightRequest {
                template,
                plan: plan.clone(),
                job_seed,
                baseline: default,
                treatment: *cfg,
            })
            .collect();
        let (results, tracker) = flighting.flight_batch(optimizer, executor, &requests);
        outcome.flights = requests.len();
        outcome.flight_seconds = tracker.used_seconds;

        // Step 4: best measured runtime, if improving.
        let mut best: Option<(RuleConfig, f64)> = None;
        for ((cfg, _), res) in improving.iter().zip(results.iter()) {
            if let FlightOutcome::Success(m) = res {
                let delta = m.pn_delta();
                if delta < 0.0 && best.as_ref().is_none_or(|(_, d)| delta < *d) {
                    best = Some((*cfg, delta));
                }
            }
        }
        outcome.chosen = best;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flighting::FlightBudget;
    use scope_opt::compute_span;
    use scope_runtime::Cluster;
    use scope_workload::{Workload, WorkloadConfig};

    fn setup() -> (
        Optimizer,
        FlightingService,
        TemplateId,
        Arc<LogicalPlan>,
        u64,
        SpanResult,
    ) {
        let optimizer = Optimizer::default();
        let w = Workload::new(WorkloadConfig {
            seed: 77,
            num_templates: 6,
            adhoc_per_day: 0,
            max_instances_per_day: 1,
            ..WorkloadConfig::default()
        });
        let jobs = w.jobs_for_day(0);
        let job = jobs
            .iter()
            .find(|j| {
                compute_span(&optimizer, &j.plan, 6)
                    .map(|s| s.len() >= 3)
                    .unwrap_or(false)
            })
            .expect("some job has a span");
        let span = compute_span(&optimizer, &job.plan, 6).unwrap();
        let flighting = FlightingService::new(Cluster::default(), FlightBudget::default());
        (
            optimizer,
            flighting,
            job.template,
            job.plan.clone(),
            job.job_seed,
            span,
        )
    }

    #[test]
    fn random_flip_is_deterministic_and_in_span() {
        let (optimizer, _, _, _, _, span) = setup();
        let default = optimizer.default_config();
        let f1 = random_flip(&span, &default, 42).unwrap();
        let f2 = random_flip(&span, &default, 42).unwrap();
        assert_eq!(f1, f2);
        assert!(span.span.contains(f1.rule));
        assert_eq!(f1.enable, !default.enabled(f1.rule));
        // Different seeds eventually pick different rules.
        let distinct: std::collections::HashSet<u16> = (0..50)
            .filter_map(|s| random_flip(&span, &default, s))
            .map(|f| f.rule.0)
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn negi2021_accounts_maintenance_cost() {
        let (optimizer, mut flighting, template, plan, job_seed, span) = setup();
        let heuristic = Negi2021 {
            samples: 60,
            top_k: 4,
        };
        let out = heuristic.search(
            &optimizer,
            &mut flighting,
            &Cluster::default(),
            template,
            &plan,
            job_seed,
            &span,
        );
        assert!(
            out.recompiles > 40,
            "samples minus empty draws: {}",
            out.recompiles
        );
        assert!(out.flights <= 4);
        if let Some((cfg, delta)) = &out.chosen {
            assert!(*delta < 0.0, "chosen configs improve runtime");
            assert_ne!(
                *cfg,
                optimizer.default_config(),
                "a real configuration change"
            );
        }
    }

    #[test]
    fn negi2021_handles_empty_span() {
        let (optimizer, mut flighting, template, plan, job_seed, _) = setup();
        let empty = SpanResult {
            span: scope_opt::RuleBits::empty(),
            default_signature: scope_opt::RuleBits::empty(),
            iterations: 0,
            stopped_on_failure: false,
        };
        let out = Negi2021::default().search(
            &optimizer,
            &mut flighting,
            &Cluster::default(),
            template,
            &plan,
            job_seed,
            &empty,
        );
        assert_eq!(out.recompiles, 0);
        assert!(out.chosen.is_none());
    }
}

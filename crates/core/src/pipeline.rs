//! The QO-Advisor daily pipeline (paper §2.5, Figure 1): Feature Generation
//! → Recommendation (+ Recompilation) → Flighting → Validation → Hint
//! Generation, publishing (template, flip) pairs into SIS for the next
//! occurrences of each template.

use crate::config::{PipelineConfig, RecommendStrategy};
use crate::features::{action_slate, context_features_opt, reward_from_costs};
use crate::validation_model::{ValidationModel, ValidationSample};
use flighting::{FlightOutcome, FlightRequest, FlightingService};
use personalizer::{Personalizer, RankRequest};
use rustc_hash::FxHashMap;
use scope_ir::ids::mix64;
use scope_ir::logical::LogicalPlan;
use scope_ir::{JobId, TemplateId};
use scope_opt::{compute_span, Hint, Optimizer, RuleFlip, SpanResult};
use scope_workload::ViewRow;
use sis::{HintFile, SisStore};

/// One candidate produced by the Recommendation task.
#[derive(Debug, Clone)]
pub struct Recommendation {
    pub template: TemplateId,
    pub job_id: JobId,
    pub job_seed: u64,
    pub plan: LogicalPlan,
    pub flip: RuleFlip,
    pub default_cost: f64,
    pub new_cost: f64,
}

impl Recommendation {
    /// Estimated-cost delta (`new/old − 1`; negative = predicted win).
    #[must_use]
    pub fn cost_delta(&self) -> f64 {
        if self.default_cost <= 0.0 {
            return 0.0;
        }
        self.new_cost / self.default_cost - 1.0
    }
}

/// Telemetry of one pipeline day.
#[derive(Debug, Clone, Default)]
pub struct DailyReport {
    pub day: u32,
    pub jobs_total: usize,
    pub recurring_jobs: usize,
    pub jobs_with_span: usize,
    /// Table 3 counters over the acting-policy recompilations.
    pub lower_cost: usize,
    pub equal_cost: usize,
    pub higher_cost: usize,
    pub recompile_failures: usize,
    pub noop_chosen: usize,
    /// Jobs skipped because their template was already explored (§8
    /// stateful mode; 0 unless `skip_explored` is on).
    pub skipped_explored: usize,
    /// Σ default estimated cost over jobs entering Recommendation.
    pub total_default_cost: f64,
    /// Σ chosen-configuration estimated cost over the same jobs (failures
    /// and no-ops fall back to the default cost).
    pub total_chosen_cost: f64,
    pub flighted: usize,
    pub flight_success: usize,
    pub flight_timeout: usize,
    pub flight_failure: usize,
    pub flight_filtered: usize,
    pub flight_seconds_used: f64,
    pub validated: usize,
    pub hints_published: usize,
    pub sis_version: u32,
}

/// The QO-Advisor system: pipeline state that persists across days.
pub struct QoAdvisor {
    optimizer: Optimizer,
    flighting: FlightingService,
    personalizer: Personalizer,
    validation: Option<ValidationModel>,
    sis: SisStore,
    config: PipelineConfig,
    /// Spans are template-stable (catalog estimates do not drift), so cache
    /// them across days: the dominant cost of Feature Generation.
    span_cache: FxHashMap<TemplateId, Option<(SpanResult, f64)>>,
    /// Templates already flighted on a previous day (§8 stateful mode).
    explored: rustc_hash::FxHashSet<TemplateId>,
}

impl QoAdvisor {
    #[must_use]
    pub fn new(optimizer: Optimizer, flighting: FlightingService, config: PipelineConfig) -> Self {
        Self {
            optimizer,
            flighting,
            personalizer: Personalizer::new(config.cb.clone()),
            validation: None,
            sis: SisStore::in_memory(),
            config,
            span_cache: FxHashMap::default(),
            explored: rustc_hash::FxHashSet::default(),
        }
    }

    /// Revert a deployed hint (the §8 optimistic-monitoring loop): removes
    /// the template's entry and publishes a new SIS version. Returns false
    /// when no hint was live for the template.
    pub fn revert_hint(&mut self, template: TemplateId) -> bool {
        let mut hints = self.sis.snapshot();
        if hints.remove(template).is_none() {
            return false;
        }
        let version = self.sis.version() + 1;
        self.sis
            .publish(HintFile { version, source_day: u32::MAX, hints: hints.hints() })
            .expect("revert file always validates");
        // Allow the pipeline to re-explore the template later.
        self.explored.remove(&template);
        true
    }

    #[must_use]
    pub fn sis(&self) -> &SisStore {
        &self.sis
    }

    #[must_use]
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    #[must_use]
    pub fn validation_model(&self) -> Option<&ValidationModel> {
        self.validation.as_ref()
    }

    /// Install a trained validation model (paper: trained on 14 days of
    /// randomly flighted jobs before enabling the pipeline).
    pub fn set_validation_model(&mut self, model: ValidationModel) {
        self.validation = Some(model);
    }

    #[must_use]
    pub fn personalizer(&self) -> &Personalizer {
        &self.personalizer
    }

    /// Task 1 — Feature Generation: span (cached per template) plus the
    /// default-configuration estimated cost.
    fn span_for(&mut self, template: TemplateId, plan: &LogicalPlan) -> Option<(SpanResult, f64)> {
        let optimizer = &self.optimizer;
        let iterations = self.config.span_max_iterations;
        self.span_cache
            .entry(template)
            .or_insert_with(|| {
                let default_cost =
                    optimizer.compile(plan, &optimizer.default_config()).ok()?.est_cost;
                let span = compute_span(optimizer, plan, iterations).ok()?;
                if span.is_empty() {
                    return None;
                }
                Some((span, default_cost))
            })
            .clone()
    }

    /// Run the full pipeline over one day's view. Returns the day's report;
    /// side effects: CB model updates and a new SIS hint file version.
    pub fn run_day(&mut self, view: &[ViewRow], day: u32) -> DailyReport {
        let mut report = DailyReport { day, jobs_total: view.len(), ..DailyReport::default() };
        let default_config = self.optimizer.default_config();

        // ---- Task 1: Feature Generation -------------------------------
        let mut jobs: Vec<(&ViewRow, SpanResult, f64)> = Vec::new();
        for row in view {
            if !row.recurring {
                continue;
            }
            report.recurring_jobs += 1;
            if self.config.skip_explored && self.explored.contains(&row.template) {
                report.skipped_explored += 1;
                continue;
            }
            if let Some((span, default_cost)) = self.span_for(row.template, &row.plan) {
                jobs.push((row, span, default_cost));
            }
        }
        report.jobs_with_span = jobs.len();

        // ---- Task 2: Recommendation + Recompilation --------------------
        let mut candidates: Vec<Recommendation> = Vec::new();
        for (row, span, default_cost) in &jobs {
            let context = context_features_opt(
                &row.features,
                span,
                self.config.max_span_for_triples,
                self.config.span_features,
            );
            let (action_fvs, flips) = action_slate(span, self.optimizer.rules());

            // Off-policy training pass: uniform logging policy (§4.2). This
            // doubles the recompilations, "an acceptable trade-off".
            if self.config.strategy == RecommendStrategy::ContextualBandit {
                let resp = self.personalizer.rank(&RankRequest {
                    context: context.clone(),
                    actions: action_fvs.clone(),
                    seed: mix64(row.job_id.0, mix64(u64::from(day), 0x7821)),
                    log_uniform: true,
                });
                let reward = match flips[resp.decision.chosen] {
                    None => 1.0, // no-op: cost ratio is exactly 1
                    Some(flip) => {
                        let cfg = default_config.with_flip(flip);
                        let cost = self.optimizer.compile(&row.plan, &cfg).ok().map(|c| c.est_cost);
                        reward_from_costs(*default_cost, cost, self.config.reward_clip)
                    }
                };
                self.personalizer.reward(resp.event_id, reward);
            }

            // Acting pass.
            let chosen_flip = match self.config.strategy {
                RecommendStrategy::ContextualBandit => {
                    let resp = self.personalizer.rank(&RankRequest {
                        context,
                        actions: action_fvs,
                        seed: mix64(row.job_id.0, mix64(u64::from(day), 0xAC7)),
                        log_uniform: false,
                    });
                    let flip = flips[resp.decision.chosen];
                    // Reward the acting decision as well (its observed cost
                    // ratio is computed below); Azure Personalizer learns
                    // from every ranked event.
                    let event = resp.event_id;
                    match flip {
                        None => {
                            self.personalizer.reward(event, 1.0);
                            None
                        }
                        Some(f) => Some((f, Some(event))),
                    }
                }
                RecommendStrategy::UniformRandom => {
                    // Uniform baseline always flips a span rule (Table 3).
                    let idx = 1 + (mix64(row.job_id.0, mix64(u64::from(day), 0x9A9)) as usize
                        % span.len());
                    flips[idx].map(|f| (f, None))
                }
            };

            let Some((flip, event)) = chosen_flip else {
                report.noop_chosen += 1;
                report.total_default_cost += default_cost;
                report.total_chosen_cost += default_cost;
                continue;
            };

            let cfg = default_config.with_flip(flip);
            report.total_default_cost += default_cost;
            match self.optimizer.compile(&row.plan, &cfg) {
                Ok(compiled) => {
                    let new_cost = compiled.est_cost;
                    report.total_chosen_cost += new_cost;
                    if let Some(event) = event {
                        self.personalizer.reward(
                            event,
                            reward_from_costs(*default_cost, Some(new_cost), self.config.reward_clip),
                        );
                    }
                    let rel = (new_cost - default_cost) / default_cost.max(1e-12);
                    // Table-3 classification: deltas within 0.3% count as
                    // "equal" (SCOPE cost units are coarse at plan scale).
                    if rel < -0.003 {
                        report.lower_cost += 1;
                    } else if rel > 0.003 {
                        report.higher_cost += 1;
                    } else {
                        report.equal_cost += 1;
                    }
                    // Short-circuit when the estimate did not improve (§5.6).
                    if self.config.est_cost_gate && rel >= -1e-9 {
                        continue;
                    }
                    candidates.push(Recommendation {
                        template: row.template,
                        job_id: row.job_id,
                        job_seed: row.job_seed,
                        plan: row.plan.clone(),
                        flip,
                        default_cost: *default_cost,
                        new_cost,
                    });
                }
                Err(_) => {
                    report.recompile_failures += 1;
                    report.total_chosen_cost += default_cost;
                    if let Some(event) = event {
                        self.personalizer.reward(event, 0.0);
                    }
                }
            }
        }

        // ---- Task 3: Flighting -----------------------------------------
        // One representative job per template (picked deterministically),
        // most-promising estimated-cost deltas first (§4.3).
        let mut by_template: FxHashMap<TemplateId, Recommendation> = FxHashMap::default();
        for cand in candidates {
            by_template.entry(cand.template).or_insert(cand);
        }
        let mut reps: Vec<Recommendation> = by_template.into_values().collect();
        reps.sort_by(|a, b| {
            a.cost_delta().total_cmp(&b.cost_delta()).then(a.template.cmp(&b.template))
        });
        reps.truncate(self.config.max_flights_per_day);
        let requests: Vec<FlightRequest> = reps
            .iter()
            .map(|r| FlightRequest {
                template: r.template,
                plan: r.plan.clone(),
                job_seed: r.job_seed,
                baseline: default_config,
                treatment: default_config.with_flip(r.flip),
            })
            .collect();
        let (outcomes, tracker) = self.flighting.flight_batch(&self.optimizer, &requests);
        report.flighted = requests.len();
        report.flight_seconds_used = tracker.used_seconds;
        for r in &reps {
            self.explored.insert(r.template);
        }

        // ---- Task 4: Validation ----------------------------------------
        let mut accepted: Vec<Hint> = Vec::new();
        for (rec, outcome) in reps.iter().zip(outcomes.iter()) {
            match outcome {
                FlightOutcome::Success(m) => {
                    report.flight_success += 1;
                    let ok = match &self.validation {
                        Some(model) => model.accepts(
                            m.data_read_delta(),
                            m.data_written_delta(),
                            self.config.validation_threshold,
                        ),
                        // Without a trained model, fall back to the raw
                        // (noisy) single-flight measurement.
                        None => m.pn_delta() < self.config.validation_threshold,
                    };
                    if ok {
                        report.validated += 1;
                        accepted.push(Hint { template: rec.template, flip: rec.flip });
                    }
                }
                FlightOutcome::Timeout => report.flight_timeout += 1,
                FlightOutcome::Failure(_) => report.flight_failure += 1,
                FlightOutcome::Filtered => report.flight_filtered += 1,
            }
        }

        // ---- Task 5: Hint Generation ------------------------------------
        // Merge with the live hints: templates validated today replace any
        // previous entry; everything else persists.
        let mut merged = self.sis.snapshot();
        for h in &accepted {
            merged.insert(*h);
        }
        report.hints_published = accepted.len();
        if !accepted.is_empty() {
            let version = self.sis.version() + 1;
            self.sis
                .publish(HintFile { version, source_day: day, hints: merged.hints() })
                .expect("pipeline-generated hints always validate");
        }
        report.sis_version = self.sis.version();
        report
    }

    /// Gather validation-model training data by flighting random span flips
    /// (the paper's 14-day bootstrap, §4.3). Returns the collected samples.
    pub fn gather_validation_samples(
        &mut self,
        view: &[ViewRow],
        day: u32,
        max_flights: usize,
    ) -> Vec<ValidationSample> {
        let default_config = self.optimizer.default_config();
        let mut requests = Vec::new();
        for row in view.iter().filter(|r| r.recurring) {
            if requests.len() >= max_flights {
                break;
            }
            let Some((span, _)) = self.span_for(row.template, &row.plan) else { continue };
            let rules: Vec<_> = span.span.iter().collect();
            let pick = rules[mix64(row.job_id.0, u64::from(day)) as usize % rules.len()];
            let enable = !default_config.enabled(pick);
            requests.push(FlightRequest {
                template: row.template,
                plan: row.plan.clone(),
                job_seed: row.job_seed,
                baseline: default_config,
                treatment: default_config.with_flip(RuleFlip { rule: pick, enable }),
            });
        }
        let (outcomes, _) = self.flighting.flight_batch(&self.optimizer, &requests);
        outcomes
            .iter()
            .filter_map(|o| o.measurement())
            .map(|m| ValidationSample {
                data_read_delta: m.data_read_delta(),
                data_written_delta: m.data_written_delta(),
                pn_delta: m.pn_delta(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flighting::FlightBudget;
    use scope_runtime::Cluster;
    use scope_workload::{build_view, Workload, WorkloadConfig};

    fn advisor(strategy: RecommendStrategy) -> QoAdvisor {
        let optimizer = Optimizer::default();
        let flighting = FlightingService::new(Cluster::default(), FlightBudget::default());
        QoAdvisor::new(
            optimizer,
            flighting,
            PipelineConfig { strategy, ..PipelineConfig::default() },
        )
    }

    fn day_view(advisor: &QoAdvisor, seed: u64, day: u32) -> Vec<ViewRow> {
        let w = Workload::new(WorkloadConfig {
            seed,
            num_templates: 10,
            adhoc_per_day: 3,
            max_instances_per_day: 1,
        });
        build_view(
            &w.jobs_for_day(day),
            advisor.optimizer(),
            &advisor.sis().snapshot(),
            &Cluster::default(),
        )
    }

    #[test]
    fn run_day_produces_consistent_report() {
        let mut qa = advisor(RecommendStrategy::ContextualBandit);
        let view = day_view(&qa, 5, 0);
        let report = qa.run_day(&view, 0);
        assert_eq!(report.jobs_total, view.len());
        assert!(report.recurring_jobs > 0);
        assert!(report.jobs_with_span <= report.recurring_jobs);
        let outcomes = report.flight_success
            + report.flight_timeout
            + report.flight_failure
            + report.flight_filtered;
        assert_eq!(outcomes, report.flighted);
        assert!(report.validated <= report.flight_success);
        assert_eq!(report.hints_published, report.validated);
    }

    #[test]
    fn table3_counters_partition_recompiles() {
        let mut qa = advisor(RecommendStrategy::UniformRandom);
        let view = day_view(&qa, 5, 0);
        let report = qa.run_day(&view, 0);
        let total = report.lower_cost
            + report.equal_cost
            + report.higher_cost
            + report.recompile_failures
            + report.noop_chosen;
        assert_eq!(total, report.jobs_with_span, "every spanned job is classified");
    }

    #[test]
    fn hints_persist_and_accumulate_in_sis() {
        let mut qa = advisor(RecommendStrategy::ContextualBandit);
        let mut published = 0;
        for day in 0..4 {
            let view = day_view(&qa, 5, day);
            let report = qa.run_day(&view, day);
            published += report.hints_published;
        }
        assert!(qa.sis().len() <= published.max(1));
        if published > 0 {
            assert!(qa.sis().version() > 0);
        }
    }

    #[test]
    fn bandit_absorbs_training_events() {
        let mut qa = advisor(RecommendStrategy::ContextualBandit);
        let view = day_view(&qa, 5, 0);
        let report = qa.run_day(&view, 0);
        // Every spanned job trains the CB at least once (uniform pass).
        assert!(qa.personalizer().events() >= report.jobs_with_span as u64);
    }

    #[test]
    fn validation_model_gates_acceptance() {
        // A model that rejects everything -> no hints.
        let mut qa = advisor(RecommendStrategy::ContextualBandit);
        qa.set_validation_model(ValidationModel {
            intercept: 10.0, // predicted +1000% regression for everything
            w_read: 0.0,
            w_written: 0.0,
        });
        let view = day_view(&qa, 5, 0);
        let report = qa.run_day(&view, 0);
        assert_eq!(report.validated, 0);
        assert_eq!(report.hints_published, 0);
        assert_eq!(qa.sis().version(), 0, "nothing published");
    }

    #[test]
    fn gather_validation_samples_returns_deltas() {
        let mut qa = advisor(RecommendStrategy::ContextualBandit);
        let view = day_view(&qa, 6, 0);
        let samples = qa.gather_validation_samples(&view, 0, 10);
        for s in &samples {
            assert!(s.data_read_delta.is_finite());
            assert!(s.pn_delta.is_finite());
        }
    }

    #[test]
    fn span_cache_avoids_recomputation_across_days() {
        let mut qa = advisor(RecommendStrategy::ContextualBandit);
        let v0 = day_view(&qa, 5, 0);
        qa.run_day(&v0, 0);
        let cached = qa.span_cache.len();
        assert!(cached > 0);
        // Day 1 re-sees daily templates; the cache should not shrink and
        // mostly not grow for them.
        let v1 = day_view(&qa, 5, 1);
        qa.run_day(&v1, 1);
        assert!(qa.span_cache.len() >= cached);
    }
}

//! The QO-Advisor daily pipeline (paper §2.5, Figure 1): Feature Generation
//! → Recommendation (+ Recompilation) → Flighting → Validation → Hint
//! Generation, publishing (template, flip) pairs into SIS for the next
//! occurrences of each template.

use crate::config::PipelineConfig;
use crate::features::FeatureCache;
use crate::monitoring::{CacheCounters, ExecCounters};
use crate::stages;
use crate::validation_model::{ValidationModel, ValidationSample};
use flighting::{FlightRequest, FlightingService};
use personalizer::Personalizer;
use rustc_hash::FxHashMap;
use scope_ir::ids::mix64;
use scope_ir::logical::LogicalPlan;
use scope_ir::{JobId, TemplateId};
use scope_opt::{
    BudgetCounters, BudgetStats, CacheStats, CachingOptimizer, CompileCache, CompileError,
    Compiled, DeltaCompiler, Optimizer, RuleConfig, RuleFlip, SpanResult,
};
use scope_runtime::{CachingExecutor, Cluster, ExecStats, ExecutionCache};
use scope_workload::{ViewBuildError, ViewRow};
use sis::{HintFile, SisError, SisStore};
use std::fmt;
use std::sync::Arc;

/// A daily-pipeline failure. The steering path returns typed errors instead
/// of panicking (qo-lint rule QL05): a broken externally-supplied plan, a
/// rejected SIS publish, or a violated internal invariant all surface here
/// rather than taking the whole loop down with an `unwrap`.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A production job's *default-path* compile failed while building the
    /// view (steered compiles fall back instead of erroring).
    View(ViewBuildError),
    /// The SIS store rejected a hint-file publish.
    Publish(SisError),
    /// A durable-state snapshot write or restore failed (see
    /// [`crate::snapshot`]).
    Snapshot(scope_state::SnapshotError),
    /// An internal pipeline invariant broke — a bug, surfaced as an error.
    Invariant(&'static str),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::View(e) => write!(f, "view build failed: {e}"),
            PipelineError::Publish(e) => write!(f, "SIS publish rejected: {e}"),
            PipelineError::Snapshot(e) => write!(f, "snapshot failed: {e}"),
            PipelineError::Invariant(what) => write!(f, "pipeline invariant violated: {what}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::View(e) => Some(e),
            PipelineError::Publish(e) => Some(e),
            PipelineError::Snapshot(e) => Some(e),
            PipelineError::Invariant(_) => None,
        }
    }
}

impl From<ViewBuildError> for PipelineError {
    fn from(e: ViewBuildError) -> Self {
        PipelineError::View(e)
    }
}

impl From<SisError> for PipelineError {
    fn from(e: SisError) -> Self {
        PipelineError::Publish(e)
    }
}

impl From<scope_state::SnapshotError> for PipelineError {
    fn from(e: scope_state::SnapshotError) -> Self {
        PipelineError::Snapshot(e)
    }
}

/// The process-wide result caches a fleet of advisors can share.
///
/// Every key in every one of these caches is *tenant-invariant*: the compile
/// cache and the delta base memo key on the exact serialized-plan fingerprint
/// (literals and statistics included) plus the full rule-configuration bits;
/// the execution cache keys on the physical-plan fingerprint plus the exact
/// `(job_seed, run_seed, cluster epoch)`; the feature cache keys on the
/// content-derived template id plus span/slate fingerprints. None of them
/// embeds a tenant, workload, or store identity — so a hit returns exactly
/// what a tenant-local compute would have produced, whichever tenant paid
/// for the miss. That is what makes cross-tenant sharing a pure throughput
/// knob (see `crate::fleet` and the determinism tests pinning it).
#[derive(Clone, Default)]
pub struct SharedCaches {
    /// Compile-result cache (`None` = disabled for every holder).
    pub compile: Option<Arc<CompileCache>>,
    /// Delta-compilation base-memo cache.
    pub delta: Option<Arc<DeltaCompiler>>,
    /// Execution-result cache.
    pub exec: Option<Arc<ExecutionCache>>,
    /// Span-feature cache.
    pub feature: Option<Arc<FeatureCache>>,
}

impl SharedCaches {
    /// One set of caches sized per `config` — the same construction
    /// [`QoAdvisor::with_sis_store`] performs privately, hoisted out so N
    /// advisors can point at one instance.
    #[must_use]
    pub fn from_config(config: &PipelineConfig) -> Self {
        Self {
            compile: config
                .cache
                .enabled
                .then(|| Arc::new(CompileCache::new(config.cache))),
            delta: config
                .delta
                .enabled
                .then(|| Arc::new(DeltaCompiler::new(config.delta))),
            exec: ExecutionCache::shared(config.exec_cache),
            feature: config
                .feature_cache
                .enabled
                .then(|| Arc::new(FeatureCache::new(config.feature_cache))),
        }
    }

    /// Lifetime compile-cache counters (all-zero when disabled).
    #[must_use]
    pub fn compile_stats(&self) -> CacheStats {
        self.compile
            .as_deref()
            .map(CompileCache::stats)
            .unwrap_or_default()
    }

    /// Lifetime execution-cache counters (all-zero when disabled).
    #[must_use]
    pub fn exec_stats(&self) -> ExecStats {
        self.exec
            .as_deref()
            .map(ExecutionCache::stats)
            .unwrap_or_default()
    }

    /// Lifetime span-feature-cache counters (all-zero when disabled).
    #[must_use]
    pub fn feature_stats(&self) -> CacheStats {
        self.feature
            .as_deref()
            .map(FeatureCache::stats)
            .unwrap_or_default()
    }
}

impl fmt::Debug for SharedCaches {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedCaches")
            .field("compile", &self.compile.is_some())
            .field("delta", &self.delta.is_some())
            .field("exec", &self.exec.is_some())
            .field("feature", &self.feature.is_some())
            .finish()
    }
}

/// One candidate produced by the Recommendation task.
#[derive(Debug, Clone)]
pub struct Recommendation {
    pub template: TemplateId,
    pub job_id: JobId,
    pub job_seed: u64,
    pub plan: Arc<LogicalPlan>,
    pub flip: RuleFlip,
    pub default_cost: f64,
    pub new_cost: f64,
}

impl Recommendation {
    /// Estimated-cost delta (`new/old − 1`; negative = predicted win).
    #[must_use]
    pub fn cost_delta(&self) -> f64 {
        if self.default_cost <= 0.0 {
            return 0.0;
        }
        self.new_cost / self.default_cost - 1.0
    }
}

/// Telemetry of one pipeline day. `PartialEq` so reproducibility tests can
/// compare whole days across thread counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DailyReport {
    pub day: u32,
    pub jobs_total: usize,
    pub recurring_jobs: usize,
    pub jobs_with_span: usize,
    /// Table 3 counters over the acting-policy recompilations.
    pub lower_cost: usize,
    pub equal_cost: usize,
    pub higher_cost: usize,
    pub recompile_failures: usize,
    pub noop_chosen: usize,
    /// Jobs skipped because their template was already explored (§8
    /// stateful mode; 0 unless `skip_explored` is on).
    pub skipped_explored: usize,
    /// Σ default estimated cost over jobs entering Recommendation.
    pub total_default_cost: f64,
    /// Σ chosen-configuration estimated cost over the same jobs (failures
    /// and no-ops fall back to the default cost).
    pub total_chosen_cost: f64,
    pub flighted: usize,
    pub flight_success: usize,
    pub flight_timeout: usize,
    pub flight_failure: usize,
    pub flight_filtered: usize,
    pub flight_seconds_used: f64,
    pub validated: usize,
    pub hints_published: usize,
    pub sis_version: u32,
    /// Compile-result-cache telemetry (all-zero when the cache is off).
    /// Observability only — reproducibility comparisons zero this field.
    pub compile_cache: CacheCounters,
    /// Execution-result-cache telemetry, attributed the same way
    /// (all-zero when the cache is off; zeroed in reproducibility
    /// comparisons).
    pub exec_cache: ExecCounters,
    /// Delta-compilation telemetry: how the day's treatment slates were
    /// resolved (pruned / delta / full) and the base-memo cache traffic.
    /// All-zero when `QO_DELTA=off`; observability only, zeroed in
    /// reproducibility comparisons like the cache counters.
    pub delta_compile: scope_opt::DeltaStats,
    /// Span-feature-cache telemetry (all consumed by the Recommendation
    /// stage, so no per-stage breakdown; all-zero when
    /// `QO_FEATURE_CACHE=off`). Observability only — which lookup hits can
    /// depend on parallel insert order, so reproducibility comparisons zero
    /// this field like the other cache counters.
    pub feature_cache: CacheStats,
    /// Anytime-budget shed tallies of this day's *finite-budget* compiles
    /// (the counterfactual recompiles under
    /// [`crate::config::PipelineConfig::compile_budget`], plus a fleet's
    /// per-job view-build compiles under its stream budget). All-zero on the
    /// default unlimited budget. Unlike the cache counters this field is
    /// **deterministic** — a finite-budget compile is a pure function of
    /// `(plan, config, budget)`, never of thread count or cache state — so
    /// reproducibility comparisons do NOT zero it.
    pub compile_budget: BudgetStats,
    /// Per-stage wall-clock timings of this day (observability only;
    /// zeroed in reproducibility comparisons).
    pub timings: crate::monitoring::StageTimings,
}

/// The QO-Advisor system: pipeline state that persists across days. The
/// per-day work is decomposed into the five stage functions of
/// `crate::stages`, which access this state directly.
pub struct QoAdvisor {
    /// The optimizer behind the shared compile-result cache: every compile
    /// of the five stages (span fixpoint, recommendation recompiles,
    /// flighting's validation compiles) goes through this wrapper, so a
    /// `(plan, configuration)` pair is compiled at most once across stages
    /// *and* days.
    pub(crate) optimizer: CachingOptimizer,
    /// The sim-wide execution-result cache, mirroring the compile cache:
    /// every executor built via [`QoAdvisor::executor_for`] (the production
    /// cluster's, the pre-production one below) shares it, so a plan
    /// executed anywhere in the loop leaves its stage graph — and, on exact
    /// seed repeats, its whole result — behind for everyone. `None` when
    /// `config.exec_cache` is disabled.
    pub(crate) exec_cache: Option<Arc<ExecutionCache>>,
    /// The pre-production executor flighting runs on (the flighting
    /// service's cluster behind the shared execution cache).
    pub(crate) preprod_exec: CachingExecutor,
    pub(crate) flighting: FlightingService,
    pub(crate) personalizer: Personalizer,
    /// The span-feature cache behind Recommendation's context construction:
    /// the template-stable span co-occurrence block is built once per
    /// template and reused across jobs and days. `None` when
    /// `config.feature_cache` is disabled. Behind an `Arc` so a fleet of
    /// advisors can share one process-wide cache (the keys are
    /// tenant-invariant: content-derived template ids × span fingerprints).
    pub(crate) feature_cache: Option<Arc<FeatureCache>>,
    /// Shed tallies of every finite-budget compile issued on this advisor's
    /// behalf: the simulator's counterfactual recompiles
    /// ([`crate::ProductionSim::finish_day`]) and, in a fleet, the workers'
    /// per-job view-build compiles. Unlimited compiles are never recorded,
    /// so the counters stay all-zero — and the field invisible — on default
    /// configurations.
    pub(crate) budget_counters: BudgetCounters,
    pub(crate) validation: Option<ValidationModel>,
    pub(crate) sis: SisStore,
    pub(crate) config: PipelineConfig,
    /// Spans are template-stable (catalog estimates do not drift), so cache
    /// them across days: the dominant cost of Feature Generation.
    pub(crate) span_cache: FxHashMap<TemplateId, Option<(SpanResult, f64)>>,
    /// Templates already flighted on a previous day (§8 stateful mode).
    pub(crate) explored: rustc_hash::FxHashSet<TemplateId>,
    /// Worker pool for the parallel stages, built once from
    /// `config.parallelism` and reused by every per-day fan-out
    /// (`None` = serial).
    pub(crate) pool: Option<rayon::ThreadPool>,
}

impl QoAdvisor {
    #[must_use]
    pub fn new(optimizer: Optimizer, flighting: FlightingService, config: PipelineConfig) -> Self {
        Self::with_sis_store(optimizer, flighting, config, SisStore::in_memory())
    }

    /// Like [`QoAdvisor::new`] but publishing into an explicit SIS store
    /// (e.g. a disk-backed one, so published hint files can be inspected).
    /// Builds private caches per `config` — the single-tenant path.
    #[must_use]
    pub fn with_sis_store(
        optimizer: Optimizer,
        flighting: FlightingService,
        config: PipelineConfig,
        sis: SisStore,
    ) -> Self {
        let caches = SharedCaches::from_config(&config);
        Self::with_shared_caches(optimizer, flighting, config, sis, &caches)
    }

    /// Like [`QoAdvisor::with_sis_store`] but pointing every cache layer at
    /// caches owned elsewhere — the fleet path, where N advisors share one
    /// process-wide [`SharedCaches`]. Caches are throughput knobs, never
    /// behavior knobs (the PR 1 contract), and the shared keys are
    /// tenant-invariant (see [`SharedCaches`]), so an advisor built this way
    /// produces byte-identical reports and hint files to one built with
    /// private caches — or none at all.
    #[must_use]
    pub fn with_shared_caches(
        optimizer: Optimizer,
        flighting: FlightingService,
        config: PipelineConfig,
        sis: SisStore,
        caches: &SharedCaches,
    ) -> Self {
        let pool = stages::build_pool(config.parallelism);
        let exec_cache = caches.exec.clone();
        let preprod_exec = CachingExecutor::new(flighting.cluster().clone(), exec_cache.clone());
        Self {
            optimizer: CachingOptimizer::with_shared_caches(
                optimizer,
                caches.compile.clone(),
                caches.delta.clone(),
            ),
            exec_cache,
            preprod_exec,
            flighting,
            personalizer: Personalizer::new(config.cb.clone()),
            feature_cache: caches.feature.clone(),
            budget_counters: BudgetCounters::default(),
            validation: None,
            sis,
            config,
            span_cache: FxHashMap::default(),
            explored: rustc_hash::FxHashSet::default(),
            pool,
        }
    }

    /// Revert a deployed hint (the §8 optimistic-monitoring loop): removes
    /// the template's entry and publishes a new SIS version. Returns
    /// `Ok(false)` when no hint was live for the template.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Publish`] when the SIS store rejects the
    /// revert file (never for store-generated versions).
    pub fn revert_hint(&mut self, template: TemplateId) -> Result<bool, PipelineError> {
        let mut hints = self.sis.snapshot();
        if hints.remove(template).is_none() {
            return Ok(false);
        }
        let version = self.sis.version() + 1;
        self.sis.publish(HintFile {
            version,
            source_day: u32::MAX,
            hints: hints.hints(),
        })?;
        // Allow the pipeline to re-explore the template later.
        self.explored.remove(&template);
        Ok(true)
    }

    #[must_use]
    pub fn sis(&self) -> &SisStore {
        &self.sis
    }

    #[must_use]
    pub fn optimizer(&self) -> &Optimizer {
        self.optimizer.inner()
    }

    /// The optimizer *behind the shared compile-result cache*. Hand this to
    /// [`scope_workload::build_view`] (as [`crate::ProductionSim`] does) so
    /// production compiles, the span fixpoint, recommendation recompiles,
    /// and flighting validation all share one cache — with a sticky
    /// [`scope_workload::LiteralPolicy`], recurring production scripts then
    /// compile once per literal epoch instead of once per day.
    #[must_use]
    pub fn caching_optimizer(&self) -> &CachingOptimizer {
        &self.optimizer
    }

    /// Compile through the advisor's compile-result cache (when enabled).
    /// Byte-identical to `self.optimizer().compile(..)`, only faster on
    /// repeats — callers like the production simulator use this so their
    /// recompiles share the pipeline's cache.
    pub fn compile(
        &self,
        plan: &LogicalPlan,
        config: &RuleConfig,
    ) -> Result<Compiled, CompileError> {
        self.optimizer.compile(plan, config)
    }

    /// Compile under the pipeline's anytime budget
    /// ([`PipelineConfig::compile_budget`]), recording the shed outcome in
    /// this advisor's budget counters. On the default unlimited budget this
    /// is exactly [`QoAdvisor::compile`]; at a finite budget the compile
    /// bypasses the cache and delta compiler (truncated results are not
    /// cacheable under unbudgeted keys) and may return a best-effort plan
    /// extracted from a partially explored memo. The measurement path — the
    /// simulator's counterfactual recompiles — routes through here; the
    /// steering path never does, so hints stay budget-invariant.
    pub fn compile_shedding(
        &self,
        plan: &LogicalPlan,
        config: &RuleConfig,
    ) -> Result<Compiled, CompileError> {
        self.optimizer.compile_shedding(
            plan,
            config,
            self.config.compile_budget,
            &self.budget_counters,
        )
    }

    /// The shared shed counters behind [`QoAdvisor::compile_shedding`] (a
    /// fleet's view-build workers record their per-job budgeted compiles
    /// here too, so one advisor's tallies cover every finite-budget compile
    /// issued on its behalf).
    #[must_use]
    pub fn budget_counters(&self) -> &BudgetCounters {
        &self.budget_counters
    }

    /// Lifetime anytime-budget shed tallies (all-zero while every compile
    /// runs unlimited).
    #[must_use]
    pub fn budget_stats(&self) -> BudgetStats {
        self.budget_counters.stats()
    }

    /// Lifetime compile-cache counters (all-zero when the cache is off).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.optimizer.stats()
    }

    /// Lifetime delta-compilation counters (all-zero when `delta` is off).
    #[must_use]
    pub fn delta_stats(&self) -> scope_opt::DeltaStats {
        self.optimizer.delta_stats()
    }

    /// Build an executor over `cluster` that shares the advisor's
    /// execution-result cache (a pass-through when `exec_cache` is
    /// disabled). [`crate::ProductionSim`] uses this for the production
    /// cluster, so production runs, counterfactuals, and flighting all sit
    /// behind ONE cache — the execution-side mirror of
    /// [`QoAdvisor::caching_optimizer`].
    #[must_use]
    pub fn executor_for(&self, cluster: Cluster) -> CachingExecutor {
        CachingExecutor::new(cluster, self.exec_cache.clone())
    }

    /// The pre-production executor flighting runs on (behind the shared
    /// execution cache).
    #[must_use]
    pub fn preprod_executor(&self) -> &CachingExecutor {
        &self.preprod_exec
    }

    /// Lifetime execution-cache counters (all-zero when the cache is off).
    #[must_use]
    pub fn exec_stats(&self) -> ExecStats {
        self.exec_cache
            .as_ref()
            .map(|cache| cache.stats())
            .unwrap_or_default()
    }

    /// Lifetime span-feature-cache counters (all-zero when the cache is
    /// off).
    #[must_use]
    pub fn feature_stats(&self) -> CacheStats {
        self.feature_cache
            .as_deref()
            .map(FeatureCache::stats)
            .unwrap_or_default()
    }

    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    #[must_use]
    pub fn validation_model(&self) -> Option<&ValidationModel> {
        self.validation.as_ref()
    }

    /// Install a trained validation model (paper: trained on 14 days of
    /// randomly flighted jobs before enabling the pipeline).
    pub fn set_validation_model(&mut self, model: ValidationModel) {
        self.validation = Some(model);
    }

    #[must_use]
    pub fn personalizer(&self) -> &Personalizer {
        &self.personalizer
    }

    /// Task 1 — Feature Generation: span (cached per template) plus the
    /// default-configuration estimated cost.
    fn span_for(&mut self, template: TemplateId, plan: &LogicalPlan) -> Option<(SpanResult, f64)> {
        let optimizer = &self.optimizer;
        let iterations = self.config.span_max_iterations;
        self.span_cache
            .entry(template)
            .or_insert_with(|| stages::compute_template_span(optimizer, plan, iterations))
            .clone()
    }

    /// Run the full pipeline over one day's view: the five stage functions
    /// of `crate::stages` composed over their typed intermediates. Returns
    /// the day's report; side effects: CB model updates and a new SIS hint
    /// file version.
    ///
    /// The compile-bound stages fan out under
    /// [`crate::config::ParallelismConfig`]; the report, bandit state, and
    /// published hints are bit-identical at any thread count.
    ///
    /// Note one deliberate semantic change from the original interleaved
    /// loop: all contextual-bandit rank calls of a day now happen before any
    /// of that day's rewards are applied (the whole batch acts on the
    /// previous day's model), so per-day numbers differ from the
    /// pre-refactor serial pipeline even at one thread. This is what makes
    /// the recompile fan-out order-free; see `crate::stages`.
    /// # Errors
    ///
    /// Returns a [`PipelineError`] when the SIS store rejects the day's
    /// hint-file publish or an internal pipeline invariant is violated;
    /// neither occurs for generated workloads.
    pub fn run_day(&mut self, view: &[ViewRow], day: u32) -> Result<DailyReport, PipelineError> {
        let mut report = DailyReport {
            day,
            jobs_total: view.len(),
            ..DailyReport::default()
        };
        // Stages run sequentially (each fans out internally), so snapshots
        // between them attribute every cache lookup — and every wall-clock
        // nanosecond — to exactly one stage.
        let elapsed = |t: std::time::Instant| t.elapsed().as_nanos() as u64;
        let d0 = self.optimizer.delta_stats();
        let s0 = self.optimizer.stats();
        // qo-lint: allow(ambient-entropy) — per-stage wall-clock telemetry only;
        // `DailyReport.timings` is zeroed before every byte-identity comparison
        let t0 = std::time::Instant::now();
        let spanned = stages::feature_gen(self, view, &mut report);
        report.timings.feature_gen_ns = elapsed(t0);
        let s1 = self.optimizer.stats();
        let f1 = self.feature_stats();
        let t1 = std::time::Instant::now(); // qo-lint: allow(ambient-entropy) — stage telemetry
        let recommended = stages::recommend(self, &spanned, day, &mut report)?;
        report.timings.recommend_ns = elapsed(t1);
        // Recommendation is the only consumer of the span-feature cache.
        report.feature_cache = self.feature_stats().since(&f1);
        let s2 = self.optimizer.stats();
        let e2 = self.exec_stats();
        let t2 = std::time::Instant::now(); // qo-lint: allow(ambient-entropy) — stage telemetry
        let flighted = stages::flight(self, recommended, &mut report);
        report.timings.flight_ns = elapsed(t2);
        let s3 = self.optimizer.stats();
        let e3 = self.exec_stats();
        let t3 = std::time::Instant::now(); // qo-lint: allow(ambient-entropy) — stage telemetry
        let validated = stages::validate(self, &flighted, &mut report);
        report.timings.validate_ns = elapsed(t3);
        let t4 = std::time::Instant::now(); // qo-lint: allow(ambient-entropy) — stage telemetry
        stages::publish(self, validated, day, &mut report)?;
        report.timings.publish_ns = elapsed(t4);
        report.compile_cache.feature_gen = s1.since(&s0);
        report.compile_cache.recommend = s2.since(&s1);
        report.compile_cache.flight = s3.since(&s2);
        // Flighting is the only pipeline stage that executes plans, and the
        // pipeline (recommendation + flighting) is the only slate compiler.
        report.exec_cache.flight = e3.since(&e2);
        report.delta_compile = self.optimizer.delta_stats().since(&d0);
        Ok(report)
    }

    /// Gather validation-model training data by flighting random span flips
    /// (the paper's 14-day bootstrap, §4.3). Returns the collected samples.
    pub fn gather_validation_samples(
        &mut self,
        view: &[ViewRow],
        day: u32,
        max_flights: usize,
    ) -> Vec<ValidationSample> {
        let default_config = self.optimizer.default_config();
        let mut requests = Vec::new();
        for row in view.iter().filter(|r| r.recurring) {
            if requests.len() >= max_flights {
                break;
            }
            let Some((span, _)) = self.span_for(row.template, &row.plan) else {
                continue;
            };
            let rules: Vec<_> = span.span.iter().collect();
            let pick = rules[mix64(row.job_id.0, u64::from(day)) as usize % rules.len()];
            let enable = !default_config.enabled(pick);
            requests.push(FlightRequest {
                template: row.template,
                plan: row.plan.clone(),
                job_seed: row.job_seed,
                baseline: default_config,
                treatment: default_config.with_flip(RuleFlip { rule: pick, enable }),
            });
        }
        let (outcomes, _) =
            self.flighting
                .flight_batch(&self.optimizer, &self.preprod_exec, &requests);
        outcomes
            .iter()
            .filter_map(|o| o.measurement())
            .map(|m| ValidationSample {
                data_read_delta: m.data_read_delta(),
                data_written_delta: m.data_written_delta(),
                pn_delta: m.pn_delta(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RecommendStrategy;
    use flighting::FlightBudget;
    use scope_runtime::Cluster;
    use scope_workload::{build_view, Workload, WorkloadConfig};

    fn advisor(strategy: RecommendStrategy) -> QoAdvisor {
        let optimizer = Optimizer::default();
        let flighting = FlightingService::new(Cluster::default(), FlightBudget::default());
        QoAdvisor::new(
            optimizer,
            flighting,
            PipelineConfig {
                strategy,
                ..PipelineConfig::default()
            },
        )
    }

    fn day_view(advisor: &QoAdvisor, seed: u64, day: u32) -> Vec<ViewRow> {
        let w = Workload::new(WorkloadConfig {
            seed,
            num_templates: 10,
            adhoc_per_day: 3,
            max_instances_per_day: 1,
            ..WorkloadConfig::default()
        });
        build_view(
            &w.jobs_for_day(day),
            advisor.optimizer(),
            &advisor.sis().snapshot(),
            &Cluster::default(),
        )
        .expect("generated workloads compile on the default path")
    }

    #[test]
    fn run_day_produces_consistent_report() {
        let mut qa = advisor(RecommendStrategy::ContextualBandit);
        let view = day_view(&qa, 5, 0);
        let report = qa.run_day(&view, 0).unwrap();
        assert_eq!(report.jobs_total, view.len());
        assert!(report.recurring_jobs > 0);
        assert!(report.jobs_with_span <= report.recurring_jobs);
        let outcomes = report.flight_success
            + report.flight_timeout
            + report.flight_failure
            + report.flight_filtered;
        assert_eq!(outcomes, report.flighted);
        assert!(report.validated <= report.flight_success);
        assert_eq!(report.hints_published, report.validated);
    }

    #[test]
    fn table3_counters_partition_recompiles() {
        let mut qa = advisor(RecommendStrategy::UniformRandom);
        let view = day_view(&qa, 5, 0);
        let report = qa.run_day(&view, 0).unwrap();
        let total = report.lower_cost
            + report.equal_cost
            + report.higher_cost
            + report.recompile_failures
            + report.noop_chosen;
        assert_eq!(
            total, report.jobs_with_span,
            "every spanned job is classified"
        );
    }

    #[test]
    fn hints_persist_and_accumulate_in_sis() {
        let mut qa = advisor(RecommendStrategy::ContextualBandit);
        let mut published = 0;
        for day in 0..4 {
            let view = day_view(&qa, 5, day);
            let report = qa.run_day(&view, day).unwrap();
            published += report.hints_published;
        }
        assert!(qa.sis().len() <= published.max(1));
        if published > 0 {
            assert!(qa.sis().version() > 0);
        }
    }

    #[test]
    fn bandit_absorbs_training_events() {
        let mut qa = advisor(RecommendStrategy::ContextualBandit);
        let view = day_view(&qa, 5, 0);
        let report = qa.run_day(&view, 0).unwrap();
        // Every spanned job trains the CB at least once (uniform pass).
        assert!(qa.personalizer().events() >= report.jobs_with_span as u64);
    }

    #[test]
    fn validation_model_gates_acceptance() {
        // A model that rejects everything -> no hints.
        let mut qa = advisor(RecommendStrategy::ContextualBandit);
        qa.set_validation_model(ValidationModel {
            intercept: 10.0, // predicted +1000% regression for everything
            w_read: 0.0,
            w_written: 0.0,
        });
        let view = day_view(&qa, 5, 0);
        let report = qa.run_day(&view, 0).unwrap();
        assert_eq!(report.validated, 0);
        assert_eq!(report.hints_published, 0);
        assert_eq!(qa.sis().version(), 0, "nothing published");
    }

    #[test]
    fn gather_validation_samples_returns_deltas() {
        let mut qa = advisor(RecommendStrategy::ContextualBandit);
        let view = day_view(&qa, 6, 0);
        let samples = qa.gather_validation_samples(&view, 0, 10);
        for s in &samples {
            assert!(s.data_read_delta.is_finite());
            assert!(s.pn_delta.is_finite());
        }
    }

    #[test]
    fn compile_cache_counters_surface_and_do_not_change_steering() {
        use crate::monitoring::CacheCounters;
        use scope_opt::CacheConfig;

        let mut qa = advisor(RecommendStrategy::ContextualBandit);
        let view = day_view(&qa, 5, 0);
        let report = qa.run_day(&view, 0).unwrap();
        assert!(report.compile_cache.lookups() > 0);
        // The span fixpoint alone repeats the default compile of every
        // spanned template, so a day with spans always hits.
        assert!(report.compile_cache.hits() > 0);
        assert_eq!(qa.cache_stats().hits, report.compile_cache.hits());
        // A bare run_day is handed a prebuilt view: the simulator-only
        // stages stay zero, every lookup lands in a pipeline stage.
        assert_eq!(report.compile_cache.view_build, CacheStats::default());
        assert_eq!(report.compile_cache.counterfactual, CacheStats::default());
        assert!(report.compile_cache.feature_gen.lookups() > 0);
        assert_eq!(
            report.compile_cache.total(),
            report.compile_cache.feature_gen
                + report.compile_cache.recommend
                + report.compile_cache.flight
        );

        // Same day, cache disabled: zero telemetry, byte-identical steering.
        let mut off = QoAdvisor::new(
            Optimizer::default(),
            FlightingService::new(Cluster::default(), FlightBudget::default()),
            PipelineConfig {
                cache: CacheConfig::disabled(),
                ..PipelineConfig::default()
            },
        );
        let report_off = off.run_day(&view, 0).unwrap();
        assert_eq!(report_off.compile_cache, CacheCounters::default());
        assert_eq!(off.cache_stats(), scope_opt::CacheStats::default());
        let mut normalized = report.clone();
        normalized.compile_cache = CacheCounters::default();
        // Telemetry-only fields (wall clocks, delta-resolution counters)
        // legitimately differ between the two runs; steering must not.
        normalized.timings = report_off.timings;
        normalized.delta_compile = report_off.delta_compile;
        assert_eq!(
            normalized, report_off,
            "the cache must never change what the pipeline decides"
        );
    }

    #[test]
    fn span_cache_avoids_recomputation_across_days() {
        let mut qa = advisor(RecommendStrategy::ContextualBandit);
        let v0 = day_view(&qa, 5, 0);
        qa.run_day(&v0, 0).unwrap();
        let cached = qa.span_cache.len();
        assert!(cached > 0);
        // Day 1 re-sees daily templates; the cache should not shrink and
        // mostly not grow for them.
        let v1 = day_view(&qa, 5, 1);
        qa.run_day(&v1, 1).unwrap();
        assert!(qa.span_cache.len() >= cached);
    }
}

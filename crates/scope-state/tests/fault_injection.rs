//! Fault injection against the on-disk snapshot format: every corruption —
//! truncation at any byte (section boundaries included), a flipped checksum
//! or payload byte, a bumped format version, mangled magic, a dropped
//! authoritative section, a bad enum tag — must surface as the matching
//! typed [`SnapshotError`] variant. Never a panic, never an `Ok` over
//! corrupt bytes, never a silent partial load.

mod common;

use common::sample_snapshot;
use scope_state::frame::section;
use scope_state::{
    FrameReader, FrameWriter, SnapshotError, SteeringSnapshot, FORMAT_VERSION, MAGIC,
};
use std::ops::Range;

/// Byte range of each section (header through checksum) by walking the
/// container layout: magic (8) | version (4) | count (4) | sections.
fn section_spans(bytes: &[u8]) -> Vec<(u16, Range<usize>)> {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let mut spans = Vec::new();
    let mut off = 16;
    for _ in 0..count {
        let id = u16::from_le_bytes(bytes[off..off + 2].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap()) as usize;
        let end = off + 12 + len + 8; // header + payload + checksum
        spans.push((id, off..end));
        off = end;
    }
    assert_eq!(off, bytes.len(), "walker disagrees with the writer");
    spans
}

#[test]
fn truncation_at_every_byte_is_a_typed_error() {
    let bytes = sample_snapshot().to_bytes();
    for cut in 0..bytes.len() {
        let err = SteeringSnapshot::from_bytes(&bytes[..cut])
            .expect_err("a proper prefix must never decode");
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
            ),
            "cut at byte {cut}/{}: unexpected {err:?}",
            bytes.len()
        );
    }
}

#[test]
fn truncation_at_each_section_boundary_names_the_header() {
    let bytes = sample_snapshot().to_bytes();
    // Cutting exactly where a promised section should begin fails while
    // reading that section's header.
    for (id, span) in section_spans(&bytes) {
        assert_eq!(
            SteeringSnapshot::from_bytes(&bytes[..span.start]).unwrap_err(),
            SnapshotError::Truncated {
                what: "section header"
            },
            "cut before section {id}"
        );
    }
}

#[test]
fn flipping_any_checksum_byte_blames_that_section() {
    let bytes = sample_snapshot().to_bytes();
    for (id, span) in section_spans(&bytes) {
        for checksum_byte in span.end - 8..span.end {
            let mut bad = bytes.clone();
            bad[checksum_byte] ^= 0x01;
            assert_eq!(
                SteeringSnapshot::from_bytes(&bad).unwrap_err(),
                SnapshotError::ChecksumMismatch { section: id },
                "flipped checksum byte {checksum_byte} of section {id}"
            );
        }
    }
}

#[test]
fn flipping_any_payload_byte_is_caught_by_the_checksum() {
    let bytes = sample_snapshot().to_bytes();
    for (id, span) in section_spans(&bytes) {
        let payload = span.start + 12..span.end - 8;
        // Every payload byte, so no field of any component codec escapes
        // checksum coverage.
        for byte in payload {
            let mut bad = bytes.clone();
            bad[byte] ^= 0xFF;
            assert_eq!(
                SteeringSnapshot::from_bytes(&bad).unwrap_err(),
                SnapshotError::ChecksumMismatch { section: id },
                "flipped payload byte {byte} of section {id}"
            );
        }
    }
}

#[test]
fn bumped_format_version_is_unsupported() {
    let mut bytes = sample_snapshot().to_bytes();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    assert_eq!(
        SteeringSnapshot::from_bytes(&bytes).unwrap_err(),
        SnapshotError::UnsupportedVersion {
            found: FORMAT_VERSION + 1,
            supported: FORMAT_VERSION
        }
    );
}

#[test]
fn mangled_magic_is_bad_magic() {
    let bytes = sample_snapshot().to_bytes();
    for byte in 0..MAGIC.len() {
        let mut bad = bytes.clone();
        bad[byte] ^= 0x20;
        assert_eq!(
            SteeringSnapshot::from_bytes(&bad).unwrap_err(),
            SnapshotError::BadMagic,
            "magic byte {byte}"
        );
    }
}

/// The `\r\n` tail of the magic is a text-mode canary (the PNG trick): a
/// snapshot that went through CRLF→LF newline translation must fail at the
/// magic check instead of decoding shifted garbage.
#[test]
fn newline_translated_snapshot_fails_the_magic_canary() {
    let bytes = sample_snapshot().to_bytes();
    let mut translated = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\r' && bytes.get(i + 1) == Some(&b'\n') {
            translated.push(b'\n');
            i += 2;
        } else {
            translated.push(bytes[i]);
            i += 1;
        }
    }
    assert_ne!(translated, bytes, "the magic alone guarantees one CRLF");
    assert_eq!(
        SteeringSnapshot::from_bytes(&translated).unwrap_err(),
        SnapshotError::BadMagic
    );
}

#[test]
fn dropping_any_authoritative_section_is_corrupt() {
    let snap = sample_snapshot();
    let bytes = snap.to_bytes();
    let parsed = FrameReader::from_bytes(&bytes).unwrap();
    for dropped in [
        section::META,
        section::SIS,
        section::PERSONALIZER,
        section::FLIGHTING,
        section::EXPLORED,
    ] {
        let mut w = FrameWriter::new();
        for s in parsed.sections().iter().filter(|s| s.id != dropped) {
            if s.is_warm() {
                w.push_warm(s.id, s.payload.clone());
            } else {
                w.push(s.id, s.payload.clone());
            }
        }
        let err = SteeringSnapshot::from_bytes(&w.to_bytes()).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Corrupt { .. }),
            "dropped section {dropped}: unexpected {err:?}"
        );
    }
    // Dropping the *warm* span cache is not an error: the cache is
    // deterministically rebuildable, so the snapshot restores without it.
    let mut w = FrameWriter::new();
    for s in parsed
        .sections()
        .iter()
        .filter(|s| s.id != section::SPAN_CACHE)
    {
        w.push(s.id, s.payload.clone());
    }
    let decoded = SteeringSnapshot::from_bytes(&w.to_bytes()).unwrap();
    assert_eq!(decoded.span_cache, None);
    assert_eq!(decoded.sis, snap.sis);
}

#[test]
fn bad_enum_tag_inside_a_section_is_corrupt() {
    // Hand-craft a meta payload with an unknown literal-policy tag; the
    // frame is intact (checksum recomputed by the writer), so the error
    // comes from the component codec, typed — not a panic.
    let snap = sample_snapshot();
    let parsed = FrameReader::from_bytes(&snap.to_bytes()).unwrap();
    let mut meta = Vec::new();
    meta.extend_from_slice(&7u32.to_le_bytes()); // day
    meta.extend_from_slice(&1u64.to_le_bytes()); // config fingerprint
    meta.push(1); // workload present
    meta.extend_from_slice(&99u64.to_le_bytes()); // seed
    meta.extend_from_slice(&24u64.to_le_bytes()); // num_templates
    meta.extend_from_slice(&3u64.to_le_bytes()); // adhoc_per_day
    meta.extend_from_slice(&1u32.to_le_bytes()); // max_instances_per_day
    meta.push(99); // unknown literal-policy tag
    let mut w = FrameWriter::new();
    w.push(section::META, meta);
    for s in parsed.sections().iter().filter(|s| s.id != section::META) {
        if s.is_warm() {
            w.push_warm(s.id, s.payload.clone());
        } else {
            w.push(s.id, s.payload.clone());
        }
    }
    let err = SteeringSnapshot::from_bytes(&w.to_bytes()).unwrap_err();
    assert!(
        matches!(&err, SnapshotError::Corrupt { what } if what.contains("literal-policy tag")),
        "unexpected {err:?}"
    );
}

#[test]
fn missing_file_is_a_typed_io_error() {
    let path = std::env::temp_dir().join(format!(
        "qo-snapshot-does-not-exist-{}.qosnap",
        std::process::id()
    ));
    let err = SteeringSnapshot::read_from(&path).unwrap_err();
    assert!(matches!(err, SnapshotError::Io(_)), "unexpected {err:?}");
    let err = FrameReader::read_from(&path).unwrap_err();
    assert!(matches!(err, SnapshotError::Io(_)), "unexpected {err:?}");
}

//! The pinned golden snapshot: a committed binary fixture that the current
//! encoder must reproduce byte-for-byte and the current decoder must read
//! back exactly. Any format change — field order, widths, section layout,
//! checksum — fails here first, forcing a deliberate decision:
//!
//!   * compatible refactor: fix the code until the fixture passes again;
//!   * intentional format change: bump [`FORMAT_VERSION`], rename the
//!     fixture to match, and re-bless it with
//!     `QO_BLESS_SNAPSHOT=1 cargo test -p scope-state --test golden`.
//!
//! Re-blessing without a version bump would silently strand every snapshot
//! written by older builds, so the fixture name carries the version and the
//! test below pins the constant.

mod common;

use common::sample_snapshot;
use scope_state::{SteeringSnapshot, FORMAT_VERSION, MAGIC};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("golden-v{FORMAT_VERSION}.qosnap"))
}

#[test]
fn golden_fixture_is_byte_stable() {
    let snap = sample_snapshot();
    let bytes = snap.to_bytes();
    let path = fixture_path();

    if std::env::var_os("QO_BLESS_SNAPSHOT").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        eprintln!("re-blessed {} ({} bytes)", path.display(), bytes.len());
    }

    let fixture = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); re-bless deliberately with \
             QO_BLESS_SNAPSHOT=1 cargo test -p scope-state --test golden",
            path.display()
        )
    });

    // Encoder stability: today's writer reproduces the committed bytes.
    assert_eq!(
        bytes, fixture,
        "the encoder no longer reproduces the v{FORMAT_VERSION} golden fixture — \
         this is a format change; bump FORMAT_VERSION and re-bless deliberately \
         (QO_BLESS_SNAPSHOT=1), do not just update the file"
    );

    // Decoder compatibility: the committed bytes decode to exactly the
    // fixture state (a snapshot written by an older build of this format
    // version keeps restoring).
    let decoded = SteeringSnapshot::from_bytes(&fixture).expect("golden fixture decodes");
    assert_eq!(decoded, snap, "golden fixture decoded to different state");
}

#[test]
fn format_constants_are_pinned() {
    // Bumping either constant is a breaking format change: the golden
    // fixture must be renamed and re-blessed in the same commit.
    // v2: config fingerprints added to the META and MONITOR sections.
    assert_eq!(FORMAT_VERSION, 2);
    assert_eq!(MAGIC, *b"QOSNAP\r\n");
}

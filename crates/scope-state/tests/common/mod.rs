//! Shared fixture for the scope-state integration tests: a small but
//! fully-populated snapshot (every optional section present, every codec
//! exercised) built from fixed values, so its serialized bytes are
//! reproducible — `tests/golden.rs` pins them as the committed fixture.

use personalizer::{FeatureVector, LoggedOutcome, PendingEventState, PersonalizerState};
use scope_ir::TemplateId;
use scope_opt::{Hint, RuleBits, RuleFlip, RuleId, SpanResult};
use scope_state::{
    ExploredState, FlightingState, LiteralsId, MetaState, MonitorState, MonitorTemplateState,
    SisState, SpanCacheEntry, SpanCacheState, SteeringSnapshot, ValidationState, WorkloadIdentity,
};

#[must_use]
pub fn sample_snapshot() -> SteeringSnapshot {
    let fv = |pairs: &[(u64, f64)]| FeatureVector::from_items(pairs.to_vec());
    let mut span = RuleBits::empty();
    span.insert(RuleId(21));
    span.insert(RuleId(200));
    let mut sig = RuleBits::empty();
    sig.insert(RuleId(3));
    SteeringSnapshot {
        meta: MetaState {
            day: 7,
            config_fingerprint: 0x5EED_F00D_CAFE_0001,
            workload: Some(WorkloadIdentity {
                seed: 99,
                num_templates: 24,
                adhoc_per_day: 3,
                max_instances_per_day: 1,
                literals: LiteralsId::Sticky {
                    redraw_every_days: 0,
                },
            }),
        },
        sis: SisState {
            version: 4,
            hints: vec![
                Hint {
                    template: TemplateId(11),
                    flip: RuleFlip {
                        rule: RuleId(21),
                        enable: true,
                    },
                },
                Hint {
                    template: TemplateId(42),
                    flip: RuleFlip {
                        rule: RuleId(7),
                        enable: false,
                    },
                },
            ],
        },
        personalizer: PersonalizerState {
            dim_bits: 8,
            weights: (0..256).map(|i| f64::from(i) * 0.125 - 3.0).collect(),
            updates: 17,
            events: 17,
            next_event: 23,
            pending: vec![PendingEventState {
                event_id: 22,
                context: fv(&[(1, 1.0), (9, 0.5)]),
                action: fv(&[(4, 1.0)]),
                probability: 0.25,
            }],
            history: vec![LoggedOutcome {
                target_agrees: true,
                logged_probability: 0.2,
                reward: 1.5,
            }],
        },
        flighting: FlightingState { batch_salt: 9 },
        validation: Some(ValidationState {
            intercept: -0.01,
            w_read: 0.4,
            w_written: 0.6,
        }),
        explored: ExploredState {
            templates: vec![TemplateId(11), TemplateId(42)],
        },
        monitor: Some(MonitorState {
            config_fingerprint: 0x5EED_F00D_CAFE_0002,
            templates: vec![MonitorTemplateState {
                template: TemplateId(11),
                baseline_pn: 12.5,
                observations: 4,
                consecutive_regressions: 1,
            }],
            reverted: vec![TemplateId(42)],
        }),
        span_cache: Some(SpanCacheState {
            entries: vec![
                (
                    TemplateId(11),
                    Some(SpanCacheEntry {
                        result: SpanResult {
                            span,
                            default_signature: sig,
                            iterations: 3,
                            stopped_on_failure: false,
                        },
                        default_cost: 123.5,
                    }),
                ),
                (TemplateId(42), None),
            ],
        }),
    }
}

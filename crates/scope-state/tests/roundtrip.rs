//! Property round-trips for every component codec: arbitrary component
//! state spliced into a full snapshot must survive `to_bytes` →
//! `from_bytes` exactly. Floats are compared with `PartialEq` here (the
//! strategies draw finite values); bit-exactness for the funny values
//! (NaN, ±0, infinities) is pinned by a dedicated test at the bottom.

mod common;

use common::sample_snapshot;
use personalizer::{FeatureVector, LoggedOutcome, PendingEventState, PersonalizerState};
use proptest::prelude::*;
use scope_ir::TemplateId;
use scope_opt::{Hint, RuleBits, RuleFlip, RuleId, SpanResult, RULE_COUNT};
use scope_state::{
    ExploredState, FlightingState, LiteralsId, MetaState, MonitorState, MonitorTemplateState,
    SisState, SpanCacheEntry, SpanCacheState, SteeringSnapshot, ValidationState, WorkloadIdentity,
};

// ---------------------------------------------------------------------------
// Strategies.

fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1.0), Just(-1.5), -1.0e12..1.0e12, -1.0..1.0]
}

fn option_of<T: Clone + std::fmt::Debug + 'static>(
    s: impl Strategy<Value = T> + 'static,
) -> impl Strategy<Value = Option<T>> {
    prop_oneof![Just(None), s.prop_map(Some)]
}

fn literals_id() -> impl Strategy<Value = LiteralsId> {
    prop_oneof![
        Just(LiteralsId::Fresh),
        (0u32..365).prop_map(|redraw_every_days| LiteralsId::Sticky { redraw_every_days }),
        (0.0..1.0).prop_map(|sticky_fraction| LiteralsId::Mixed { sticky_fraction }),
    ]
}

fn workload_identity() -> impl Strategy<Value = WorkloadIdentity> {
    (
        any::<u64>(),
        0u64..10_000,
        0u64..10_000,
        0u32..10_000,
        literals_id(),
    )
        .prop_map(
            |(seed, num_templates, adhoc_per_day, max_instances_per_day, literals)| {
                WorkloadIdentity {
                    seed,
                    num_templates,
                    adhoc_per_day,
                    max_instances_per_day,
                    literals,
                }
            },
        )
}

fn meta_state() -> impl Strategy<Value = MetaState> {
    (0u32..100_000, any::<u64>(), option_of(workload_identity())).prop_map(
        |(day, config_fingerprint, workload)| MetaState {
            day,
            config_fingerprint,
            workload,
        },
    )
}

fn hint() -> impl Strategy<Value = Hint> {
    (any::<u64>(), 0u16..RULE_COUNT as u16, any::<bool>()).prop_map(|(template, rule, enable)| {
        Hint {
            template: TemplateId(template),
            flip: RuleFlip {
                rule: RuleId(rule),
                enable,
            },
        }
    })
}

fn sis_state() -> impl Strategy<Value = SisState> {
    (0u32..1_000_000, prop::collection::vec(hint(), 0..8))
        .prop_map(|(version, hints)| SisState { version, hints })
}

fn feature_vector() -> impl Strategy<Value = FeatureVector> {
    prop::collection::vec((any::<u64>(), finite_f64()), 0..6).prop_map(FeatureVector::from_items)
}

fn pending_event() -> impl Strategy<Value = PendingEventState> {
    (any::<u64>(), feature_vector(), feature_vector(), 0.0..1.0).prop_map(
        |(event_id, context, action, probability)| PendingEventState {
            event_id,
            context,
            action,
            probability,
        },
    )
}

fn logged_outcome() -> impl Strategy<Value = LoggedOutcome> {
    (any::<bool>(), 0.0..1.0, finite_f64()).prop_map(
        |(target_agrees, logged_probability, reward)| LoggedOutcome {
            target_agrees,
            logged_probability,
            reward,
        },
    )
}

fn personalizer_state() -> impl Strategy<Value = PersonalizerState> {
    (
        (0u32..10, prop::collection::vec(finite_f64(), 0..64)),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        prop::collection::vec(pending_event(), 0..4),
        prop::collection::vec(logged_outcome(), 0..4),
    )
        .prop_map(
            |((dim_bits, weights), (updates, events, next_event), pending, history)| {
                PersonalizerState {
                    dim_bits,
                    weights,
                    updates,
                    events,
                    next_event,
                    pending,
                    history,
                }
            },
        )
}

fn validation_state() -> impl Strategy<Value = ValidationState> {
    (finite_f64(), finite_f64(), finite_f64()).prop_map(|(intercept, w_read, w_written)| {
        ValidationState {
            intercept,
            w_read,
            w_written,
        }
    })
}

fn explored_state() -> impl Strategy<Value = ExploredState> {
    prop::collection::vec(any::<u64>(), 0..16).prop_map(|ids| ExploredState {
        templates: ids.into_iter().map(TemplateId).collect(),
    })
}

fn monitor_template() -> impl Strategy<Value = MonitorTemplateState> {
    (any::<u64>(), finite_f64(), 0u32..1000, 0u32..10).prop_map(
        |(template, baseline_pn, observations, consecutive_regressions)| MonitorTemplateState {
            template: TemplateId(template),
            baseline_pn,
            observations,
            consecutive_regressions,
        },
    )
}

fn monitor_state() -> impl Strategy<Value = MonitorState> {
    (
        any::<u64>(),
        prop::collection::vec(monitor_template(), 0..8),
        prop::collection::vec(any::<u64>(), 0..8),
    )
        .prop_map(|(config_fingerprint, templates, reverted)| MonitorState {
            config_fingerprint,
            templates,
            reverted: reverted.into_iter().map(TemplateId).collect(),
        })
}

fn rule_bits() -> impl Strategy<Value = RuleBits> {
    prop::collection::vec(any::<u64>(), (RULE_COUNT / 64)..(RULE_COUNT / 64 + 1)).prop_map(
        |words| {
            let words: [u64; RULE_COUNT / 64] = words.try_into().expect("exact word count");
            RuleBits::from_words(words)
        },
    )
}

fn span_cache_entry() -> impl Strategy<Value = SpanCacheEntry> {
    (
        rule_bits(),
        rule_bits(),
        0u64..100,
        any::<bool>(),
        finite_f64(),
    )
        .prop_map(
            |(span, default_signature, iterations, stopped_on_failure, default_cost)| {
                SpanCacheEntry {
                    result: SpanResult {
                        span,
                        default_signature,
                        iterations: iterations as usize,
                        stopped_on_failure,
                    },
                    default_cost,
                }
            },
        )
}

fn span_cache_state() -> impl Strategy<Value = SpanCacheState> {
    prop::collection::vec((any::<u64>(), option_of(span_cache_entry())), 0..6).prop_map(|entries| {
        SpanCacheState {
            entries: entries
                .into_iter()
                .map(|(t, e)| (TemplateId(t), e))
                .collect(),
        }
    })
}

fn snapshot() -> impl Strategy<Value = SteeringSnapshot> {
    (
        (meta_state(), sis_state(), personalizer_state()),
        (
            any::<u64>(),
            option_of(validation_state()),
            explored_state(),
        ),
        (option_of(monitor_state()), option_of(span_cache_state())),
    )
        .prop_map(
            |(
                (meta, sis, personalizer),
                (batch_salt, validation, explored),
                (monitor, span_cache),
            )| SteeringSnapshot {
                meta,
                sis,
                personalizer,
                flighting: FlightingState { batch_salt },
                validation,
                explored,
                monitor,
                span_cache,
            },
        )
}

// ---------------------------------------------------------------------------
// One property per component codec: splice arbitrary state into the fixed
// fixture, round-trip the whole snapshot, require exact equality.

fn round_trips(snap: &SteeringSnapshot) -> Result<(), String> {
    let decoded = SteeringSnapshot::from_bytes(&snap.to_bytes())
        .map_err(|e| format!("decode failed: {e}"))?;
    if &decoded != snap {
        return Err(format!(
            "round-trip drift:\n got {decoded:?}\nwant {snap:?}"
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn meta_codec_round_trips(meta in meta_state()) {
        let mut snap = sample_snapshot();
        snap.meta = meta;
        prop_assert_eq!(round_trips(&snap), Ok(()));
    }

    #[test]
    fn sis_codec_round_trips(sis in sis_state()) {
        let mut snap = sample_snapshot();
        snap.sis = sis;
        prop_assert_eq!(round_trips(&snap), Ok(()));
    }

    #[test]
    fn personalizer_codec_round_trips(state in personalizer_state()) {
        let mut snap = sample_snapshot();
        snap.personalizer = state;
        prop_assert_eq!(round_trips(&snap), Ok(()));
    }

    #[test]
    fn flighting_codec_round_trips(batch_salt in any::<u64>()) {
        let mut snap = sample_snapshot();
        snap.flighting = FlightingState { batch_salt };
        prop_assert_eq!(round_trips(&snap), Ok(()));
    }

    #[test]
    fn validation_codec_round_trips(validation in option_of(validation_state())) {
        let mut snap = sample_snapshot();
        snap.validation = validation;
        prop_assert_eq!(round_trips(&snap), Ok(()));
    }

    #[test]
    fn explored_codec_round_trips(explored in explored_state()) {
        let mut snap = sample_snapshot();
        snap.explored = explored;
        prop_assert_eq!(round_trips(&snap), Ok(()));
    }

    #[test]
    fn monitor_codec_round_trips(monitor in option_of(monitor_state())) {
        let mut snap = sample_snapshot();
        snap.monitor = monitor;
        prop_assert_eq!(round_trips(&snap), Ok(()));
    }

    #[test]
    fn span_cache_codec_round_trips(span_cache in option_of(span_cache_state())) {
        let mut snap = sample_snapshot();
        snap.span_cache = span_cache;
        prop_assert_eq!(round_trips(&snap), Ok(()));
    }

    #[test]
    fn whole_snapshot_round_trips(snap in snapshot()) {
        prop_assert_eq!(round_trips(&snap), Ok(()));
    }

    // Serialization is a pure function of the snapshot: encoding twice
    // yields identical bytes (the golden-fixture test depends on this).
    #[test]
    fn encoding_is_deterministic(snap in snapshot()) {
        prop_assert_eq!(snap.to_bytes(), snap.to_bytes());
    }
}

/// `f64` fields travel as IEEE-754 bit patterns, so the values `PartialEq`
/// cannot vouch for (NaN) or distinguish (±0) still round-trip bit-exactly.
#[test]
fn nan_negative_zero_and_infinities_round_trip_bit_exactly() {
    let mut snap = sample_snapshot();
    snap.validation = Some(ValidationState {
        intercept: f64::NAN,
        w_read: -0.0,
        w_written: f64::NEG_INFINITY,
    });
    snap.personalizer.weights = vec![f64::INFINITY, f64::MIN_POSITIVE, -0.0];
    let decoded = SteeringSnapshot::from_bytes(&snap.to_bytes()).unwrap();
    let v = decoded.validation.unwrap();
    assert_eq!(v.intercept.to_bits(), f64::NAN.to_bits());
    assert_eq!(v.w_read.to_bits(), (-0.0f64).to_bits());
    assert_eq!(v.w_written.to_bits(), f64::NEG_INFINITY.to_bits());
    let bits: Vec<u64> = decoded
        .personalizer
        .weights
        .iter()
        .map(|w| w.to_bits())
        .collect();
    assert_eq!(
        bits,
        vec![
            f64::INFINITY.to_bits(),
            f64::MIN_POSITIVE.to_bits(),
            (-0.0f64).to_bits()
        ]
    );
}

//! The typed failure modes of snapshot restore.

use std::fmt;

/// Why a snapshot could not be written or restored. Restore never panics
/// and never partially applies: decoding the whole snapshot happens before
/// any live state is touched, so every variant leaves the process exactly
/// as it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem trouble reading or writing the snapshot file.
    Io(String),
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The format version is one this build cannot read.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The byte stream ended inside the named structure.
    Truncated { what: &'static str },
    /// A section's payload does not match its stored checksum.
    ChecksumMismatch { section: u16 },
    /// Structurally invalid content (bad enum tag, trailing bytes,
    /// duplicate or missing section, out-of-range field).
    Corrupt { what: String },
    /// The snapshot was taken under a different configuration than the
    /// process restoring it (workload identity, bandit table size, …).
    Mismatch { what: String },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(m) => write!(f, "snapshot io error: {m}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} unsupported (this build reads {supported})"
            ),
            SnapshotError::Truncated { what } => write!(f, "snapshot truncated inside {what}"),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in snapshot section {section}")
            }
            SnapshotError::Corrupt { what } => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::Mismatch { what } => {
                write!(f, "snapshot/configuration mismatch: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

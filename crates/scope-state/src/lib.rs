// Restore paths return typed errors instead of panicking (qo-lint rule
// QL05 covers this crate); tests may unwrap freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! **scope-state**: the durable-state snapshot subsystem of the steering
//! loop — a versioned, length-prefixed, checksummed on-disk format with
//! per-component codecs for everything the loop must carry across a process
//! restart.
//!
//! The paper's pipeline is a long-lived production service whose value
//! lives in warm state: the bandit model, the SIS hint store, and the
//! flighting history accumulate over weeks of recurring jobs (§3–5). This
//! crate makes that state durable without compromising the repo's
//! determinism contract: a process killed at any day boundary and restored
//! from its last snapshot produces byte-identical `DailyReport`s and SIS
//! hint files versus the uninterrupted run (`tests/snapshot_recovery.rs`).
//!
//! # Format
//!
//! ```text
//! magic  b"QOSNAP\r\n"                      (8 bytes)
//! format version                            (u32 LE)
//! section count                             (u32 LE)
//! section*: id (u16) | flags (u16) | payload len (u64) | payload
//!           | checksum = stable_hash64(payload) (u64)
//! ```
//!
//! Everything is little-endian; `f64`s travel as IEEE-754 bit patterns
//! (`to_bits`), so round-trips are exact — including NaNs. The checksum is
//! [`scope_ir::ids::stable_hash64`], the workspace's FNV-1a — no new hash
//! constants, per qo-lint QL03.
//!
//! Sections are either **authoritative** (the restore fails without them:
//! SIS version + hints, bandit weights, flighting RNG position, …) or
//! **warm** ([`frame::FLAG_WARM`]): deterministically rebuildable caches
//! that are safe to drop on restore. Unknown warm sections from a future
//! writer are skipped; unknown authoritative sections are a typed error.
//!
//! Restores of corrupt, truncated, or version-mismatched snapshots return
//! the matching [`SnapshotError`] variant — never a panic, never a silent
//! partial load ([`SteeringSnapshot::from_bytes`] decodes everything before
//! the caller applies anything).

pub mod codec;
pub mod components;
pub mod error;
pub mod frame;

pub use components::{
    ExploredState, FlightingState, LiteralsId, MetaState, MonitorState, MonitorTemplateState,
    SisState, SpanCacheEntry, SpanCacheState, SteeringSnapshot, ValidationState, WorkloadIdentity,
};
pub use error::SnapshotError;
pub use frame::{FrameReader, FrameWriter, FLAG_WARM, FORMAT_VERSION, MAGIC};

//! Per-component codecs and the [`SteeringSnapshot`] aggregate.
//!
//! Each component's durable state has a plain-data struct here plus an
//! `encode`/`decode` pair over the primitive codecs. The structs are
//! deliberately decoupled from the live service types (`qo_advisor`
//! converts): the format must stay stable even when the services refactor.
//!
//! What is **authoritative** vs **warm** follows the determinism contract:
//! the compile cache, execution cache, span-feature cache, and delta base
//! memos are pure functions of the plans the loop replays, so they are
//! *not* serialized (their section ids are reserved in [`crate::frame::
//! section`]); the span cache is serialized as a droppable warm section
//! because rebuilding it is the dominant Feature Generation cost. The
//! workload itself is a pure function of `(WorkloadConfig, day)` — only its
//! identity travels, and a restore into a differently-configured process is
//! a typed [`SnapshotError::Mismatch`].

use crate::codec::{Reader, Writer};
use crate::error::SnapshotError;
use crate::frame::{atomic_write, section, FrameReader, FrameWriter};
use personalizer::{FeatureVector, LoggedOutcome, PendingEventState, PersonalizerState};
use scope_ir::TemplateId;
use scope_opt::{Hint, RuleBits, RuleFlip, RuleId, SpanResult, RULE_COUNT};
use std::path::Path;

/// Literal policy identity (workload check only — the policy itself is
/// reconstructed by the process's own configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LiteralsId {
    Fresh,
    Sticky { redraw_every_days: u32 },
    Mixed { sticky_fraction: f64 },
}

/// Identity of the workload the snapshot was taken under. The generator is
/// a pure function of this configuration and the day counter, so equality
/// here (plus the restored day) is exactly what "same remaining days"
/// requires — sticky literal epochs included.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadIdentity {
    pub seed: u64,
    pub num_templates: u64,
    pub adhoc_per_day: u64,
    pub max_instances_per_day: u32,
    pub literals: LiteralsId,
}

/// Day counter + configuration identity + workload identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaState {
    /// The next day the loop will run (days `0..day` are complete).
    pub day: u32,
    /// Stable fingerprint of the *output-affecting* pipeline knobs the
    /// snapshot was taken under (bandit hyper-parameters, flight budget,
    /// validation threshold, …; computed by `qo-advisor`). Restoring under
    /// different tuning would silently diverge from the uninterrupted run,
    /// so a fingerprint disagreement is a typed mismatch. Throughput-only
    /// knobs (threads, caches) are deliberately excluded — they never
    /// change outputs, so restoring across them is legal.
    pub config_fingerprint: u64,
    /// `None` for advisor-only snapshots (no workload attached).
    pub workload: Option<WorkloadIdentity>,
}

/// SIS store: installed version + hints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SisState {
    pub version: u32,
    /// Sorted by template id (the canonical export order).
    pub hints: Vec<Hint>,
}

/// Flighting service: the batch salt is its only cross-day RNG position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightingState {
    pub batch_salt: u64,
}

/// The fitted validation model's three coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationState {
    pub intercept: f64,
    pub w_read: f64,
    pub w_written: f64,
}

/// Templates already flighted (§8 stateful mode), sorted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExploredState {
    pub templates: Vec<TemplateId>,
}

/// One template's regression-monitor state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorTemplateState {
    pub template: TemplateId,
    pub baseline_pn: f64,
    pub observations: u32,
    pub consecutive_regressions: u32,
}

/// Regression monitor: per-template baselines (sorted by template) plus
/// the revert log in observation order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MonitorState {
    /// Stable fingerprint of the `MonitorConfig` the baselines were built
    /// under (margin, revert threshold, EMA factor — every field changes
    /// revert decisions). Checked on restore like the pipeline fingerprint
    /// in [`MetaState`].
    pub config_fingerprint: u64,
    pub templates: Vec<MonitorTemplateState>,
    pub reverted: Vec<TemplateId>,
}

/// One span-cache entry: the fixpoint result and the default-plan estimated
/// cost, or `None` for templates whose span computation failed.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanCacheEntry {
    pub result: SpanResult,
    pub default_cost: f64,
}

/// The advisor's span cache (warm: safe to drop, rebuilt on demand),
/// sorted by template.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanCacheState {
    pub entries: Vec<(TemplateId, Option<SpanCacheEntry>)>,
}

/// Everything a steering process must carry across a restart, plus the
/// optional warm span cache. Decoding ([`SteeringSnapshot::from_bytes`])
/// validates the whole snapshot before the caller applies any of it.
#[derive(Debug, Clone, PartialEq)]
pub struct SteeringSnapshot {
    pub meta: MetaState,
    pub sis: SisState,
    pub personalizer: PersonalizerState,
    pub flighting: FlightingState,
    pub validation: Option<ValidationState>,
    pub explored: ExploredState,
    /// Present only when the §8 monitor is enabled.
    pub monitor: Option<MonitorState>,
    /// Warm section: dropping it changes cost, never outputs.
    pub span_cache: Option<SpanCacheState>,
}

// ---------------------------------------------------------------------------
// Component codecs.

fn encode_rule_bits(w: &mut Writer, bits: &RuleBits) {
    for word in bits.words() {
        w.put_u64(word);
    }
}

fn decode_rule_bits(r: &mut Reader<'_>) -> Result<RuleBits, SnapshotError> {
    let mut words = [0u64; RULE_COUNT / 64];
    for word in &mut words {
        *word = r.take_u64()?;
    }
    Ok(RuleBits::from_words(words))
}

pub(crate) fn encode_meta(state: &MetaState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(state.day);
    w.put_u64(state.config_fingerprint);
    w.put_bool(state.workload.is_some());
    if let Some(wl) = &state.workload {
        w.put_u64(wl.seed);
        w.put_u64(wl.num_templates);
        w.put_u64(wl.adhoc_per_day);
        w.put_u32(wl.max_instances_per_day);
        match wl.literals {
            LiteralsId::Fresh => w.put_u8(0),
            LiteralsId::Sticky { redraw_every_days } => {
                w.put_u8(1);
                w.put_u32(redraw_every_days);
            }
            LiteralsId::Mixed { sticky_fraction } => {
                w.put_u8(2);
                w.put_f64(sticky_fraction);
            }
        }
    }
    w.into_bytes()
}

pub(crate) fn decode_meta(bytes: &[u8]) -> Result<MetaState, SnapshotError> {
    let mut r = Reader::new(bytes, "meta section");
    let day = r.take_u32()?;
    let config_fingerprint = r.take_u64()?;
    let workload = if r.take_bool()? {
        let seed = r.take_u64()?;
        let num_templates = r.take_u64()?;
        let adhoc_per_day = r.take_u64()?;
        let max_instances_per_day = r.take_u32()?;
        let literals = match r.take_u8()? {
            0 => LiteralsId::Fresh,
            1 => LiteralsId::Sticky {
                redraw_every_days: r.take_u32()?,
            },
            2 => LiteralsId::Mixed {
                sticky_fraction: r.take_f64()?,
            },
            tag => {
                return Err(SnapshotError::Corrupt {
                    what: format!("meta section: unknown literal-policy tag {tag}"),
                })
            }
        };
        Some(WorkloadIdentity {
            seed,
            num_templates,
            adhoc_per_day,
            max_instances_per_day,
            literals,
        })
    } else {
        None
    };
    r.finish()?;
    Ok(MetaState {
        day,
        config_fingerprint,
        workload,
    })
}

pub(crate) fn encode_sis(state: &SisState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(state.version);
    w.put_len(state.hints.len());
    for h in &state.hints {
        w.put_u64(h.template.0);
        w.put_u16(h.flip.rule.0);
        w.put_bool(h.flip.enable);
    }
    w.into_bytes()
}

pub(crate) fn decode_sis(bytes: &[u8]) -> Result<SisState, SnapshotError> {
    let mut r = Reader::new(bytes, "sis section");
    let version = r.take_u32()?;
    let n = r.take_len()?;
    let mut hints = Vec::with_capacity(n);
    for _ in 0..n {
        let template = TemplateId(r.take_u64()?);
        let rule = RuleId(r.take_u16()?);
        let enable = r.take_bool()?;
        hints.push(Hint {
            template,
            flip: RuleFlip { rule, enable },
        });
    }
    r.finish()?;
    Ok(SisState { version, hints })
}

fn encode_feature_vector(w: &mut Writer, fv: &FeatureVector) {
    w.put_len(fv.items().len());
    for &(key, value) in fv.items() {
        w.put_u64(key);
        w.put_f64(value);
    }
}

fn decode_feature_vector(r: &mut Reader<'_>) -> Result<FeatureVector, SnapshotError> {
    let n = r.take_len()?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        let key = r.take_u64()?;
        let value = r.take_f64()?;
        items.push((key, value));
    }
    Ok(FeatureVector::from_items(items))
}

pub(crate) fn encode_personalizer(state: &PersonalizerState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(state.dim_bits);
    w.put_len(state.weights.len());
    for &weight in &state.weights {
        w.put_f64(weight);
    }
    w.put_u64(state.updates);
    w.put_u64(state.events);
    w.put_u64(state.next_event);
    w.put_len(state.pending.len());
    for p in &state.pending {
        w.put_u64(p.event_id);
        encode_feature_vector(&mut w, &p.context);
        encode_feature_vector(&mut w, &p.action);
        w.put_f64(p.probability);
    }
    w.put_len(state.history.len());
    for h in &state.history {
        w.put_bool(h.target_agrees);
        w.put_f64(h.logged_probability);
        w.put_f64(h.reward);
    }
    w.into_bytes()
}

pub(crate) fn decode_personalizer(bytes: &[u8]) -> Result<PersonalizerState, SnapshotError> {
    let mut r = Reader::new(bytes, "personalizer section");
    let dim_bits = r.take_u32()?;
    let n_weights = r.take_len()?;
    let mut weights = Vec::with_capacity(n_weights);
    for _ in 0..n_weights {
        weights.push(r.take_f64()?);
    }
    let updates = r.take_u64()?;
    let events = r.take_u64()?;
    let next_event = r.take_u64()?;
    let n_pending = r.take_len()?;
    let mut pending = Vec::with_capacity(n_pending);
    for _ in 0..n_pending {
        let event_id = r.take_u64()?;
        let context = decode_feature_vector(&mut r)?;
        let action = decode_feature_vector(&mut r)?;
        let probability = r.take_f64()?;
        pending.push(PendingEventState {
            event_id,
            context,
            action,
            probability,
        });
    }
    let n_history = r.take_len()?;
    let mut history = Vec::with_capacity(n_history);
    for _ in 0..n_history {
        let target_agrees = r.take_bool()?;
        let logged_probability = r.take_f64()?;
        let reward = r.take_f64()?;
        history.push(LoggedOutcome {
            target_agrees,
            logged_probability,
            reward,
        });
    }
    r.finish()?;
    Ok(PersonalizerState {
        dim_bits,
        weights,
        updates,
        events,
        next_event,
        pending,
        history,
    })
}

pub(crate) fn encode_flighting(state: &FlightingState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(state.batch_salt);
    w.into_bytes()
}

pub(crate) fn decode_flighting(bytes: &[u8]) -> Result<FlightingState, SnapshotError> {
    let mut r = Reader::new(bytes, "flighting section");
    let batch_salt = r.take_u64()?;
    r.finish()?;
    Ok(FlightingState { batch_salt })
}

pub(crate) fn encode_validation(state: &ValidationState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_f64(state.intercept);
    w.put_f64(state.w_read);
    w.put_f64(state.w_written);
    w.into_bytes()
}

pub(crate) fn decode_validation(bytes: &[u8]) -> Result<ValidationState, SnapshotError> {
    let mut r = Reader::new(bytes, "validation section");
    let intercept = r.take_f64()?;
    let w_read = r.take_f64()?;
    let w_written = r.take_f64()?;
    r.finish()?;
    Ok(ValidationState {
        intercept,
        w_read,
        w_written,
    })
}

pub(crate) fn encode_explored(state: &ExploredState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_len(state.templates.len());
    for t in &state.templates {
        w.put_u64(t.0);
    }
    w.into_bytes()
}

pub(crate) fn decode_explored(bytes: &[u8]) -> Result<ExploredState, SnapshotError> {
    let mut r = Reader::new(bytes, "explored section");
    let n = r.take_len()?;
    let mut templates = Vec::with_capacity(n);
    for _ in 0..n {
        templates.push(TemplateId(r.take_u64()?));
    }
    r.finish()?;
    Ok(ExploredState { templates })
}

pub(crate) fn encode_monitor(state: &MonitorState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(state.config_fingerprint);
    w.put_len(state.templates.len());
    for t in &state.templates {
        w.put_u64(t.template.0);
        w.put_f64(t.baseline_pn);
        w.put_u32(t.observations);
        w.put_u32(t.consecutive_regressions);
    }
    w.put_len(state.reverted.len());
    for t in &state.reverted {
        w.put_u64(t.0);
    }
    w.into_bytes()
}

pub(crate) fn decode_monitor(bytes: &[u8]) -> Result<MonitorState, SnapshotError> {
    let mut r = Reader::new(bytes, "monitor section");
    let config_fingerprint = r.take_u64()?;
    let n = r.take_len()?;
    let mut templates = Vec::with_capacity(n);
    for _ in 0..n {
        let template = TemplateId(r.take_u64()?);
        let baseline_pn = r.take_f64()?;
        let observations = r.take_u32()?;
        let consecutive_regressions = r.take_u32()?;
        templates.push(MonitorTemplateState {
            template,
            baseline_pn,
            observations,
            consecutive_regressions,
        });
    }
    let n_rev = r.take_len()?;
    let mut reverted = Vec::with_capacity(n_rev);
    for _ in 0..n_rev {
        reverted.push(TemplateId(r.take_u64()?));
    }
    r.finish()?;
    Ok(MonitorState {
        config_fingerprint,
        templates,
        reverted,
    })
}

pub(crate) fn encode_span_cache(state: &SpanCacheState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_len(state.entries.len());
    for (template, entry) in &state.entries {
        w.put_u64(template.0);
        w.put_bool(entry.is_some());
        if let Some(e) = entry {
            encode_rule_bits(&mut w, &e.result.span);
            encode_rule_bits(&mut w, &e.result.default_signature);
            w.put_u64(e.result.iterations as u64);
            w.put_bool(e.result.stopped_on_failure);
            w.put_f64(e.default_cost);
        }
    }
    w.into_bytes()
}

pub(crate) fn decode_span_cache(bytes: &[u8]) -> Result<SpanCacheState, SnapshotError> {
    let mut r = Reader::new(bytes, "span-cache section");
    let n = r.take_len()?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let template = TemplateId(r.take_u64()?);
        let entry = if r.take_bool()? {
            let span = decode_rule_bits(&mut r)?;
            let default_signature = decode_rule_bits(&mut r)?;
            let iterations = r.take_u64()? as usize;
            let stopped_on_failure = r.take_bool()?;
            let default_cost = r.take_f64()?;
            Some(SpanCacheEntry {
                result: SpanResult {
                    span,
                    default_signature,
                    iterations,
                    stopped_on_failure,
                },
                default_cost,
            })
        } else {
            None
        };
        entries.push((template, entry));
    }
    r.finish()?;
    Ok(SpanCacheState { entries })
}

// ---------------------------------------------------------------------------
// The aggregate.

impl SteeringSnapshot {
    /// Serialize to the framed on-disk format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut frame = FrameWriter::new();
        frame.push(section::META, encode_meta(&self.meta));
        frame.push(section::SIS, encode_sis(&self.sis));
        frame.push(
            section::PERSONALIZER,
            encode_personalizer(&self.personalizer),
        );
        frame.push(section::FLIGHTING, encode_flighting(&self.flighting));
        if let Some(v) = &self.validation {
            frame.push(section::VALIDATION, encode_validation(v));
        }
        frame.push(section::EXPLORED, encode_explored(&self.explored));
        if let Some(m) = &self.monitor {
            frame.push(section::MONITOR, encode_monitor(m));
        }
        if let Some(s) = &self.span_cache {
            frame.push_warm(section::SPAN_CACHE, encode_span_cache(s));
        }
        frame.to_bytes()
    }

    /// Parse and fully validate a snapshot. Nothing is applied to live
    /// state here, so an error means nothing changed anywhere. Unknown
    /// *warm* sections are skipped; unknown authoritative sections are
    /// [`SnapshotError::Corrupt`] (the writer knew something this reader
    /// must not silently drop).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let frame = FrameReader::from_bytes(bytes)?;
        for s in frame.sections() {
            let known = matches!(
                s.id,
                section::META
                    | section::SIS
                    | section::PERSONALIZER
                    | section::FLIGHTING
                    | section::VALIDATION
                    | section::EXPLORED
                    | section::MONITOR
                    | section::SPAN_CACHE
            );
            if !known && !s.is_warm() {
                return Err(SnapshotError::Corrupt {
                    what: format!("unknown authoritative section id {}", s.id),
                });
            }
        }
        let meta = decode_meta(frame.require(section::META, "meta")?)?;
        let sis = decode_sis(frame.require(section::SIS, "sis")?)?;
        let personalizer =
            decode_personalizer(frame.require(section::PERSONALIZER, "personalizer")?)?;
        let flighting = decode_flighting(frame.require(section::FLIGHTING, "flighting")?)?;
        let validation = match frame.section(section::VALIDATION) {
            Some(s) => Some(decode_validation(&s.payload)?),
            None => None,
        };
        let explored = decode_explored(frame.require(section::EXPLORED, "explored")?)?;
        let monitor = match frame.section(section::MONITOR) {
            Some(s) => Some(decode_monitor(&s.payload)?),
            None => None,
        };
        let span_cache = match frame.section(section::SPAN_CACHE) {
            Some(s) => Some(decode_span_cache(&s.payload)?),
            None => None,
        };
        Ok(Self {
            meta,
            sis,
            personalizer,
            flighting,
            validation,
            explored,
            monitor,
            span_cache,
        })
    }

    /// Write the snapshot to `path` atomically (temp file + rename): a
    /// crash mid-write leaves any previous snapshot at `path` intact, so
    /// there is always a complete snapshot to restore from.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        atomic_write(path.as_ref(), &self.to_bytes())
    }

    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but fully-populated snapshot (every optional section
    /// present) — shared with the golden-fixture test.
    pub(crate) fn sample_snapshot() -> SteeringSnapshot {
        let fv = |pairs: &[(u64, f64)]| FeatureVector::from_items(pairs.to_vec());
        let mut span = RuleBits::empty();
        span.insert(RuleId(21));
        span.insert(RuleId(200));
        let mut sig = RuleBits::empty();
        sig.insert(RuleId(3));
        SteeringSnapshot {
            meta: MetaState {
                day: 7,
                config_fingerprint: 0x5EED_F00D_CAFE_0001,
                workload: Some(WorkloadIdentity {
                    seed: 99,
                    num_templates: 24,
                    adhoc_per_day: 3,
                    max_instances_per_day: 1,
                    literals: LiteralsId::Sticky {
                        redraw_every_days: 0,
                    },
                }),
            },
            sis: SisState {
                version: 4,
                hints: vec![
                    Hint {
                        template: TemplateId(11),
                        flip: RuleFlip {
                            rule: RuleId(21),
                            enable: true,
                        },
                    },
                    Hint {
                        template: TemplateId(42),
                        flip: RuleFlip {
                            rule: RuleId(7),
                            enable: false,
                        },
                    },
                ],
            },
            personalizer: PersonalizerState {
                dim_bits: 8,
                weights: (0..256).map(|i| i as f64 * 0.125 - 3.0).collect(),
                updates: 17,
                events: 17,
                next_event: 23,
                pending: vec![PendingEventState {
                    event_id: 22,
                    context: fv(&[(1, 1.0), (9, 0.5)]),
                    action: fv(&[(4, 1.0)]),
                    probability: 0.25,
                }],
                history: vec![LoggedOutcome {
                    target_agrees: true,
                    logged_probability: 0.2,
                    reward: 1.5,
                }],
            },
            flighting: FlightingState { batch_salt: 9 },
            validation: Some(ValidationState {
                intercept: -0.01,
                w_read: 0.4,
                w_written: 0.6,
            }),
            explored: ExploredState {
                templates: vec![TemplateId(11), TemplateId(42)],
            },
            monitor: Some(MonitorState {
                config_fingerprint: 0x5EED_F00D_CAFE_0002,
                templates: vec![MonitorTemplateState {
                    template: TemplateId(11),
                    baseline_pn: 12.5,
                    observations: 4,
                    consecutive_regressions: 1,
                }],
                reverted: vec![TemplateId(42)],
            }),
            span_cache: Some(SpanCacheState {
                entries: vec![
                    (
                        TemplateId(11),
                        Some(SpanCacheEntry {
                            result: SpanResult {
                                span,
                                default_signature: sig,
                                iterations: 3,
                                stopped_on_failure: false,
                            },
                            default_cost: 123.5,
                        }),
                    ),
                    (TemplateId(42), None),
                ],
            }),
        }
    }

    #[test]
    fn full_snapshot_round_trips() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes();
        assert_eq!(SteeringSnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn optional_sections_can_be_absent() {
        let mut snap = sample_snapshot();
        snap.validation = None;
        snap.monitor = None;
        snap.span_cache = None;
        snap.meta.workload = None;
        let bytes = snap.to_bytes();
        assert_eq!(SteeringSnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn missing_authoritative_section_is_corrupt() {
        let mut frame = FrameWriter::new();
        frame.push(section::META, encode_meta(&sample_snapshot().meta));
        let err = SteeringSnapshot::from_bytes(&frame.to_bytes()).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn unknown_warm_section_is_skipped_but_authoritative_is_not() {
        let snap = sample_snapshot();
        let mut frame = FrameWriter::new();
        frame.push(section::META, encode_meta(&snap.meta));
        frame.push(section::SIS, encode_sis(&snap.sis));
        frame.push(
            section::PERSONALIZER,
            encode_personalizer(&snap.personalizer),
        );
        frame.push(section::FLIGHTING, encode_flighting(&snap.flighting));
        frame.push(section::EXPLORED, encode_explored(&snap.explored));
        frame.push_warm(0x9999, vec![1, 2, 3]);
        let decoded = SteeringSnapshot::from_bytes(&frame.to_bytes()).unwrap();
        assert_eq!(decoded.sis, snap.sis);

        let mut bad = FrameWriter::new();
        bad.push(section::META, encode_meta(&snap.meta));
        bad.push(0x0777, vec![1, 2, 3]);
        assert!(matches!(
            SteeringSnapshot::from_bytes(&bad.to_bytes()).unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));
    }
}

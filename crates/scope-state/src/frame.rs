//! The snapshot container format: magic, format version, and checksummed
//! length-prefixed sections. See the crate docs for the byte layout.

use crate::codec::Reader;
use crate::error::SnapshotError;
use scope_ir::ids::stable_hash64;
use std::path::Path;

/// File magic. The `\r\n` tail is a text-mode-mangling canary (the PNG
/// trick): a snapshot that went through newline translation fails here
/// with [`SnapshotError::BadMagic`] instead of decoding garbage.
pub const MAGIC: [u8; 8] = *b"QOSNAP\r\n";

/// Current format version. Bumping it invalidates the pinned golden
/// fixture (`tests/golden.rs`), which must be re-blessed deliberately.
///
/// v2: `META` gained the pipeline-config fingerprint and `MONITOR` the
/// monitor-config fingerprint, so a snapshot restored under different
/// tuning is a typed mismatch instead of a silent divergence.
pub const FORMAT_VERSION: u32 = 2;

/// Section flag: the payload is a warm cache — deterministically
/// rebuildable, safe to drop on restore, and skipped (not an error) when a
/// reader does not recognize its id.
pub const FLAG_WARM: u16 = 0x0001;

/// Section ids. Authoritative sections are required by
/// [`crate::SteeringSnapshot::from_bytes`]; warm ids (high bit set by
/// convention) carry [`FLAG_WARM`] and are droppable.
pub mod section {
    /// Day counter + workload identity (authoritative).
    pub const META: u16 = 1;
    /// SIS store version + installed hints (authoritative).
    pub const SIS: u16 = 2;
    /// Personalizer bandit weights, counters, pending events, and the
    /// counterfactual history (authoritative).
    pub const PERSONALIZER: u16 = 3;
    /// Flighting batch salt — the loop's only cross-day RNG position
    /// (authoritative).
    pub const FLIGHTING: u16 = 4;
    /// Fitted validation model, when installed (optional).
    pub const VALIDATION: u16 = 5;
    /// Templates already flighted (§8 stateful mode; authoritative).
    pub const EXPLORED: u16 = 6;
    /// Regression-monitor per-template baselines, when monitoring is
    /// enabled (optional).
    pub const MONITOR: u16 = 7;
    /// Span-fixpoint results per template (warm — rebuilt on demand).
    pub const SPAN_CACHE: u16 = 0x8001;
    /// Reserved for the compile-result cache (warm; never written — the
    /// cache is a pure function of the plans it sees).
    pub const COMPILE_CACHE: u16 = 0x8002;
    /// Reserved for the execution-result cache (warm; never written).
    pub const EXEC_CACHE: u16 = 0x8003;
    /// Reserved for the span-feature cache (warm; never written).
    pub const FEATURE_CACHE: u16 = 0x8004;
    /// Reserved for delta-compilation base memos (warm; never written).
    pub const DELTA_BASE_MEMO: u16 = 0x8005;
}

/// One decoded section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionFrame {
    pub id: u16,
    pub flags: u16,
    pub payload: Vec<u8>,
}

impl SectionFrame {
    #[must_use]
    pub fn is_warm(&self) -> bool {
        self.flags & FLAG_WARM != 0
    }
}

/// Assembles sections into the on-disk byte stream.
#[derive(Debug, Default)]
pub struct FrameWriter {
    sections: Vec<SectionFrame>,
}

impl FrameWriter {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an authoritative section.
    pub fn push(&mut self, id: u16, payload: Vec<u8>) {
        self.sections.push(SectionFrame {
            id,
            flags: 0,
            payload,
        });
    }

    /// Append a droppable warm-cache section.
    pub fn push_warm(&mut self, id: u16, payload: Vec<u8>) {
        self.sections.push(SectionFrame {
            id,
            flags: FLAG_WARM,
            payload,
        });
    }

    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for s in &self.sections {
            out.extend_from_slice(&s.id.to_le_bytes());
            out.extend_from_slice(&s.flags.to_le_bytes());
            out.extend_from_slice(&(s.payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&s.payload);
            out.extend_from_slice(&stable_hash64(&s.payload).to_le_bytes());
        }
        out
    }

    /// Write the framed bytes to `path` atomically (temp sibling, fsync,
    /// rename): a crash mid-write leaves any previous snapshot at `path`
    /// intact.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        atomic_write(path.as_ref(), &self.to_bytes())
    }
}

/// Atomically replace `path` with `bytes`: the bytes land in a sibling
/// `<name>.tmp` file which is flushed to disk and then renamed over the
/// target. A crash anywhere in the window leaves either the previous
/// complete snapshot or the new one — never the truncated hybrid that
/// writing straight onto the live path would risk.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let tmp = {
        let mut name = path
            .file_name()
            .map(std::ffi::OsStr::to_os_string)
            .unwrap_or_default();
        name.push(".tmp");
        path.with_file_name(name)
    };
    let result = (|| {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        // Push the bytes through the OS cache before publishing the name,
        // so the rename never exposes data the kernel has not accepted.
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Parses and checksum-verifies the byte stream back into sections. All
/// structural validation happens here, before any component decodes.
#[derive(Debug)]
pub struct FrameReader {
    sections: Vec<SectionFrame>,
}

impl FrameReader {
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() {
            return Err(SnapshotError::Truncated { what: "magic" });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut r = Reader::new(&bytes[MAGIC.len()..], "format version");
        let version = r.take_u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        r.set_context("section count");
        let count = r.take_u32()?;
        let mut sections: Vec<SectionFrame> = Vec::new();
        for _ in 0..count {
            r.set_context("section header");
            let id = r.take_u16()?;
            let flags = r.take_u16()?;
            let len = r.take_u64()?;
            if len > r.remaining() as u64 {
                return Err(SnapshotError::Truncated {
                    what: "section payload",
                });
            }
            r.set_context("section payload");
            let payload = r.take_bytes(len as usize)?.to_vec();
            r.set_context("section checksum");
            let stored = r.take_u64()?;
            if stored != stable_hash64(&payload) {
                return Err(SnapshotError::ChecksumMismatch { section: id });
            }
            if sections.iter().any(|s| s.id == id) {
                return Err(SnapshotError::Corrupt {
                    what: format!("duplicate section id {id}"),
                });
            }
            sections.push(SectionFrame { id, flags, payload });
        }
        if r.remaining() != 0 {
            return Err(SnapshotError::Corrupt {
                what: format!("{} trailing bytes after the last section", r.remaining()),
            });
        }
        Ok(Self { sections })
    }

    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    #[must_use]
    pub fn section(&self, id: u16) -> Option<&SectionFrame> {
        self.sections.iter().find(|s| s.id == id)
    }

    /// An authoritative section the restore cannot proceed without.
    pub fn require(&self, id: u16, what: &'static str) -> Result<&[u8], SnapshotError> {
        self.section(id)
            .map(|s| s.payload.as_slice())
            .ok_or(SnapshotError::Corrupt {
                what: format!("missing required section {id} ({what})"),
            })
    }

    #[must_use]
    pub fn sections(&self) -> &[SectionFrame] {
        &self.sections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_section_bytes() -> Vec<u8> {
        let mut w = FrameWriter::new();
        w.push(section::META, vec![1, 2, 3, 4]);
        w.push_warm(section::SPAN_CACHE, vec![5, 6]);
        w.to_bytes()
    }

    #[test]
    fn frame_round_trips() {
        let bytes = two_section_bytes();
        let r = FrameReader::from_bytes(&bytes).unwrap();
        assert_eq!(r.sections().len(), 2);
        assert_eq!(r.section(section::META).unwrap().payload, vec![1, 2, 3, 4]);
        assert!(r.section(section::SPAN_CACHE).unwrap().is_warm());
        assert!(r.section(section::SIS).is_none());
        assert!(r.require(section::SIS, "sis").is_err());
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = two_section_bytes();
        assert_eq!(
            FrameReader::from_bytes(&bytes[..4]).unwrap_err(),
            SnapshotError::Truncated { what: "magic" }
        );
        bytes[0] ^= 0xFF;
        assert_eq!(
            FrameReader::from_bytes(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut bumped = two_section_bytes();
        bumped[8] = FORMAT_VERSION as u8 + 1;
        assert_eq!(
            FrameReader::from_bytes(&bumped).unwrap_err(),
            SnapshotError::UnsupportedVersion {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn checksum_flip_is_detected() {
        let mut bytes = two_section_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01; // last byte of the warm section's checksum
        assert_eq!(
            FrameReader::from_bytes(&bytes).unwrap_err(),
            SnapshotError::ChecksumMismatch {
                section: section::SPAN_CACHE
            }
        );
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let bytes = two_section_bytes();
        for cut in 0..bytes.len() {
            let err = FrameReader::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn write_to_replaces_the_previous_snapshot_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join(format!("qo-frame-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.qosnap");

        let mut w1 = FrameWriter::new();
        w1.push(section::META, vec![1]);
        w1.write_to(&path).unwrap();
        let mut w2 = FrameWriter::new();
        w2.push(section::META, vec![2, 3]);
        w2.write_to(&path).unwrap();

        assert_eq!(std::fs::read(&path).unwrap(), w2.to_bytes());
        assert!(
            !dir.join("state.qosnap.tmp").exists(),
            "the temp file must be renamed away, not left behind"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_keeps_the_previous_snapshot_intact() {
        let dir = std::env::temp_dir().join(format!("qo-frame-atomic-fail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.qosnap");

        let mut good = FrameWriter::new();
        good.push(section::META, vec![1, 2, 3]);
        good.write_to(&path).unwrap();

        // Block the temp-file slot with a directory: the write must fail
        // with a typed Io error while the live snapshot stays readable.
        std::fs::create_dir(dir.join("state.qosnap.tmp")).unwrap();
        let mut next = FrameWriter::new();
        next.push(section::META, vec![9]);
        assert!(matches!(
            next.write_to(&path).unwrap_err(),
            SnapshotError::Io(_)
        ));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            good.to_bytes(),
            "a failed write must never touch the previous snapshot"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trailing_and_duplicate_sections_are_corrupt() {
        let mut bytes = two_section_bytes();
        bytes.push(0);
        assert!(matches!(
            FrameReader::from_bytes(&bytes).unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));
        let mut w = FrameWriter::new();
        w.push(section::META, vec![]);
        w.push(section::META, vec![]);
        assert!(matches!(
            FrameReader::from_bytes(&w.to_bytes()).unwrap_err(),
            SnapshotError::Corrupt { .. }
        ));
    }
}

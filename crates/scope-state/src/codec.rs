//! Little-endian primitive codecs: a growable [`Writer`] and a bounds-
//! checked [`Reader`] that turns every out-of-bounds read into a typed
//! [`SnapshotError::Truncated`] instead of a panic.

use crate::error::SnapshotError;

/// Append-only byte sink for one section payload.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64` as its IEEE-754 bit pattern: exact round-trip, NaNs included.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Collection length prefix (`u32`). Snapshots hold in-memory state, so
    /// a 4-billion-element collection cannot legitimately occur.
    pub fn put_len(&mut self, len: usize) {
        assert!(len <= u32::MAX as usize, "snapshot collection too large");
        self.put_u32(len as u32);
    }

    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor over one section payload. `what` names the structure being
/// decoded so truncation errors say where the stream ended.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Reader<'a> {
    #[must_use]
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        Self { buf, pos: 0, what }
    }

    /// Rename the structure under decode (for multi-part payloads).
    pub fn set_context(&mut self, what: &'static str) {
        self.what = what;
    }

    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn need(&self, n: usize) -> Result<(), SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated { what: self.what });
        }
        Ok(())
    }

    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    pub fn take_u16(&mut self) -> Result<u16, SnapshotError> {
        self.need(2)?;
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 2]);
        self.pos += 2;
        Ok(u16::from_le_bytes(b))
    }

    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        self.need(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
        self.pos += 4;
        Ok(u32::from_le_bytes(b))
    }

    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        self.need(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_le_bytes(b))
    }

    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SnapshotError::Corrupt {
                what: format!("{}: invalid bool byte {v}", self.what),
            }),
        }
    }

    /// Collection length prefix. Bounded by the remaining payload (every
    /// element costs at least one byte), so a corrupt length cannot drive a
    /// huge allocation.
    pub fn take_len(&mut self) -> Result<usize, SnapshotError> {
        let len = self.take_u32()? as usize;
        if len > self.remaining() {
            return Err(SnapshotError::Truncated { what: self.what });
        }
        Ok(len)
    }

    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.need(n)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Assert the payload is fully consumed — trailing bytes mean the
    /// writer and reader disagree about the section's shape.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Corrupt {
                what: format!(
                    "{}: {} trailing bytes after decode",
                    self.what,
                    self.remaining()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(123_456);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.25);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_bool(false);
        w.put_len(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u16().unwrap(), 0xBEEF);
        assert_eq!(r.take_u32().unwrap(), 123_456);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.take_f64().unwrap(), -0.25);
        assert!(r.take_f64().unwrap().is_nan());
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        // take_len guards against lengths past the payload end.
        assert_eq!(r.take_len(), Err(SnapshotError::Truncated { what: "test" }));
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut r = Reader::new(&[1, 2, 3], "header");
        assert_eq!(
            r.take_u64(),
            Err(SnapshotError::Truncated { what: "header" })
        );
        // The failed read consumed nothing.
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn invalid_bool_is_corrupt() {
        let mut r = Reader::new(&[9], "flags");
        assert!(matches!(r.take_bool(), Err(SnapshotError::Corrupt { .. })));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut r = Reader::new(&[0, 1], "tail");
        r.take_u8().unwrap();
        assert!(matches!(r.finish(), Err(SnapshotError::Corrupt { .. })));
        r.take_u8().unwrap();
        assert_eq!(r.finish(), Ok(()));
    }
}

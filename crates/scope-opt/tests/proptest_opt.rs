//! Property-based tests for the optimizer's core invariants: any valid plan
//! compiles under the default configuration; compilation is deterministic;
//! spans contain only flippable rules; configurations round-trip through
//! flips; emitted physical plans always validate and preserve output count.

use proptest::prelude::*;
use scope_ir::expr::{AggExpr, AggFunc, BinOp, ScalarExpr};
use scope_ir::logical::{JoinKind, LogicalOp, LogicalPlan, SortKey, TableRef};
use scope_ir::schema::{Column, DataType, Schema};
use scope_ir::stats::DualStats;
use scope_ir::NodeId;
use scope_opt::{compute_span, Optimizer, RuleConfig, RuleFlip, RuleId, RULE_COUNT};

/// Plan-building recipe (mirrors the IR proptest builder, but tuned to
/// produce optimizer-interesting shapes).
#[derive(Debug, Clone)]
enum Step {
    Scan { rows: f64, est_factor: f64 },
    Filter { sel: f64, est_sel: f64 },
    Join { sel: f64 },
    Aggregate { ratio: f64 },
    Top { k: u64 },
    Union,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => ((1e3f64..1e9), (0.2f64..5.0))
            .prop_map(|(rows, est_factor)| Step::Scan { rows, est_factor }),
        3 => ((0.001f64..1.0), (0.001f64..1.0))
            .prop_map(|(sel, est_sel)| Step::Filter { sel, est_sel }),
        2 => (1e-9f64..1e-3).prop_map(|sel| Step::Join { sel }),
        2 => (1e-4f64..0.5).prop_map(|ratio| Step::Aggregate { ratio }),
        1 => (1u64..500).prop_map(|k| Step::Top { k }),
        1 => Just(Step::Union),
    ]
}

fn build(steps: &[Step]) -> LogicalPlan {
    let schema = Schema::new(vec![
        Column::new("a", DataType::Int),
        Column::new("b", DataType::Int),
        Column::new("v", DataType::Float),
    ]);
    let mut plan = LogicalPlan::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut scans = 0;
    for s in steps {
        match s {
            Step::Scan { rows, est_factor } => {
                scans += 1;
                let t = TableRef::new(
                    format!("t{scans}"),
                    schema.clone(),
                    DualStats::new(*rows, rows * est_factor),
                );
                stack.push(plan.add(LogicalOp::Extract { table: t }, vec![]));
            }
            Step::Filter { sel, est_sel } => {
                if let Some(c) = stack.pop() {
                    let pred =
                        ScalarExpr::binary(BinOp::Gt, ScalarExpr::col(0), ScalarExpr::lit_int(7));
                    stack.push(plan.add(
                        LogicalOp::Filter {
                            predicate: pred,
                            selectivity: DualStats::new(*sel, *est_sel),
                        },
                        vec![c],
                    ));
                }
            }
            Step::Join { sel } => {
                if stack.len() >= 2 {
                    let r = stack.pop().unwrap();
                    let l = stack.pop().unwrap();
                    stack.push(plan.add(
                        LogicalOp::Join {
                            kind: JoinKind::Inner,
                            on: vec![(0, 0)],
                            selectivity: DualStats::exact(*sel),
                        },
                        vec![l, r],
                    ));
                }
            }
            Step::Aggregate { ratio } => {
                if let Some(c) = stack.pop() {
                    stack.push(plan.add(
                        LogicalOp::Aggregate {
                            group_by: vec![0],
                            aggs: vec![AggExpr::new(AggFunc::Sum, Some(1), "s")],
                            group_ratio: DualStats::exact(*ratio),
                        },
                        vec![c],
                    ));
                }
            }
            Step::Top { k } => {
                if let Some(c) = stack.pop() {
                    stack.push(plan.add(
                        LogicalOp::Top {
                            k: *k,
                            keys: vec![SortKey::desc(0)],
                        },
                        vec![c],
                    ));
                }
            }
            Step::Union => {
                if stack.len() >= 2 {
                    // Union requires equal widths; both sides carry the base
                    // 3-wide schema only when untouched — guard on widths.
                    let schemas = plan.schemas();
                    let r = *stack.last().unwrap();
                    let l = stack[stack.len() - 2];
                    if schemas[l.index()].len() == schemas[r.index()].len() {
                        let r = stack.pop().unwrap();
                        let l = stack.pop().unwrap();
                        stack.push(plan.add(LogicalOp::Union, vec![l, r]));
                    }
                }
            }
        }
    }
    if stack.is_empty() {
        let t = TableRef::new("t0", schema, DualStats::exact(1000.0));
        stack.push(plan.add(LogicalOp::Extract { table: t }, vec![]));
    }
    for (i, node) in stack.into_iter().enumerate() {
        plan.add_output(format!("o{i}"), node);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn default_config_always_compiles(steps in prop::collection::vec(step(), 1..24)) {
        let plan = build(&steps);
        let opt = Optimizer::default();
        let compiled = opt.compile(&plan, &opt.default_config());
        prop_assert!(compiled.is_ok(), "{compiled:?}");
        let compiled = compiled.unwrap();
        prop_assert!(compiled.physical.validate().is_ok());
        prop_assert!(compiled.est_cost.is_finite() && compiled.est_cost >= 0.0);
        prop_assert_eq!(compiled.physical.outputs().len(), plan.outputs().len());
        prop_assert!(!compiled.signature.is_empty());
    }

    #[test]
    fn compilation_is_deterministic(steps in prop::collection::vec(step(), 1..20)) {
        let plan = build(&steps);
        let opt = Optimizer::default();
        let a = opt.compile(&plan, &opt.default_config()).unwrap();
        let b = opt.compile(&plan, &opt.default_config()).unwrap();
        prop_assert_eq!(a.physical, b.physical);
        prop_assert_eq!(a.est_cost.to_bits(), b.est_cost.to_bits());
        prop_assert_eq!(a.signature, b.signature);
    }

    #[test]
    fn spans_contain_only_flippable_rules(steps in prop::collection::vec(step(), 1..16)) {
        let plan = build(&steps);
        let opt = Optimizer::default();
        if let Ok(span) = compute_span(&opt, &plan, 4) {
            for rule in span.span.iter() {
                prop_assert!(opt.rules().rule(rule).flippable());
            }
            // Flippable rules of the default signature are always included.
            for rule in span.default_signature.iter() {
                if opt.rules().rule(rule).flippable() {
                    prop_assert!(span.span.contains(rule));
                }
            }
        }
    }

    #[test]
    fn flips_round_trip_configs(rule in 0u16..RULE_COUNT as u16, enable in any::<bool>()) {
        let opt = Optimizer::default();
        let default = opt.default_config();
        let flip = RuleFlip { rule: RuleId(rule), enable };
        let flipped = default.with_flip(flip);
        prop_assert_eq!(flipped.enabled(RuleId(rule)), enable);
        // Re-applying the default state restores the default config.
        let restored = flipped.with_flip(RuleFlip {
            rule: RuleId(rule),
            enable: default.enabled(RuleId(rule)),
        });
        prop_assert_eq!(restored, default);
    }

    #[test]
    fn single_flip_detection_is_exact(
        rule in 0u16..RULE_COUNT as u16,
        other in 0u16..RULE_COUNT as u16,
    ) {
        let opt = Optimizer::default();
        let default = opt.default_config();
        let f1 = RuleFlip { rule: RuleId(rule), enable: !default.enabled(RuleId(rule)) };
        let one = default.with_flip(f1);
        prop_assert_eq!(default.single_flip_to(&one), Some(f1));
        if other != rule {
            let f2 = RuleFlip { rule: RuleId(other), enable: !default.enabled(RuleId(other)) };
            let two = one.with_flip(f2);
            prop_assert_eq!(default.single_flip_to(&two), None);
        }
    }

    #[test]
    fn signature_is_subset_of_enabled_rules(steps in prop::collection::vec(step(), 1..16)) {
        let plan = build(&steps);
        let opt = Optimizer::default();
        let config: RuleConfig = opt.default_config();
        if let Ok(c) = opt.compile(&plan, &config) {
            for rule in c.signature.iter() {
                prop_assert!(
                    config.enabled(rule),
                    "signature rule {rule} must be enabled in the config"
                );
            }
        }
    }
}

//! Property-based tests for the optimizer's core invariants: any valid plan
//! compiles under the default configuration; compilation is deterministic;
//! spans contain only flippable rules; configurations round-trip through
//! flips; emitted physical plans always validate and preserve output count.

mod plan_builder;

use plan_builder::{build, step};
use proptest::prelude::*;
use scope_opt::{compute_span, Optimizer, RuleConfig, RuleFlip, RuleId, RULE_COUNT};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn default_config_always_compiles(steps in prop::collection::vec(step(), 1..24)) {
        let plan = build(&steps);
        let opt = Optimizer::default();
        let compiled = opt.compile(&plan, &opt.default_config());
        prop_assert!(compiled.is_ok(), "{compiled:?}");
        let compiled = compiled.unwrap();
        prop_assert!(compiled.physical.validate().is_ok());
        prop_assert!(compiled.est_cost.is_finite() && compiled.est_cost >= 0.0);
        prop_assert_eq!(compiled.physical.outputs().len(), plan.outputs().len());
        prop_assert!(!compiled.signature.is_empty());
    }

    #[test]
    fn compilation_is_deterministic(steps in prop::collection::vec(step(), 1..20)) {
        let plan = build(&steps);
        let opt = Optimizer::default();
        let a = opt.compile(&plan, &opt.default_config()).unwrap();
        let b = opt.compile(&plan, &opt.default_config()).unwrap();
        prop_assert_eq!(a.physical, b.physical);
        prop_assert_eq!(a.est_cost.to_bits(), b.est_cost.to_bits());
        prop_assert_eq!(a.signature, b.signature);
    }

    #[test]
    fn spans_contain_only_flippable_rules(steps in prop::collection::vec(step(), 1..16)) {
        let plan = build(&steps);
        let opt = Optimizer::default();
        if let Ok(span) = compute_span(&opt, &plan, 4) {
            for rule in span.span.iter() {
                prop_assert!(opt.rules().rule(rule).flippable());
            }
            // Flippable rules of the default signature are always included.
            for rule in span.default_signature.iter() {
                if opt.rules().rule(rule).flippable() {
                    prop_assert!(span.span.contains(rule));
                }
            }
        }
    }

    #[test]
    fn flips_round_trip_configs(rule in 0u16..RULE_COUNT as u16, enable in any::<bool>()) {
        let opt = Optimizer::default();
        let default = opt.default_config();
        let flip = RuleFlip { rule: RuleId(rule), enable };
        let flipped = default.with_flip(flip);
        prop_assert_eq!(flipped.enabled(RuleId(rule)), enable);
        // Re-applying the default state restores the default config.
        let restored = flipped.with_flip(RuleFlip {
            rule: RuleId(rule),
            enable: default.enabled(RuleId(rule)),
        });
        prop_assert_eq!(restored, default);
    }

    #[test]
    fn single_flip_detection_is_exact(
        rule in 0u16..RULE_COUNT as u16,
        other in 0u16..RULE_COUNT as u16,
    ) {
        let opt = Optimizer::default();
        let default = opt.default_config();
        let f1 = RuleFlip { rule: RuleId(rule), enable: !default.enabled(RuleId(rule)) };
        let one = default.with_flip(f1);
        prop_assert_eq!(default.single_flip_to(&one), Some(f1));
        if other != rule {
            let f2 = RuleFlip { rule: RuleId(other), enable: !default.enabled(RuleId(other)) };
            let two = one.with_flip(f2);
            prop_assert_eq!(default.single_flip_to(&two), None);
        }
    }

    #[test]
    fn signature_is_subset_of_enabled_rules(steps in prop::collection::vec(step(), 1..16)) {
        let plan = build(&steps);
        let opt = Optimizer::default();
        let config: RuleConfig = opt.default_config();
        if let Ok(c) = opt.compile(&plan, &config) {
            for rule in c.signature.iter() {
                prop_assert!(
                    config.enabled(rule),
                    "signature rule {rule} must be enabled in the config"
                );
            }
        }
    }
}

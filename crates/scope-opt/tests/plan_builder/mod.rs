//! Shared proptest plan builder for the optimizer's integration suites
//! (`proptest_opt.rs`, `budget_monotonicity.rs`): a stack-machine recipe
//! tuned to produce optimizer-interesting shapes.

use proptest::prelude::*;
use scope_ir::expr::{AggExpr, AggFunc, BinOp, ScalarExpr};
use scope_ir::logical::{JoinKind, LogicalOp, LogicalPlan, SortKey, TableRef};
use scope_ir::schema::{Column, DataType, Schema};
use scope_ir::stats::DualStats;
use scope_ir::NodeId;

/// Plan-building recipe (mirrors the IR proptest builder).
#[derive(Debug, Clone)]
pub enum Step {
    Scan { rows: f64, est_factor: f64 },
    Filter { sel: f64, est_sel: f64 },
    Join { sel: f64 },
    Aggregate { ratio: f64 },
    Top { k: u64 },
    Union,
}

pub fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => ((1e3f64..1e9), (0.2f64..5.0))
            .prop_map(|(rows, est_factor)| Step::Scan { rows, est_factor }),
        3 => ((0.001f64..1.0), (0.001f64..1.0))
            .prop_map(|(sel, est_sel)| Step::Filter { sel, est_sel }),
        2 => (1e-9f64..1e-3).prop_map(|sel| Step::Join { sel }),
        2 => (1e-4f64..0.5).prop_map(|ratio| Step::Aggregate { ratio }),
        1 => (1u64..500).prop_map(|k| Step::Top { k }),
        1 => Just(Step::Union),
    ]
}

pub fn build(steps: &[Step]) -> LogicalPlan {
    let schema = Schema::new(vec![
        Column::new("a", DataType::Int),
        Column::new("b", DataType::Int),
        Column::new("v", DataType::Float),
    ]);
    let mut plan = LogicalPlan::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut scans = 0;
    for s in steps {
        match s {
            Step::Scan { rows, est_factor } => {
                scans += 1;
                let t = TableRef::new(
                    format!("t{scans}"),
                    schema.clone(),
                    DualStats::new(*rows, rows * est_factor),
                );
                stack.push(plan.add(LogicalOp::Extract { table: t }, vec![]));
            }
            Step::Filter { sel, est_sel } => {
                if let Some(c) = stack.pop() {
                    let pred =
                        ScalarExpr::binary(BinOp::Gt, ScalarExpr::col(0), ScalarExpr::lit_int(7));
                    stack.push(plan.add(
                        LogicalOp::Filter {
                            predicate: pred,
                            selectivity: DualStats::new(*sel, *est_sel),
                        },
                        vec![c],
                    ));
                }
            }
            Step::Join { sel } => {
                if stack.len() >= 2 {
                    let r = stack.pop().unwrap();
                    let l = stack.pop().unwrap();
                    stack.push(plan.add(
                        LogicalOp::Join {
                            kind: JoinKind::Inner,
                            on: vec![(0, 0)],
                            selectivity: DualStats::exact(*sel),
                        },
                        vec![l, r],
                    ));
                }
            }
            Step::Aggregate { ratio } => {
                if let Some(c) = stack.pop() {
                    stack.push(plan.add(
                        LogicalOp::Aggregate {
                            group_by: vec![0],
                            aggs: vec![AggExpr::new(AggFunc::Sum, Some(1), "s")],
                            group_ratio: DualStats::exact(*ratio),
                        },
                        vec![c],
                    ));
                }
            }
            Step::Top { k } => {
                if let Some(c) = stack.pop() {
                    stack.push(plan.add(
                        LogicalOp::Top {
                            k: *k,
                            keys: vec![SortKey::desc(0)],
                        },
                        vec![c],
                    ));
                }
            }
            Step::Union => {
                if stack.len() >= 2 {
                    // Union requires equal widths; both sides carry the base
                    // 3-wide schema only when untouched — guard on widths.
                    let schemas = plan.schemas();
                    let r = *stack.last().unwrap();
                    let l = stack[stack.len() - 2];
                    if schemas[l.index()].len() == schemas[r.index()].len() {
                        let r = stack.pop().unwrap();
                        let l = stack.pop().unwrap();
                        stack.push(plan.add(LogicalOp::Union, vec![l, r]));
                    }
                }
            }
        }
    }
    if stack.is_empty() {
        let t = TableRef::new("t0", schema, DualStats::exact(1000.0));
        stack.push(plan.add(LogicalOp::Extract { table: t }, vec![]));
    }
    for (i, node) in stack.into_iter().enumerate() {
        plan.add_output(format!("o{i}"), node);
    }
    plan
}

//! Property tests for the anytime-optimization contract of the task-queue
//! engine (`scope_opt::tasks`), over random stack-machine plans:
//!
//! * **Monotonicity** — a larger [`CompileBudget`] can only improve the
//!   anytime objective (the sum of root-group best costs): truncation drops
//!   the tail of a deterministic task sequence, so a smaller budget's memo
//!   is a prefix of a larger one's. The unlimited point equals the
//!   recursive reference engine byte-for-byte.
//! * **Anytime validity** — extraction at *every* task-count prefix of the
//!   cascade yields a valid executable plan: it validates, preserves the
//!   output count, and never leaves a group unimplemented (the mandatory
//!   implement/cost/extract epilogue plus the fallback rule guarantee a
//!   physical candidate everywhere). Small cascades are swept exhaustively;
//!   large ones are strided (the exhaustive every-prefix sweep of a fixed
//!   multi-output script lives in `scope_opt::tasks`' unit tests).

mod plan_builder;

use plan_builder::{build, step};
use proptest::prelude::*;
use scope_opt::{BudgetOutcome, CompileBudget, Optimizer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn objective_is_monotone_in_the_budget(
        steps in prop::collection::vec(step(), 1..16),
        b1 in 0u64..400,
        extra in 0u64..400,
    ) {
        let plan = build(&steps);
        let opt = Optimizer::default();
        let config = opt.default_config();
        let b2 = b1 + extra;
        let lo = opt
            .compile_budgeted(&plan, &config, CompileBudget::tasks(b1))
            .unwrap();
        let hi = opt
            .compile_budgeted(&plan, &config, CompileBudget::tasks(b2))
            .unwrap();
        let full = opt
            .compile_budgeted(&plan, &config, CompileBudget::unlimited())
            .unwrap();
        prop_assert!(
            hi.objective <= lo.objective,
            "objective regressed as the budget grew {b1} -> {b2}: {} > {}",
            hi.objective,
            lo.objective
        );
        prop_assert!(
            full.objective <= hi.objective,
            "the unlimited objective must be the floor: {} > {}",
            full.objective,
            hi.objective
        );
        prop_assert_eq!(full.outcome, BudgetOutcome::Complete);
        let recursive = opt.compile_recursive(&plan, &config).unwrap();
        prop_assert_eq!(
            full.compiled.est_cost.to_bits(),
            recursive.est_cost.to_bits()
        );
        prop_assert_eq!(full.compiled, recursive);
    }

    #[test]
    fn every_budget_prefix_extracts_a_valid_plan(
        steps in prop::collection::vec(step(), 1..10),
    ) {
        let plan = build(&steps);
        let opt = Optimizer::default();
        let config = opt.default_config();
        let full = opt
            .compile_budgeted(&plan, &config, CompileBudget::unlimited())
            .unwrap();
        // Exhaustive below 64 tasks; strided above (still hitting both
        // endpoints), keeping the sweep bounded on join-heavy cascades.
        let stride = (full.tasks_executed / 64).max(1);
        let mut last_objective = f64::INFINITY;
        let mut b = 0u64;
        loop {
            let anytime = opt
                .compile_budgeted(&plan, &config, CompileBudget::tasks(b))
                .unwrap();
            prop_assert!(
                anytime.compiled.physical.validate().is_ok(),
                "anytime plan at budget {b} failed validation"
            );
            prop_assert_eq!(
                anytime.compiled.physical.outputs().len(),
                plan.outputs().len()
            );
            prop_assert!(
                anytime.objective.is_finite() && anytime.objective >= 0.0,
                "every group must hold a physical candidate at budget {b}: \
                 objective {}",
                anytime.objective
            );
            prop_assert!(
                anytime.objective <= last_objective,
                "objective regressed at budget {b}: {} > {}",
                anytime.objective,
                last_objective
            );
            last_objective = anytime.objective;
            if b >= full.tasks_executed {
                prop_assert_eq!(anytime.outcome, BudgetOutcome::Complete);
                prop_assert_eq!(anytime.compiled, full.compiled.clone());
                break;
            }
            b = (b + stride).min(full.tasks_executed);
        }
    }
}

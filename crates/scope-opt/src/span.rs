//! Job-span computation (paper §2.1 / §4.1).
//!
//! > "Given a job, we compute a set containing all rules which, if enabled
//! > or disabled, can affect the final query plan. [...] for each job we
//! > start from the original rule configuration, and we turn on all the
//! > off-by-default rules, while we turn off all the on-by-default and
//! > implementation rules that appear in the original rule signature. We
//! > then pass this new rule configuration to the SCOPE optimizer for a
//! > recompilation pass. [...] This process is repeated until we reach a
//! > fix-point (i.e., no new rule is added to the signature, or the
//! > recompilation fails)."

use crate::config::{RuleBits, RuleConfig};
use crate::registry::{RuleCategory, RuleSet};
use crate::search::{CompileError, Compiler};
use scope_ir::logical::LogicalPlan;

/// Result of the span fixpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanResult {
    /// Flippable rules that can affect this job's plan.
    pub span: RuleBits,
    /// Signature of the default-configuration compilation.
    pub default_signature: RuleBits,
    /// Number of recompilation passes performed.
    pub iterations: usize,
    /// Whether the fixpoint terminated due to a failed recompilation.
    pub stopped_on_failure: bool,
}

impl SpanResult {
    /// Span size (the paper's `S`; the action set is `1 + S`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.span.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.span.is_empty()
    }
}

/// Build one fixpoint pass's exploration configuration (§4.1): every
/// off-by-default rule turned **on**, and the *on-by-default and
/// implementation* rules seen in any signature so far turned **off**. An
/// off-by-default rule discovered by an earlier pass stays enabled — the
/// paper only switches off rules that are on by default, so exploration
/// keeps probing what the experimental rules unlock.
fn exploration_config(rules: &RuleSet, default_config: &RuleConfig, seen: &RuleBits) -> RuleConfig {
    let mut bits = *default_config.bits();
    for r in rules.rules() {
        if r.category == RuleCategory::OffByDefault {
            bits.insert(r.id);
        }
    }
    for id in seen.iter() {
        let rule = rules.rule(id);
        if rule.flippable() && rule.category.default_on() {
            bits.remove(id);
        }
    }
    RuleConfig::from_bits(bits)
}

/// Compute the span of a job with the fixpoint heuristic, bounded by
/// `max_iterations` recompiles. Generic over [`Compiler`] so the fixpoint's
/// recompilation passes can run through a compile-result cache.
pub fn compute_span<C: Compiler>(
    optimizer: &C,
    plan: &LogicalPlan,
    max_iterations: usize,
) -> Result<SpanResult, CompileError> {
    let rules = optimizer.rules();
    let default_config = optimizer.default_config();
    let default = optimizer.compile(plan, &default_config)?;

    let flippable_only = |bits: &RuleBits| -> RuleBits {
        bits.iter()
            .filter(|&id| rules.rule(id).flippable())
            .collect()
    };

    let mut seen = default.signature;
    let mut span = flippable_only(&default.signature);
    let mut iterations = 0;
    let mut stopped_on_failure = false;
    let mut prev_config: Option<RuleConfig> = None;

    while iterations < max_iterations {
        let config = exploration_config(rules, &default_config, &seen);
        if prev_config == Some(config) {
            break; // configuration fixpoint
        }
        prev_config = Some(config);
        iterations += 1;
        match optimizer.compile(plan, &config) {
            Ok(compiled) => {
                let new_rules = flippable_only(&compiled.signature).difference(&span);
                if new_rules.is_empty() {
                    break; // signature fixpoint
                }
                span = span.union(&new_rules);
                seen = seen.union(&compiled.signature);
            }
            Err(_) => {
                stopped_on_failure = true;
                break;
            }
        }
    }

    Ok(SpanResult {
        span,
        default_signature: default.signature,
        iterations,
        stopped_on_failure,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Optimizer;
    use scope_lang::{bind_script, Catalog};

    fn plan(src: &str) -> LogicalPlan {
        bind_script(src, &Catalog::default()).unwrap()
    }

    const SCRIPT: &str = r#"
        sales = EXTRACT user:int, item:int, spend:float FROM "store/sales";
        users = EXTRACT user:int, region:string FROM "store/users";
        big   = SELECT user, spend FROM sales WHERE spend > 100;
        j     = SELECT * FROM big AS b JOIN users AS u ON b.user == u.user;
        agg   = SELECT region, SUM(spend) AS total FROM j GROUP BY region;
        OUTPUT agg TO "out/by_region";
    "#;

    #[test]
    fn span_is_nonempty_and_flippable_only() {
        let opt = Optimizer::default();
        let result = compute_span(&opt, &plan(SCRIPT), 8).unwrap();
        assert!(!result.is_empty(), "typical jobs have non-empty spans");
        for id in result.span.iter() {
            assert!(opt.rules().rule(id).flippable(), "{id} must be flippable");
        }
    }

    #[test]
    fn span_includes_default_signature_flippables() {
        let opt = Optimizer::default();
        let result = compute_span(&opt, &plan(SCRIPT), 8).unwrap();
        for id in result.default_signature.iter() {
            if opt.rules().rule(id).flippable() {
                assert!(result.span.contains(id));
            }
        }
    }

    #[test]
    fn span_is_deterministic() {
        let opt = Optimizer::default();
        let a = compute_span(&opt, &plan(SCRIPT), 8).unwrap();
        let b = compute_span(&opt, &plan(SCRIPT), 8).unwrap();
        assert_eq!(a.span, b.span);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn span_discovers_off_by_default_rules_beyond_default_signature() {
        let opt = Optimizer::default();
        let result = compute_span(&opt, &plan(SCRIPT), 8).unwrap();
        let default_flippable: RuleBits = result
            .default_signature
            .iter()
            .filter(|&id| opt.rules().rule(id).flippable())
            .collect();
        let discovered = result.span.difference(&default_flippable);
        // The all-on pass virtually always surfaces extra candidates for a
        // join+agg job; tolerate zero only if the first recompile failed.
        assert!(
            !discovered.is_empty() || result.stopped_on_failure,
            "span should usually exceed the default signature"
        );
    }

    #[test]
    fn exploration_keeps_discovered_off_by_default_rules_enabled() {
        // Regression: the exploration config used to turn off *every*
        // flippable rule seen in a signature, including off-by-default rules
        // discovered in an earlier pass. The paper (§4.1) only turns off
        // "on-by-default and implementation rules that appear in the
        // original rule signature" — off-by-default rules stay on.
        let opt = Optimizer::default();
        let rules = opt.rules();
        let off = rules
            .rules()
            .iter()
            .find(|r| r.category == RuleCategory::OffByDefault)
            .expect("registry has off-by-default rules")
            .id;
        let on = rules
            .rules()
            .iter()
            .find(|r| r.category == RuleCategory::OnByDefault)
            .expect("registry has on-by-default rules")
            .id;
        let implementation = rules
            .rules()
            .iter()
            .find(|r| r.category == RuleCategory::Implementation)
            .expect("registry has implementation rules")
            .id;
        // Pass 1 discovered all three in a signature.
        let seen: RuleBits = [off, on, implementation].into_iter().collect();
        let config = exploration_config(rules, &opt.default_config(), &seen);
        assert!(
            config.enabled(off),
            "off-by-default rule discovered in pass 1 must stay enabled in \
             pass 2's exploration config"
        );
        assert!(!config.enabled(on), "seen on-by-default rules turn off");
        assert!(
            !config.enabled(implementation),
            "seen implementation rules turn off"
        );
    }

    #[test]
    fn max_iterations_bounds_the_fixpoint() {
        let opt = Optimizer::default();
        let result = compute_span(&opt, &plan(SCRIPT), 1).unwrap();
        assert!(result.iterations <= 1);
    }
}

//! The budgeted Cascades search: exploration (transform rules in promise
//! order under a global application budget and per-group caps),
//! implementation (impl/parametric/fallback rules), bottom-up costing, and
//! plan extraction with exchange materialization and signature assembly.
//!
//! The search is deliberately *heuristic*: the budget, the per-group caps,
//! and the promise ordering mean the explored space is a rule-configuration-
//! dependent subset of the full space. That is why flipping a rule — even
//! turning one *off* — can reroute the search to a plan with **lower**
//! estimated cost, exactly the behaviour QO-Advisor exploits in SCOPE.

use crate::config::{RuleBits, RuleConfig, RuleId};
use crate::cost::CostModel;
use crate::impls::{implement_expr, ImplContext};
use crate::memo::{Best, GroupId, Memo, PreLocal};
use crate::registry::{
    RuleBehavior, RuleSet, RULE_DEGREE_OF_PARALLELISM, RULE_EXCHANGE_PLACEMENT,
    RULE_INTERMEDIATE_COMPRESSION, RULE_MEMO_DEDUP, RULE_PLAN_SERIALIZE, RULE_PREDICATE_NORMALIZE,
    RULE_SCRIPT_STITCH, RULE_SHUFFLE_ELIMINATION, RULE_STATS_ANNOTATE,
};
use crate::rules::apply_transform;
use crate::tasks::{BudgetedCompile, CompileBudget, TaskEngine};
use rustc_hash::FxHashMap;
use scope_ir::logical::LogicalPlan;
use scope_ir::physical::{PhysicalNode, PhysicalOp, PhysicalPlan, PhysicalTuning};
use scope_ir::stats::NodeStats;
use scope_ir::NodeId;
use std::collections::VecDeque;
use std::fmt;

/// Knobs bounding the search. Defaults approximate a production optimizer's
/// time budget scaled down to simulation size.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Global budget of transform-rule applications per compile.
    pub max_transform_applications: usize,
    /// Maximum logical expressions per memo group.
    pub max_exprs_per_group: usize,
    /// Exploration passes over the expression worklist.
    pub exploration_passes: usize,
    /// Estimated build-side bytes above which broadcast joins are rejected.
    pub broadcast_threshold_bytes: f64,
    /// Estimated |L|·|R| above which nested-loop joins are rejected.
    pub nested_loop_limit: f64,
    /// Target estimated bytes per partition when sizing exchanges. Sizing
    /// on bytes (not rows) is what couples data-volume reductions to vertex
    /// counts — the paper's "I/O reduction might be a natural result of
    /// fewer vertices" observation (§5.5).
    pub bytes_per_partition: f64,
    /// Hard cap on exchange partitions.
    pub max_partitions: u32,
    /// CPU penalty of the required fallback implementations.
    pub fallback_cpu_penalty: f64,
    /// IO penalty of the required fallback implementations.
    pub fallback_io_penalty: f64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            max_transform_applications: 1500,
            max_exprs_per_group: 8,
            exploration_passes: 2,
            broadcast_threshold_bytes: 6.4e7,
            nested_loop_limit: 1e8,
            bytes_per_partition: 6.4e7,
            max_partitions: 256,
            fallback_cpu_penalty: 1.7,
            fallback_io_penalty: 1.25,
        }
    }
}

/// Compilation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Input plan failed validation.
    Invalid(String),
    /// An experimental rule chosen for the final plan is incompatible with
    /// this job template (models SCOPE's experimental-rule compile crashes).
    RuleInstability { rule: RuleId },
    /// No physical implementation exists for a group (cannot happen while
    /// the required fallback rule is present; kept for completeness).
    NoImplementation { tag: String },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Invalid(m) => write!(f, "invalid plan: {m}"),
            CompileError::RuleInstability { rule } => {
                write!(
                    f,
                    "compilation failed: rule {rule} is unstable for this template"
                )
            }
            CompileError::NoImplementation { tag } => {
                write!(f, "no physical implementation for {tag}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A successful compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct Compiled {
    pub physical: PhysicalPlan,
    /// Total estimated cost (the optimizer's belief; see `scope-runtime` for
    /// ground truth).
    pub est_cost: f64,
    /// Rules that directly contributed to the chosen plan (paper §2.1).
    pub signature: RuleBits,
    /// Memo size telemetry.
    pub memo_groups: usize,
    pub memo_exprs: usize,
    /// Stable seed for the job's template (drives per-template truth draws).
    pub template_seed: u64,
}

/// Anything that can compile logical plans under rule configurations: the
/// bare [`Optimizer`], or [`crate::cache::CachingOptimizer`] which routes
/// every compile through a shared [`crate::cache::CompileCache`]. Span
/// computation and flighting are generic over this, so the whole steering
/// pipeline — span fixpoint, recommendation recompiles, validation flights —
/// can share one compile-result cache.
pub trait Compiler {
    fn rules(&self) -> &RuleSet;
    fn default_config(&self) -> RuleConfig;
    fn compile(&self, plan: &LogicalPlan, config: &RuleConfig) -> Result<Compiled, CompileError>;

    /// Price a *slate* of treatment configurations against one base
    /// configuration of the same plan — the shape of the pipeline's two
    /// treatment-compile sites (recommendation's candidate pricing and
    /// flighting's validation compiles). The default implementation simply
    /// compiles each treatment from scratch; [`crate::cache::CachingOptimizer`]
    /// overrides it to reuse the base configuration's explored memo via
    /// [`crate::delta::DeltaCompiler`], which is byte-identical but skips the
    /// shared part of the search. One result per treatment, in input order.
    fn compile_slate(
        &self,
        plan: &LogicalPlan,
        base: &RuleConfig,
        treatments: &[RuleConfig],
    ) -> Vec<Result<Compiled, CompileError>> {
        let _ = base;
        treatments
            .iter()
            .map(|treatment| self.compile(plan, treatment))
            .collect()
    }
}

/// Everything one from-scratch compilation produces: the [`Compiled`] result
/// plus the artifacts [`crate::delta::BaseMemo`] freezes for incremental
/// treatment pricing.
pub(crate) struct FullCompile {
    pub compiled: Compiled,
    /// The fully explored, implemented, and costed memo.
    pub memo: Memo,
    /// Root group per plan output, in output order.
    pub roots: Vec<GroupId>,
    /// Transform rules that produced at least one rewrite during
    /// exploration. This is a strict superset of the transforms visible in
    /// memo provenance: a rewrite consumes exploration budget even when the
    /// materialized expression is rejected by dedup or the per-group cap, so
    /// only a rule absent from this set is provably trace-invisible.
    pub fired_transforms: RuleBits,
}

/// The SCOPE-like optimizer.
#[derive(Debug, Clone)]
pub struct Optimizer {
    rules: RuleSet,
    cost: CostModel,
    opts: SearchOptions,
}

impl Compiler for Optimizer {
    fn rules(&self) -> &RuleSet {
        Optimizer::rules(self)
    }

    fn default_config(&self) -> RuleConfig {
        Optimizer::default_config(self)
    }

    fn compile(&self, plan: &LogicalPlan, config: &RuleConfig) -> Result<Compiled, CompileError> {
        Optimizer::compile(self, plan, config)
    }
}

impl Default for Optimizer {
    fn default() -> Self {
        Self::new(
            RuleSet::standard(),
            CostModel::default(),
            SearchOptions::default(),
        )
    }
}

impl Optimizer {
    #[must_use]
    pub fn new(rules: RuleSet, cost: CostModel, opts: SearchOptions) -> Self {
        Self { rules, cost, opts }
    }

    #[must_use]
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    #[must_use]
    pub fn options(&self) -> &SearchOptions {
        &self.opts
    }

    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The default rule configuration of this optimizer's registry.
    #[must_use]
    pub fn default_config(&self) -> RuleConfig {
        self.rules.default_config()
    }

    /// Compile a logical plan under a rule configuration.
    pub fn compile(
        &self,
        plan: &LogicalPlan,
        config: &RuleConfig,
    ) -> Result<Compiled, CompileError> {
        self.compile_full(plan, config).map(|full| full.compiled)
    }

    /// [`Optimizer::compile`] keeping the explored memo and the exploration
    /// trace facts ([`FullCompile`]) — what `crate::delta` freezes into a
    /// [`crate::delta::BaseMemo`]. Runs the task-queue engine
    /// (`crate::tasks`) at unlimited budget, which is byte-identical to the
    /// recursive reference engine.
    pub(crate) fn compile_full(
        &self,
        plan: &LogicalPlan,
        config: &RuleConfig,
    ) -> Result<FullCompile, CompileError> {
        plan.validate()
            .map_err(|e| CompileError::Invalid(e.to_string()))?;
        let template_seed = plan.template_id().0;
        self.disable_path_check(config, template_seed)?;
        let mut memo = Memo::new();
        let roots = memo.copy_in(plan);
        let mut engine = TaskEngine::new(self);
        let run = engine.run(
            &mut memo,
            &roots,
            config,
            template_seed,
            CompileBudget::unlimited(),
        )?;
        Ok(FullCompile {
            compiled: run.compiled,
            memo,
            roots,
            fired_transforms: run.fired_transforms,
        })
    }

    /// Compile under a [`CompileBudget`]: the task-queue engine explores
    /// until the budget trips, then extracts the best plan the partial memo
    /// supports (see `crate::tasks` for the anytime contract). Unlimited
    /// budgets are byte-identical to [`Optimizer::compile`].
    pub fn compile_budgeted(
        &self,
        plan: &LogicalPlan,
        config: &RuleConfig,
        budget: CompileBudget,
    ) -> Result<BudgetedCompile, CompileError> {
        plan.validate()
            .map_err(|e| CompileError::Invalid(e.to_string()))?;
        let template_seed = plan.template_id().0;
        self.disable_path_check(config, template_seed)?;
        let mut memo = Memo::new();
        let roots = memo.copy_in(plan);
        let mut engine = TaskEngine::new(self);
        let run = engine.run(&mut memo, &roots, config, template_seed, budget)?;
        Ok(BudgetedCompile {
            compiled: run.compiled,
            outcome: run.outcome,
            tasks_executed: engine.tasks_executed,
            objective: run.objective,
        })
    }

    /// Task-queue replay of one from-scratch compile, skipping plan
    /// validation and the disable-path check — the `crate::delta`
    /// full-fallback entry, whose caller already validated the identical
    /// plan at base-build time and ran the disable-path check in `price`.
    /// Returns the engine's task count alongside the result so the delta
    /// layer can account replayed work.
    pub(crate) fn compile_replay(
        &self,
        plan: &LogicalPlan,
        config: &RuleConfig,
    ) -> (u64, Result<Compiled, CompileError>) {
        let template_seed = plan.template_id().0;
        let mut memo = Memo::new();
        let roots = memo.copy_in(plan);
        let mut engine = TaskEngine::new(self);
        let result = engine
            .run(
                &mut memo,
                &roots,
                config,
                template_seed,
                CompileBudget::unlimited(),
            )
            .map(|run| run.compiled);
        (engine.tasks_executed, result)
    }

    /// The original recursive-descent engine, kept as the differential
    /// reference for the task-queue engine: `tests/budget_equivalence.rs`
    /// asserts this stays byte-identical to [`Optimizer::compile`] (which
    /// now runs `crate::tasks` at unlimited budget) for every template and
    /// treatment.
    pub fn compile_recursive(
        &self,
        plan: &LogicalPlan,
        config: &RuleConfig,
    ) -> Result<Compiled, CompileError> {
        plan.validate()
            .map_err(|e| CompileError::Invalid(e.to_string()))?;
        let template_seed = plan.template_id().0;
        self.disable_path_check(config, template_seed)?;
        let mut memo = Memo::new();
        let roots = memo.copy_in(plan);

        self.explore(&mut memo, config);
        self.implement(&mut memo, config, template_seed)?;
        let mut visiting = vec![false; memo.group_count()];
        for &root in &roots {
            self.best_cost(&mut memo, root, &mut visiting);
        }
        self.extract(&memo, &roots, template_seed, config.bits().fingerprint())
    }

    /// Disable-path instability: rules turned off relative to the default
    /// configuration can crash compilation for some templates (checked
    /// up-front, before any search; the outcome depends only on template +
    /// configuration). Shared verbatim with the delta path so a replayed
    /// treatment fails with exactly the error a from-scratch compile would
    /// raise — first failing rule in registry order.
    pub(crate) fn disable_path_check(
        &self,
        config: &RuleConfig,
        template_seed: u64,
    ) -> Result<(), CompileError> {
        let fingerprint = config.bits().fingerprint();
        for rule in self.rules.rules() {
            if rule.category.default_on()
                && rule.flippable()
                && !config.enabled(rule.id)
                && self
                    .rules
                    .disable_unstable_for(rule.id, template_seed, fingerprint)
            {
                return Err(CompileError::RuleInstability { rule: rule.id });
            }
        }
        Ok(())
    }

    /// Extraction-time instability of an assembled signature: the
    /// experimental-rule check (ascending rule-id order, matching
    /// `signature.iter()`) followed by the fallback-path check. Shared with
    /// the delta pruner, which replays these draws under the treatment's
    /// configuration fingerprint instead of re-extracting.
    pub(crate) fn plan_instability_check(
        &self,
        signature: &RuleBits,
        template_seed: u64,
        config_fingerprint: u64,
    ) -> Result<(), CompileError> {
        for id in signature.iter() {
            if self
                .rules
                .unstable_for(id, template_seed, config_fingerprint)
            {
                return Err(CompileError::RuleInstability { rule: id });
            }
        }
        if signature.contains(crate::registry::RULE_FALLBACK_EXEC)
            && self.rules.fallback_unstable_for(template_seed)
        {
            return Err(CompileError::RuleInstability {
                rule: crate::registry::RULE_FALLBACK_EXEC,
            });
        }
        Ok(())
    }

    /// Recursive-descent exploration: apply enabled transforms in promise
    /// order under the global budget. New expressions (and expressions of
    /// newly created groups) join the worklist; a second pass catches
    /// matches enabled by late arrivals. This is now the *reference*
    /// engine: production compiles run the byte-identical task-queue
    /// cascade in `crate::tasks`, and `tests/budget_equivalence.rs` holds
    /// the two together.
    ///
    /// Returns the set of transform rules that produced at least one rewrite
    /// — the "fired" trace fact `crate::delta` uses to decide whether
    /// disabling a transform can be replayed without re-exploring (a rule
    /// that never fired consumed no budget, so removing it leaves the trace
    /// bit-identical).
    fn explore(&self, memo: &mut Memo, config: &RuleConfig) -> RuleBits {
        let transforms: Vec<(RuleId, crate::registry::TransformKind, RuleBits)> = self
            .rules
            .transforms_by_promise()
            .into_iter()
            .filter(|r| config.enabled(r.id))
            .map(|r| {
                let RuleBehavior::Transform(kind) = r.behavior else {
                    unreachable!()
                };
                let mut bit = RuleBits::empty();
                bit.insert(r.id);
                (r.id, kind, bit)
            })
            .collect();
        let mut fired = RuleBits::empty();
        let mut budget = self.opts.max_transform_applications;
        for _pass in 0..self.opts.exploration_passes {
            let mut worklist: VecDeque<(GroupId, usize)> = memo
                .group_ids()
                .flat_map(|g| (0..memo.group(g).lexprs.len()).map(move |e| (g, e)))
                .collect();
            while let Some((g, e)) = worklist.pop_front() {
                if budget == 0 {
                    return fired;
                }
                for (rule_id, kind, bit) in &transforms {
                    if budget == 0 {
                        return fired;
                    }
                    let rewrites = apply_transform(*kind, memo, g, e);
                    if !rewrites.is_empty() {
                        fired.insert(*rule_id);
                    }
                    for node in rewrites {
                        if budget == 0 {
                            return fired;
                        }
                        budget -= 1;
                        let provenance = memo.group(g).lexprs[e].provenance.union(bit);
                        let groups_before = memo.group_count();
                        let (op, children) = memo.materialize(node, provenance);
                        // New interior groups need their seed expressions
                        // explored too.
                        for ng in groups_before..memo.group_count() {
                            worklist.push_back((GroupId(ng as u32), 0));
                        }
                        if let Some(idx) = memo.add_to_group(
                            g,
                            op,
                            children,
                            provenance,
                            self.opts.max_exprs_per_group,
                        ) {
                            worklist.push_back((g, idx));
                        }
                    }
                }
            }
        }
        fired
    }

    /// The implementation-rule context for a configuration (the policy rules
    /// it enables). Shared with `crate::delta`, whose re-implementation of
    /// dirty groups must see exactly the context a from-scratch compile
    /// would build.
    pub(crate) fn impl_context(&self, config: &RuleConfig, template_seed: u64) -> ImplContext<'_> {
        ImplContext {
            rules: &self.rules,
            opts: &self.opts,
            shuffle_elimination: config.enabled(RULE_SHUFFLE_ELIMINATION),
            compression: config.enabled(RULE_INTERMEDIATE_COMPRESSION),
            template_seed,
        }
    }

    /// The required fallback implementation rule.
    pub(crate) fn fallback_rule(&self) -> &crate::registry::RuleDef {
        self.rules
            .rules()
            .iter()
            .find(|r| matches!(r.behavior, RuleBehavior::FallbackImpl))
            .expect("registry always has the fallback rule")
    }

    /// Build one group's physical-expression list: the enabled
    /// implementation/parametric candidates of every logical expression (in
    /// registry order) plus the required fallback. This is the unit of work
    /// `crate::delta` redoes per dirty group, so it must stay the exact loop
    /// body of [`Optimizer::implement`].
    pub(crate) fn implement_group(
        &self,
        memo: &mut Memo,
        g: GroupId,
        config: &RuleConfig,
        ctx: &ImplContext<'_>,
        fallback: &crate::registry::RuleDef,
    ) -> Result<(), CompileError> {
        let n = memo.group(g).lexprs.len();
        let mut produced = Vec::new();
        for e in 0..n {
            let tag = memo.group(g).lexprs[e].op.tag();
            for rule in self.rules.impls_for(tag) {
                if !config.enabled(rule.id) {
                    continue;
                }
                if let Some(p) = implement_expr(rule, memo, g, e, ctx) {
                    produced.push(p);
                }
            }
            if let Some(p) = implement_expr(fallback, memo, g, e, ctx) {
                produced.push(p);
            }
        }
        if produced.is_empty() {
            let tag = memo.group(g).lexprs[0].op.tag().to_string();
            return Err(CompileError::NoImplementation { tag });
        }
        memo.group_mut(g).pexprs = produced;
        Ok(())
    }

    /// Implementation: every logical expression gets the enabled
    /// implementation/parametric candidates plus the required fallback.
    fn implement(
        &self,
        memo: &mut Memo,
        config: &RuleConfig,
        template_seed: u64,
    ) -> Result<(), CompileError> {
        let ctx = self.impl_context(config, template_seed);
        let fallback = self.fallback_rule();
        for g in memo.group_ids().collect::<Vec<_>>() {
            self.implement_group(memo, g, config, &ctx, fallback)?;
        }
        Ok(())
    }

    /// Memoized bottom-up best-cost computation. In-progress groups are
    /// treated as infinite cost, which safely breaks any pathological cycle.
    /// `pub(crate)` so `crate::delta` can re-cost only the groups whose
    /// [`Best`] entries a treatment invalidated — the memoization makes
    /// every clean group a cache hit.
    pub(crate) fn best_cost(&self, memo: &mut Memo, g: GroupId, visiting: &mut Vec<bool>) -> f64 {
        if let Some(b) = memo.group(g).best {
            return b.cost;
        }
        if visiting[g.index()] {
            return f64::INFINITY;
        }
        visiting[g.index()] = true;
        let out_stats = memo.group(g).stats;
        let n = memo.group(g).pexprs.len();
        let mut best = Best {
            cost: f64::INFINITY,
            pexpr: usize::MAX,
        };
        for i in 0..n {
            let (children, exchanges, pre_local, claimed, op) = {
                let p = &memo.group(g).pexprs[i];
                (
                    p.children.clone(),
                    p.exchanges.clone(),
                    p.pre_local.clone(),
                    p.claimed,
                    p.op.clone(),
                )
            };
            let mut total = 0.0;
            let mut edge_stats: Vec<NodeStats> = Vec::with_capacity(children.len());
            for (j, &c) in children.iter().enumerate() {
                total += self.best_cost(memo, c, visiting);
                let mut cstats = memo.group(c).stats;
                if let Some(pre) = pre_local[j] {
                    let (pc, reduced) = self.cost.pre_local_cost_and_rows(pre, &cstats, &out_stats);
                    total += pc;
                    cstats = reduced;
                }
                if let Some(spec) = &exchanges[j] {
                    // The consumer's IO knob scales its shuffle edges (e.g.
                    // variants that read compressed/compact shuffle input).
                    total += self.cost.exchange_cost(spec, &cstats) * claimed.io_mult;
                }
                edge_stats.push(cstats);
            }
            total += self.cost.local_cost(&op, &out_stats, &edge_stats, &claimed);
            if total < best.cost {
                best = Best {
                    cost: total,
                    pexpr: i,
                };
            }
        }
        visiting[g.index()] = false;
        memo.group_mut(g).best = Some(best);
        best.cost
    }

    /// Extraction: materialize the winning physical expressions into a
    /// [`PhysicalPlan`] with explicit Exchange / partial-reduction nodes,
    /// accumulate the exact estimated cost of the emitted plan (each shared
    /// group counted once), assemble the rule signature, and run the
    /// experimental-rule instability check. `pub(crate)` for `crate::delta`,
    /// which re-extracts a re-costed memo under the treatment's
    /// configuration fingerprint.
    pub(crate) fn extract(
        &self,
        memo: &Memo,
        roots: &[GroupId],
        template_seed: u64,
        config_fingerprint: u64,
    ) -> Result<Compiled, CompileError> {
        let mut plan = PhysicalPlan::new();
        let mut mapping: FxHashMap<GroupId, NodeId> = FxHashMap::default();
        let mut signature = RuleBits::empty();
        let mut est_cost = 0.0;
        let mut any_exchange = false;
        let mut any_elided = false;
        let mut any_compressed = false;
        let compression_io = self.rules.compression_actual_io(template_seed);

        for &root in roots {
            self.emit(
                memo,
                root,
                &mut plan,
                &mut mapping,
                &mut signature,
                &mut est_cost,
                &mut any_exchange,
                &mut any_elided,
                &mut any_compressed,
                compression_io,
            );
            let node = mapping[&root];
            plan.mark_output(node);
        }

        // Required bookkeeping rules always contribute.
        for id in [
            RULE_SCRIPT_STITCH,
            RULE_STATS_ANNOTATE,
            RULE_DEGREE_OF_PARALLELISM,
            RULE_PREDICATE_NORMALIZE,
            RULE_MEMO_DEDUP,
            RULE_PLAN_SERIALIZE,
        ] {
            signature.insert(id);
        }
        if any_exchange {
            signature.insert(RULE_EXCHANGE_PLACEMENT);
        }
        if any_elided {
            signature.insert(RULE_SHUFFLE_ELIMINATION);
        }
        if any_compressed {
            signature.insert(RULE_INTERMEDIATE_COMPRESSION);
        }

        // Experimental-rule instability (a contributing rule unstable for
        // this template) and fallback-path instability (the rarely-exercised
        // fallback implementation crashing): both depend on the assembled
        // signature only, so the delta pruner replays this exact check.
        self.plan_instability_check(&signature, template_seed, config_fingerprint)?;

        debug_assert!(plan.validate().is_ok(), "extractor must emit valid plans");
        Ok(Compiled {
            physical: plan,
            est_cost,
            signature,
            memo_groups: memo.group_count(),
            memo_exprs: memo.lexpr_count,
            template_seed,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        memo: &Memo,
        g: GroupId,
        plan: &mut PhysicalPlan,
        mapping: &mut FxHashMap<GroupId, NodeId>,
        signature: &mut RuleBits,
        est_cost: &mut f64,
        any_exchange: &mut bool,
        any_elided: &mut bool,
        any_compressed: &mut bool,
        compression_io: f64,
    ) {
        if mapping.contains_key(&g) {
            return;
        }
        let group = memo.group(g);
        let best = group.best.expect("costing ran before extraction");
        let pexpr = &group.pexprs[best.pexpr];
        let out_stats = group.stats;

        let mut child_nodes: Vec<NodeId> = Vec::with_capacity(pexpr.children.len());
        let mut edge_stats: Vec<NodeStats> = Vec::with_capacity(pexpr.children.len());
        for (j, &c) in pexpr.children.iter().enumerate() {
            self.emit(
                memo,
                c,
                plan,
                mapping,
                signature,
                est_cost,
                any_exchange,
                any_elided,
                any_compressed,
                compression_io,
            );
            let mut node = mapping[&c];
            let mut cstats = memo.group(c).stats;
            if let Some(pre) = pexpr.pre_local[j] {
                let (pc, reduced) = self.cost.pre_local_cost_and_rows(pre, &cstats, &out_stats);
                *est_cost += pc;
                let pre_op = match (pre, &pexpr.op) {
                    (PreLocal::PartialAgg, PhysicalOp::HashAggregate { group_by, aggs, .. }) => {
                        PhysicalOp::HashAggregate {
                            group_by: group_by.clone(),
                            aggs: aggs.clone(),
                            mode: scope_ir::AggMode::Partial,
                        }
                    }
                    (PreLocal::LocalTopK(k), PhysicalOp::TopNExec { keys, .. }) => {
                        PhysicalOp::TopNExec {
                            k,
                            keys: keys.clone(),
                        }
                    }
                    // Guarded by construction: `impls.rs` only attaches a
                    // pre-reduction to the operator it pairs with, so a
                    // mismatch here is plan corruption — fail loudly rather
                    // than silently emitting a no-op project.
                    (pre, op) => unreachable!(
                        "pre-reduction {pre:?} paired with {}; only \
                         PartialAgg→HashAggregate and LocalTopK→TopNExec exist",
                        op.tag()
                    ),
                };
                node = plan.add(PhysicalNode {
                    op: pre_op,
                    children: vec![node],
                    stats: reduced,
                    tuning: pexpr.actual,
                });
                cstats = reduced;
            }
            if let Some(spec) = &pexpr.exchanges[j] {
                *est_cost += self.cost.exchange_cost(spec, &cstats) * pexpr.claimed.io_mult;
                *any_exchange = true;
                // True bytes moved combine the compression policy's realized
                // ratio with the consumer's actual IO knob.
                let mut io_mult = pexpr.actual.io_mult;
                let cpu_mult = if spec.compressed {
                    *any_compressed = true;
                    io_mult *= compression_io;
                    1.1
                } else {
                    1.0
                };
                let tuning = PhysicalTuning {
                    cpu_mult,
                    io_mult,
                    parallelism_mult: 1.0,
                };
                node = plan.add(PhysicalNode {
                    op: PhysicalOp::Exchange {
                        scheme: spec.scheme.clone(),
                    },
                    children: vec![node],
                    stats: cstats,
                    tuning,
                });
            }
            child_nodes.push(node);
            edge_stats.push(cstats);
        }
        *est_cost += self
            .cost
            .local_cost(&pexpr.op, &out_stats, &edge_stats, &pexpr.claimed);
        if pexpr.elided_exchange {
            *any_elided = true;
        }
        *signature = signature.union(&pexpr.provenance);
        let node = plan.add(PhysicalNode {
            op: pexpr.op.clone(),
            children: child_nodes,
            stats: out_stats,
            tuning: pexpr.actual,
        });
        mapping.insert(g, node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleFlip;
    use scope_lang::{bind_script, Catalog};

    const SCRIPT: &str = r#"
        sales = EXTRACT user:int, item:int, spend:float FROM "store/sales";
        users = EXTRACT user:int, region:string FROM "store/users";
        big   = SELECT user, spend FROM sales WHERE spend > 100;
        j     = SELECT * FROM big AS b JOIN users AS u ON b.user == u.user;
        agg   = SELECT region, SUM(spend) AS total FROM j GROUP BY region;
        OUTPUT agg TO "out/by_region";
        OUTPUT big TO "out/big_sales";
    "#;

    fn plan() -> scope_ir::LogicalPlan {
        bind_script(SCRIPT, &Catalog::default()).unwrap()
    }

    /// The fired-transform trace — the exploration fact `crate::delta`
    /// prices flips against — must agree between the task-queue engine
    /// (what `compile_full` records into every `BaseMemo`) and the
    /// recursive reference engine's own exploration.
    /// The fired-transform trace — the exploration fact `crate::delta`
    /// prices flips against — must agree between the task-queue engine
    /// (what `compile_full` records into every `BaseMemo`) and the
    /// recursive reference engine's own exploration.
    #[test]
    fn dbg_fired_trace() {
        let opt = Optimizer::default();
        let config = opt.default_config();
        let big = r#"
        t  = EXTRACT a:int, b:float FROM "store/t";
        f1 = SELECT a, b FROM t WHERE b > 1;
        f2 = SELECT a, b FROM f1 WHERE a < 10;
        f3 = SELECT a, b FROM f2 WHERE b < 100;
        OUTPUT f3 TO "out/f";
    "#;
        let p = bind_script(big, &Catalog::default()).unwrap();
        let via_tasks = opt.compile_full(&p, &config).unwrap();
        eprintln!(
            "tasks fired: {:?}",
            via_tasks.fired_transforms.iter().collect::<Vec<_>>()
        );
        let mut memo = Memo::new();
        memo.copy_in(&p);
        let transforms: Vec<_> = opt
            .rules
            .transforms_by_promise()
            .into_iter()
            .filter(|r| config.enabled(r.id))
            .map(|r| r.id)
            .collect();
        eprintln!("enabled transforms: {:?}", transforms);
        eprintln!(
            "opts passes={} max_apps={}",
            opt.opts.exploration_passes, opt.opts.max_transform_applications
        );
        let recursive_fired = opt.explore(&mut memo, &config);
        eprintln!(
            "recursive fired: {:?}",
            recursive_fired.iter().collect::<Vec<_>>()
        );
        let rec = opt.compile_recursive(&p, &config).unwrap();
        eprintln!("rec sig: {:?}", rec.signature.iter().collect::<Vec<_>>());
    }

    #[test]
    fn task_engine_fired_trace_matches_recursive_explore() {
        // Stacked filters over a projection: a shape where the filter
        // transforms (merge / push-through-project) genuinely fire, so the
        // equality below is not vacuously empty-vs-empty.
        let script = r#"
            t  = EXTRACT a:int, b:float FROM "store/t";
            f1 = SELECT a, b FROM t WHERE b > 1;
            f2 = SELECT a, b FROM f1 WHERE a < 10;
            f3 = SELECT a, b FROM f2 WHERE b < 100;
            OUTPUT f3 TO "out/f";
        "#;
        let p = bind_script(script, &Catalog::default()).unwrap();
        let opt = Optimizer::default();
        let config = opt.default_config();
        let via_tasks = opt.compile_full(&p, &config).unwrap();
        assert!(
            !via_tasks.fired_transforms.is_empty(),
            "some transform must fire for this shape"
        );
        let mut memo = Memo::new();
        memo.copy_in(&p);
        let recursive_fired = opt.explore(&mut memo, &config);
        assert_eq!(via_tasks.fired_transforms, recursive_fired);
    }

    #[test]
    fn compiles_default_config_to_valid_physical_plan() {
        let opt = Optimizer::default();
        let c = opt.compile(&plan(), &opt.default_config()).unwrap();
        c.physical.validate().unwrap();
        assert!(c.est_cost.is_finite() && c.est_cost > 0.0);
        assert_eq!(c.physical.outputs().len(), 2);
        assert!(
            c.physical.exchange_count() > 0,
            "distributed plan has exchanges"
        );
    }

    #[test]
    fn compilation_is_deterministic() {
        let opt = Optimizer::default();
        let a = opt.compile(&plan(), &opt.default_config()).unwrap();
        let b = opt.compile(&plan(), &opt.default_config()).unwrap();
        assert_eq!(a.physical, b.physical);
        assert!((a.est_cost - b.est_cost).abs() < 1e-9);
        assert_eq!(a.signature, b.signature);
    }

    #[test]
    fn signature_contains_required_and_impl_rules() {
        let opt = Optimizer::default();
        let c = opt.compile(&plan(), &opt.default_config()).unwrap();
        assert!(c.signature.contains(RULE_SCRIPT_STITCH));
        assert!(c.signature.contains(RULE_PLAN_SERIALIZE));
        assert!(c.signature.contains(RULE_EXCHANGE_PLACEMENT));
        // At least one implementation-layer rule fired: a concrete impl rule
        // (26..=41) or a parametric physical-variant rule (44..).
        assert!(
            c.signature.iter().any(|r| r.0 >= 26),
            "{:?}",
            c.signature.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn some_rule_flip_changes_the_plan() {
        let opt = Optimizer::default();
        let default = opt.default_config();
        let base = opt.compile(&plan(), &default).unwrap();
        let mut changed = 0;
        for id in base.signature.iter() {
            if !opt.rules().rule(id).flippable() {
                continue;
            }
            let cfg = default.with_flip(RuleFlip {
                rule: id,
                enable: !default.enabled(id),
            });
            if let Ok(c) = opt.compile(&plan(), &cfg) {
                if c.physical != base.physical {
                    changed += 1;
                }
            }
        }
        assert!(
            changed > 0,
            "flipping signature rules must be able to change the plan"
        );
    }

    #[test]
    fn disabling_hash_join_falls_back_to_other_join() {
        let opt = Optimizer::default();
        let default = opt.default_config();
        let hj = opt
            .rules()
            .rules()
            .iter()
            .find(|r| r.name == "HashJoinImpl")
            .unwrap()
            .id;
        let cfg = default.with_flip(RuleFlip {
            rule: hj,
            enable: false,
        });
        let c = opt.compile(&plan(), &cfg).unwrap();
        c.physical.validate().unwrap();
        // The plan still has a join of some flavor.
        let joins = c.physical.count_tag("HashJoin")
            + c.physical.count_tag("MergeJoin")
            + c.physical.count_tag("BroadcastJoin");
        assert!(joins >= 1);
    }

    #[test]
    fn est_cost_counts_shared_groups_once() {
        // Two outputs share `big`; the shared scan+filter should not be
        // double charged. Compare against a single-output version.
        let opt = Optimizer::default();
        let one_output = r#"
            sales = EXTRACT user:int, item:int, spend:float FROM "store/sales";
            big   = SELECT user, spend FROM sales WHERE spend > 100;
            OUTPUT big TO "out/big_sales";
        "#;
        let two_outputs = r#"
            sales = EXTRACT user:int, item:int, spend:float FROM "store/sales";
            big   = SELECT user, spend FROM sales WHERE spend > 100;
            OUTPUT big TO "out/a";
            OUTPUT big TO "out/b";
        "#;
        let c1 = opt
            .compile(
                &bind_script(one_output, &Catalog::default()).unwrap(),
                &opt.default_config(),
            )
            .unwrap();
        let c2 = opt
            .compile(
                &bind_script(two_outputs, &Catalog::default()).unwrap(),
                &opt.default_config(),
            )
            .unwrap();
        // Second output adds only one extra OutputExec, far less than 2x.
        assert!(
            c2.est_cost < c1.est_cost * 1.7,
            "{} vs {}",
            c1.est_cost,
            c2.est_cost
        );
    }

    #[test]
    fn instability_surfaces_as_compile_error_for_some_flip() {
        let opt = Optimizer::default();
        let default = opt.default_config();
        // Find an experimental parametric rule that is unstable for this
        // template and applicable to an operator in the plan.
        let p = plan();
        let seed = p.template_id().0;
        let mut found = None;
        for r in opt.rules().rules() {
            if let crate::registry::RuleBehavior::Parametric(spec) = &r.behavior {
                let cfg = default.with_flip(RuleFlip {
                    rule: r.id,
                    enable: true,
                });
                if opt
                    .rules()
                    .unstable_for(r.id, seed, cfg.bits().fingerprint())
                    && ["Extract", "Filter", "Join", "Aggregate", "Output"].contains(&spec.target)
                {
                    found = Some(r.id);
                    break;
                }
            }
        }
        let Some(rule) = found else {
            // Statistically rare with 212 parametric rules, but tolerate.
            return;
        };
        let cfg = default.with_flip(RuleFlip { rule, enable: true });
        match opt.compile(&p, &cfg) {
            Err(CompileError::RuleInstability { rule: r }) => assert_eq!(r, rule),
            // The unstable rule may simply lose on cost; that is fine.
            Ok(c) => assert!(!c.signature.contains(rule)),
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}

//! The explicit task-queue Cascades engine: anytime optimization under a
//! [`CompileBudget`].
//!
//! # Task cascade
//!
//! The recursive exploration of `crate::search` is restructured as four
//! task kinds over one deterministic deque (optd's task cascade, scaled to
//! this registry):
//!
//! ```text
//!   ExploreGroup(g)        — seed of a pass: fan out ExploreExpr(g, e) for
//!                            every logical expression the group holds when
//!                            the task runs (pushed to the FRONT, in order)
//!   ExploreExpr(g, e)      — fan out ApplyRule(g, e, t) for every enabled
//!                            transform, in descending promise order
//!                            (pushed to the FRONT, so they pop in order)
//!   ApplyRule(g, e, t)     — run one transform; materialize its rewrites;
//!                            discovered work (new interior groups, new
//!                            expressions of g) joins the BACK of the queue
//!   ImplementGroup(g)      — implementation epilogue: build the group's
//!                            physical candidates (impl/parametric rules in
//!                            registry order + the required fallback)
//! ```
//!
//! Front-expansion for fan-out plus back-insertion for discovered work
//! makes the queue pop in exactly the order the recursive engine visited
//! `(group, expr)` pairs, so at unlimited budget the memo mutation sequence
//! — and therefore every compiled artifact — is byte-identical to the
//! recursive reference engine ([`Optimizer::compile_recursive`] keeps that
//! engine alive for the differential tests in `tests/budget_equivalence.rs`).
//!
//! # Budget semantics
//!
//! [`CompileBudget`] bounds *exploration* tasks: the budget is checked when
//! an ExploreGroup/ExploreExpr/ApplyRule task is popped, and on exhaustion
//! the remaining exploration queue is dropped and the engine proceeds
//! straight to the epilogue. ImplementGroup tasks, costing, and extraction
//! always run: every group holds at least its copied-in logical expression
//! and the required fallback rule implements every operator, so anytime
//! extraction from a partially explored memo is always a valid executable
//! plan. The result is tagged [`BudgetOutcome::Truncated`] with the number
//! of dropped exploration tasks (later passes that were never seeded are
//! not counted). The pre-existing rewrite budget
//! (`SearchOptions::max_transform_applications`) is a *search heuristic*,
//! not an interruption: exhausting it is still [`BudgetOutcome::Complete`].
//!
//! # Anytime monotonicity
//!
//! Truncation only drops the tail of a deterministic task sequence, so the
//! memo at a smaller budget is a *prefix* of the memo at a larger one:
//! every group has a subset of the expressions, hence a subset of the
//! physical candidates, hence a group-best cost that can only decrease as
//! the budget grows. [`BudgetedCompile::objective`] (the sum of root-group
//! best costs) is therefore monotonically non-increasing in the budget —
//! the property `budget_monotonicity.rs` proves. `Compiled::est_cost` is
//! *not* used for that contract: it prices shared groups once, and less
//! sharing in a better-searched plan can raise it.
//!
//! # Cache-key soundness
//!
//! A compile cache keyed on `(plan, config)` may only serve results that do
//! not depend on the budget. We take the conservative side of the issue's
//! dichotomy: **finite-budget compiles are uncacheable** — they bypass the
//! compile cache and the delta compiler entirely
//! ([`crate::cache::CachingOptimizer::compile_shedding`]) and always run
//! this engine from scratch. Equivalently, the budget is morally part of
//! the cache key and only the unlimited point is ever populated. Delta
//! pricing is also only sound at unlimited budget (a base memo frozen at
//! one truncation point cannot replay another), so finite budgets skip it.

use crate::config::{RuleBits, RuleConfig, RuleId};
use crate::memo::{GroupId, Memo};
use crate::registry::{RuleBehavior, TransformKind};
use crate::rules::apply_transform;
use crate::search::{CompileError, Compiled, Optimizer};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Work limit of one compile. The default is unlimited: the engine then
/// behaves exactly like the recursive reference engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileBudget {
    /// Maximum exploration tasks (ExploreGroup + ExploreExpr + ApplyRule)
    /// the engine may execute; `None` is unlimited. Implementation,
    /// costing, and extraction are a mandatory epilogue and never count
    /// against the budget.
    pub max_tasks: Option<u64>,
}

impl Default for CompileBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl CompileBudget {
    /// No limit — the engine runs to completion.
    #[must_use]
    pub const fn unlimited() -> Self {
        Self { max_tasks: None }
    }

    /// Allow at most `n` exploration tasks.
    #[must_use]
    pub const fn tasks(n: u64) -> Self {
        Self { max_tasks: Some(n) }
    }

    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_tasks.is_none()
    }

    /// Parse the `QO_COMPILE_BUDGET` / `--compile-budget` knob: a positive
    /// task count, or `0`/`unlimited`/`off`/empty for no limit.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value.trim() {
            "" | "0" | "unlimited" | "off" => Ok(Self::unlimited()),
            n => n
                .parse::<u64>()
                .map(Self::tasks)
                .map_err(|_| format!("invalid compile budget {n:?} (want a task count or 0)")),
        }
    }
}

/// How a budgeted compile ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetOutcome {
    /// Exploration ran to completion; the result is byte-identical to an
    /// unlimited compile.
    Complete,
    /// The task budget tripped mid-exploration; the plan was extracted from
    /// the partially explored memo. `tasks_remaining` counts the
    /// exploration tasks still queued when the budget tripped (seed tasks
    /// of later passes are not yet materialized and therefore not counted).
    Truncated { tasks_remaining: u64 },
}

impl BudgetOutcome {
    #[must_use]
    pub fn is_truncated(&self) -> bool {
        matches!(self, BudgetOutcome::Truncated { .. })
    }
}

/// A successful budgeted compile: the anytime plan plus engine telemetry.
#[derive(Debug, Clone)]
pub struct BudgetedCompile {
    pub compiled: Compiled,
    pub outcome: BudgetOutcome,
    /// Tasks the engine executed (exploration + implementation epilogue).
    pub tasks_executed: u64,
    /// Sum of root-group best costs — the anytime objective the budget
    /// monotonicity contract is stated over. Unlike `Compiled::est_cost`
    /// (which prices shared groups once), this counts a shared group per
    /// consumer and is monotonically non-increasing in the budget.
    pub objective: f64,
}

/// Shared atomic tallies of budgeted-compile outcomes — the load-shedding
/// counters the pipeline surfaces in `DailyReport` / `FleetMetrics`. Only
/// finite-budget compiles are recorded (unlimited compiles can never shed).
#[derive(Debug, Default)]
pub struct BudgetCounters {
    complete: AtomicU64,
    truncated: AtomicU64,
}

impl BudgetCounters {
    /// Record one finite-budget compile outcome. Failed compiles
    /// (rule-instability replays) carry no outcome and are not counted.
    pub fn record(&self, result: &Result<BudgetedCompile, CompileError>) {
        if let Ok(b) = result {
            match b.outcome {
                BudgetOutcome::Complete => self.complete.fetch_add(1, Ordering::Relaxed),
                BudgetOutcome::Truncated { .. } => self.truncated.fetch_add(1, Ordering::Relaxed),
            };
        }
    }

    #[must_use]
    pub fn stats(&self) -> BudgetStats {
        BudgetStats {
            complete: self.complete.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of [`BudgetCounters`]: monotonic totals, differenced per day by
/// the pipeline exactly like the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetStats {
    /// Finite-budget compiles whose exploration ran to completion.
    pub complete: u64,
    /// Finite-budget compiles truncated by the task budget (shed work).
    pub truncated: u64,
}

impl BudgetStats {
    /// Counters accumulated since an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: &BudgetStats) -> BudgetStats {
        BudgetStats {
            complete: self.complete - earlier.complete,
            truncated: self.truncated - earlier.truncated,
        }
    }

    #[must_use]
    pub fn total(&self) -> u64 {
        self.complete + self.truncated
    }
}

/// One unit of engine work. Exploration tasks (the first three) are
/// budget-gated; ImplementGroup is the mandatory epilogue.
enum Task {
    ExploreGroup(GroupId),
    ExploreExpr(GroupId, usize),
    /// `usize` indexes the promise-ordered enabled-transform list.
    ApplyRule(GroupId, usize, usize),
    ImplementGroup(GroupId),
}

/// The task-queue engine over one memo. Holds the running task count so
/// callers (delta replays, the budget bench) can read how much work a
/// compile actually did.
pub(crate) struct TaskEngine<'a> {
    opt: &'a Optimizer,
    pub(crate) tasks_executed: u64,
}

/// Everything one engine run produces beyond the [`Compiled`] artifact.
pub(crate) struct EngineRun {
    pub(crate) compiled: Compiled,
    pub(crate) fired_transforms: RuleBits,
    pub(crate) outcome: BudgetOutcome,
    pub(crate) objective: f64,
}

impl<'a> TaskEngine<'a> {
    pub(crate) fn new(opt: &'a Optimizer) -> Self {
        Self {
            opt,
            tasks_executed: 0,
        }
    }

    /// Full cascade over a memo already seeded by `Memo::copy_in`:
    /// exploration under the budget, then the mandatory implement / cost /
    /// extract epilogue.
    pub(crate) fn run(
        &mut self,
        memo: &mut Memo,
        roots: &[GroupId],
        config: &RuleConfig,
        template_seed: u64,
        budget: CompileBudget,
    ) -> Result<EngineRun, CompileError> {
        let (fired_transforms, outcome) = self.explore(memo, config, budget);
        self.implement_all(memo, config, template_seed)?;
        let mut visiting = vec![false; memo.group_count()];
        for &root in roots {
            self.opt.best_cost(memo, root, &mut visiting);
        }
        let objective = roots
            .iter()
            .map(|r| memo.group(*r).best.map_or(f64::INFINITY, |b| b.cost))
            .sum();
        let compiled = self
            .opt
            .extract(memo, roots, template_seed, config.bits().fingerprint())?;
        Ok(EngineRun {
            compiled,
            fired_transforms,
            outcome,
            objective,
        })
    }

    /// Exploration cascade. Reproduces the recursive engine's worklist
    /// order exactly (see the module docs for the queue discipline); the
    /// rewrite budget `max_transform_applications` halts all passes exactly
    /// where the recursive engine returned.
    fn explore(
        &mut self,
        memo: &mut Memo,
        config: &RuleConfig,
        budget: CompileBudget,
    ) -> (RuleBits, BudgetOutcome) {
        let transforms: Vec<(RuleId, TransformKind, RuleBits)> = self
            .opt
            .rules()
            .transforms_by_promise()
            .into_iter()
            .filter(|r| config.enabled(r.id))
            .map(|r| {
                let RuleBehavior::Transform(kind) = r.behavior else {
                    unreachable!()
                };
                let mut bit = RuleBits::empty();
                bit.insert(r.id);
                (r.id, kind, bit)
            })
            .collect();
        let opts = self.opt.options();
        let mut fired = RuleBits::empty();
        let mut rewrites_left = opts.max_transform_applications;
        let mut queue: VecDeque<Task> = VecDeque::new();
        'passes: for _pass in 0..opts.exploration_passes {
            queue.extend(memo.group_ids().map(Task::ExploreGroup));
            while let Some(task) = queue.pop_front() {
                if let Some(max) = budget.max_tasks {
                    if self.tasks_executed >= max {
                        // The popped task goes unexecuted too.
                        let tasks_remaining = queue.len() as u64 + 1;
                        return (fired, BudgetOutcome::Truncated { tasks_remaining });
                    }
                }
                self.tasks_executed += 1;
                match task {
                    Task::ExploreGroup(g) => {
                        // A group can only grow while its own tasks run, so
                        // expanding at pop time sees exactly the expressions
                        // the pass seed enumerated.
                        for e in (0..memo.group(g).lexprs.len()).rev() {
                            queue.push_front(Task::ExploreExpr(g, e));
                        }
                    }
                    Task::ExploreExpr(g, e) => {
                        if rewrites_left == 0 {
                            break 'passes;
                        }
                        for t in (0..transforms.len()).rev() {
                            queue.push_front(Task::ApplyRule(g, e, t));
                        }
                    }
                    Task::ApplyRule(g, e, t) => {
                        if rewrites_left == 0 {
                            break 'passes;
                        }
                        let (rule_id, kind, bit) = &transforms[t];
                        let rewrites = apply_transform(*kind, memo, g, e);
                        if !rewrites.is_empty() {
                            fired.insert(*rule_id);
                        }
                        for node in rewrites {
                            if rewrites_left == 0 {
                                break 'passes;
                            }
                            rewrites_left -= 1;
                            let provenance = memo.group(g).lexprs[e].provenance.union(bit);
                            let groups_before = memo.group_count();
                            let (op, children) = memo.materialize(node, provenance);
                            // New interior groups need their seed
                            // expressions explored too.
                            for ng in groups_before..memo.group_count() {
                                queue.push_back(Task::ExploreExpr(GroupId(ng as u32), 0));
                            }
                            if let Some(idx) = memo.add_to_group(
                                g,
                                op,
                                children,
                                provenance,
                                opts.max_exprs_per_group,
                            ) {
                                queue.push_back(Task::ExploreExpr(g, idx));
                            }
                        }
                    }
                    // Epilogue tasks never enter the exploration queue.
                    Task::ImplementGroup(_) => unreachable!(),
                }
            }
        }
        (fired, BudgetOutcome::Complete)
    }

    /// Implementation epilogue: one ImplementGroup task per memo group, in
    /// group-id order — never budget-gated, so extraction always has a
    /// physical candidate (the required fallback) for every group.
    fn implement_all(
        &mut self,
        memo: &mut Memo,
        config: &RuleConfig,
        template_seed: u64,
    ) -> Result<(), CompileError> {
        let groups: Vec<GroupId> = memo.group_ids().collect();
        let mut queue: VecDeque<Task> = groups.into_iter().map(Task::ImplementGroup).collect();
        self.drain_implement(memo, &mut queue, config, template_seed)
    }

    /// Delta replay entry: re-implement exactly the invalidated groups as
    /// ImplementGroup tasks, in group-id order. This is the whole work of a
    /// delta recompile — `crate::delta` forked the memo, this replays the
    /// dirty part of the implementation cascade against the treatment.
    pub(crate) fn replay_implement(
        &mut self,
        memo: &mut Memo,
        dirty: &[bool],
        config: &RuleConfig,
        template_seed: u64,
    ) -> Result<(), CompileError> {
        let mut queue: VecDeque<Task> = dirty
            .iter()
            .enumerate()
            .filter(|(_, d)| **d)
            .map(|(gi, _)| Task::ImplementGroup(GroupId(gi as u32)))
            .collect();
        self.drain_implement(memo, &mut queue, config, template_seed)
    }

    fn drain_implement(
        &mut self,
        memo: &mut Memo,
        queue: &mut VecDeque<Task>,
        config: &RuleConfig,
        template_seed: u64,
    ) -> Result<(), CompileError> {
        let ctx = self.opt.impl_context(config, template_seed);
        let fallback = self.opt.fallback_rule();
        while let Some(task) = queue.pop_front() {
            let Task::ImplementGroup(g) = task else {
                unreachable!()
            };
            self.tasks_executed += 1;
            self.opt.implement_group(memo, g, config, &ctx, fallback)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_lang::{bind_script, Catalog};

    const SCRIPT: &str = r#"
        sales = EXTRACT user:int, item:int, spend:float FROM "store/sales";
        users = EXTRACT user:int, region:string FROM "store/users";
        big   = SELECT user, spend FROM sales WHERE spend > 100;
        j     = SELECT * FROM big AS b JOIN users AS u ON b.user == u.user;
        agg   = SELECT region, SUM(spend) AS total FROM j GROUP BY region;
        OUTPUT agg TO "out/by_region";
        OUTPUT big TO "out/big_sales";
    "#;

    fn plan() -> scope_ir::LogicalPlan {
        bind_script(SCRIPT, &Catalog::default()).unwrap()
    }

    #[test]
    fn budget_parse_round_trips() {
        assert_eq!(
            CompileBudget::parse("").unwrap(),
            CompileBudget::unlimited()
        );
        assert_eq!(
            CompileBudget::parse("0").unwrap(),
            CompileBudget::unlimited()
        );
        assert_eq!(
            CompileBudget::parse("unlimited").unwrap(),
            CompileBudget::unlimited()
        );
        assert_eq!(
            CompileBudget::parse("128").unwrap(),
            CompileBudget::tasks(128)
        );
        assert!(CompileBudget::parse("lots").is_err());
    }

    #[test]
    fn unlimited_budget_matches_recursive_engine() {
        let opt = Optimizer::default();
        let config = opt.default_config();
        let budgeted = opt
            .compile_budgeted(&plan(), &config, CompileBudget::unlimited())
            .unwrap();
        let recursive = opt.compile_recursive(&plan(), &config).unwrap();
        assert_eq!(budgeted.outcome, BudgetOutcome::Complete);
        assert_eq!(budgeted.compiled, recursive);
        assert_eq!(
            budgeted.compiled.est_cost.to_bits(),
            recursive.est_cost.to_bits()
        );
    }

    #[test]
    fn every_task_prefix_extracts_a_valid_plan() {
        let opt = Optimizer::default();
        let config = opt.default_config();
        let full = opt
            .compile_budgeted(&plan(), &config, CompileBudget::unlimited())
            .unwrap();
        let mut last_objective = f64::INFINITY;
        for b in 0..=full.tasks_executed {
            let anytime = opt
                .compile_budgeted(&plan(), &config, CompileBudget::tasks(b))
                .unwrap();
            anytime.compiled.physical.validate().unwrap();
            assert_eq!(
                anytime.compiled.physical.outputs().len(),
                plan().outputs().len()
            );
            assert!(
                anytime.objective <= last_objective,
                "objective regressed at budget {b}: {} > {}",
                anytime.objective,
                last_objective
            );
            last_objective = anytime.objective;
            if b >= full.tasks_executed {
                assert_eq!(anytime.outcome, BudgetOutcome::Complete);
            }
        }
    }

    #[test]
    fn truncated_outcome_reports_remaining_work() {
        let opt = Optimizer::default();
        let config = opt.default_config();
        let tight = opt
            .compile_budgeted(&plan(), &config, CompileBudget::tasks(3))
            .unwrap();
        let BudgetOutcome::Truncated { tasks_remaining } = tight.outcome else {
            panic!("3 tasks cannot complete exploration: {:?}", tight.outcome)
        };
        assert!(tasks_remaining > 0);
        assert_eq!(tight.tasks_executed - tight.compiled.memo_groups as u64, 3);
    }

    #[test]
    fn budget_counters_tally_outcomes() {
        let opt = Optimizer::default();
        let config = opt.default_config();
        let counters = BudgetCounters::default();
        counters.record(&opt.compile_budgeted(&plan(), &config, CompileBudget::tasks(3)));
        counters.record(&opt.compile_budgeted(&plan(), &config, CompileBudget::unlimited()));
        counters.record(&Err(CompileError::Invalid("x".into())));
        let stats = counters.stats();
        assert_eq!(
            stats,
            BudgetStats {
                complete: 1,
                truncated: 1
            }
        );
        assert_eq!(stats.total(), 2);
        assert_eq!(
            stats.since(&BudgetStats {
                complete: 1,
                truncated: 0
            }),
            BudgetStats {
                complete: 0,
                truncated: 1
            }
        );
    }
}

//! The Cascades memo: groups of logically-equivalent expressions with
//! dual statistics, natural physical properties, and provenance tracking.
//!
//! Provenance is the mechanism behind *rule signatures* (paper §2.1): every
//! expression records the set of rules on the rewrite path that produced it,
//! so the winning plan's union of provenance bits is exactly "the rules that
//! directly contributed to the plan".
//!
//! # Invariants
//!
//! The search (`crate::search`) and the delta compiler (`crate::delta`) both
//! lean on a small set of structural invariants:
//!
//! * **Append-only growth.** Groups and logical expressions are only ever
//!   added, never removed or reordered, and a [`GroupId`] or expression
//!   index stays valid for the memo's lifetime. This is what makes rewrite
//!   production *monotone*: an expression set that yields no rewrites for a
//!   transform at the final memo state yielded none at any earlier state
//!   (every earlier state is a prefix), which the delta pruner exploits.
//! * **Derived metadata is intern-time-final.** A group's [`Schema`],
//!   [`NodeStats`], and [`Dist`] are computed from its *first* expression
//!   when the group is interned and never revised — equivalent expressions
//!   added later share them by the group equivalence contract (rewrites are
//!   cardinality-preserving on the group's output).
//! * **Physical children mirror logical children.** Every [`PExpr`] built by
//!   `crate::impls` copies its logical expression's child-group list
//!   verbatim, so the logical edges are the complete group-dependency graph
//!   — the delta compiler derives its invalidation (reverse-edge) closure
//!   from them alone.
//! * **[`Best`] is a pure function of `pexprs` + children's `Best`.** Each
//!   entry caches the first-index minimum over the group's physical
//!   expressions, priced with its children's best costs; clearing the entry
//!   and re-running `best_cost` always reproduces it. Delta compilation
//!   clears exactly the entries whose inputs a rule flip touched.

use crate::config::{RuleBits, RuleId};
use rustc_hash::FxHashMap;
use scope_ir::ids::stable_hash64;
use scope_ir::logical::{JoinKind, LogicalOp, LogicalPlan};
use scope_ir::physical::{Partitioning, PhysicalOp, PhysicalTuning};
use scope_ir::schema::{Column, DataType, Schema};
use scope_ir::stats::{DualStats, NodeStats};
use scope_ir::NodeId;
use std::fmt;

/// Index of a group in the memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

impl GroupId {
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Natural data distribution a group's output arrives in, used by exchange
/// placement (and its elimination policy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dist {
    Random,
    /// Hash-partitioned on these output column positions.
    Hash(Vec<usize>),
    /// Range-partitioned + sorted on these output column positions.
    Sorted(Vec<usize>),
    /// Single partition.
    Single,
}

/// A logical expression in the memo: an operator over child groups.
#[derive(Debug, Clone)]
pub struct MExpr {
    pub op: LogicalOp,
    pub children: Vec<GroupId>,
    /// Rules on the rewrite path that produced this expression: the parent
    /// expression's provenance plus the rule that fired, accumulated
    /// transitively from the original plan's expressions (which carry
    /// [`RuleBits::empty`]). When this expression is implemented, the
    /// resulting [`PExpr`] inherits these bits plus the implementing rule —
    /// and the winning plan's union of them is the *rule signature*
    /// (paper §2.1). Note the converse does **not** hold: a rule absent from
    /// every provenance set may still have fired (its rewrites can be
    /// rejected by dedup or the per-group cap after consuming budget), which
    /// is why the delta compiler tracks fired transforms separately.
    pub provenance: RuleBits,
}

/// An exchange on one input edge of a physical expression.
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeSpec {
    pub scheme: Partitioning,
    /// Range exchanges deliver sorted runs (adds a sort cost component).
    pub sorted: bool,
    /// Intermediate-compression policy applied to this edge.
    pub compressed: bool,
}

/// Local pre-reduction applied on the producer side of an exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PreLocal {
    /// Partial (local) aggregation before the shuffle.
    PartialAgg,
    /// Local top-k before the gather.
    LocalTopK(u64),
}

/// A physical expression: an implementation choice for one logical
/// expression, with per-edge exchanges and dual tuning.
#[derive(Debug, Clone)]
pub struct PExpr {
    pub op: PhysicalOp,
    pub children: Vec<GroupId>,
    /// Per-child-edge exchange requirement (None = pipelined locally).
    pub exchanges: Vec<Option<ExchangeSpec>>,
    /// Per-child-edge producer-side pre-reduction.
    pub pre_local: Vec<Option<PreLocal>>,
    /// Tuning the cost model sees.
    pub claimed: PhysicalTuning,
    /// Tuning the runtime simulator sees (per-template truth).
    pub actual: PhysicalTuning,
    /// Implementation rule that produced this expression.
    pub rule: RuleId,
    /// Provenance inherited from the implemented logical expression plus
    /// `rule` itself.
    pub provenance: RuleBits,
    /// Whether the `ShuffleElimination` policy removed at least one input
    /// exchange from this expression (credits the policy rule in the
    /// signature).
    pub elided_exchange: bool,
}

/// The winner of a group after costing: the **first** index among the
/// group's `pexprs` achieving the minimum total cost (ties never displace an
/// earlier winner — the tie-break the delta compiler's soundness argument
/// relies on), with `cost` covering the whole subtree below it, children's
/// best costs included.
#[derive(Debug, Clone, Copy)]
pub struct Best {
    pub cost: f64,
    pub pexpr: usize,
}

/// One memo group: a set of logically equivalent expressions (`lexprs`, all
/// producing the same output relation), their physical implementation
/// candidates (`pexprs`, rebuilt per rule configuration), and the costing
/// winner (`best`, `None` until `best_cost` runs or after a delta pass
/// invalidates it). `schema`/`stats`/`dist` are fixed when the group is
/// interned (see the module-level invariants).
#[derive(Debug, Clone)]
pub struct Group {
    pub schema: Schema,
    pub stats: NodeStats,
    pub dist: Dist,
    pub lexprs: Vec<MExpr>,
    pub pexprs: Vec<PExpr>,
    pub best: Option<Best>,
}

/// A rewrite result: a new operator tree whose leaves are existing groups.
#[derive(Debug, Clone)]
pub enum Node {
    Group(GroupId),
    Op(LogicalOp, Vec<Node>),
}

/// The memo. `Clone` is what makes a frozen base memo shareable: the delta
/// compiler (`crate::delta`) clones the base compilation's memo per
/// treatment and mutates only the cloned `pexprs`/`best` of affected groups.
#[derive(Debug, Default, Clone)]
pub struct Memo {
    groups: Vec<Group>,
    /// Dedup index: expression fingerprint -> owning group.
    index: FxHashMap<u64, GroupId>,
    /// Total logical expressions (budget accounting).
    pub lexpr_count: usize,
}

impl Memo {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[must_use]
    pub fn group(&self, id: GroupId) -> &Group {
        &self.groups[id.index()]
    }

    pub fn group_mut(&mut self, id: GroupId) -> &mut Group {
        &mut self.groups[id.index()]
    }

    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Fork for an incremental (delta) pass: clone the groups — with the
    /// physical candidates of `reimplement`-marked groups left empty, since
    /// the caller rebuilds them immediately — and skip the dedup index
    /// entirely (a delta pass never interns new expressions). Cheaper than
    /// `Clone` by exactly the state a treatment is about to overwrite.
    #[must_use]
    pub(crate) fn fork_for_delta(&self, reimplement: &[bool]) -> Memo {
        debug_assert_eq!(reimplement.len(), self.groups.len());
        Memo {
            groups: self
                .groups
                .iter()
                .zip(reimplement)
                .map(|(group, redo)| {
                    if *redo {
                        Group {
                            schema: group.schema.clone(),
                            stats: group.stats,
                            dist: group.dist.clone(),
                            lexprs: group.lexprs.clone(),
                            pexprs: Vec::new(),
                            best: None,
                        }
                    } else {
                        group.clone()
                    }
                })
                .collect(),
            index: FxHashMap::default(),
            lexpr_count: self.lexpr_count,
        }
    }

    pub fn group_ids(&self) -> impl Iterator<Item = GroupId> {
        (0..self.groups.len() as u32).map(GroupId)
    }

    /// Fingerprint an expression for deduplication. Covers the operator's
    /// full parameterization (selectivities included, via `Debug`) and the
    /// child group ids.
    fn expr_key(op: &LogicalOp, children: &[GroupId]) -> u64 {
        let mut s = format!("{op:?}|");
        for c in children {
            s.push_str(&c.0.to_string());
            s.push(',');
        }
        stable_hash64(s.as_bytes())
    }

    /// Intern an expression: return its existing group or create a new one.
    pub fn intern(
        &mut self,
        op: LogicalOp,
        children: Vec<GroupId>,
        provenance: RuleBits,
    ) -> GroupId {
        let key = Self::expr_key(&op, &children);
        if let Some(&gid) = self.index.get(&key) {
            return gid;
        }
        let schema = self.derive_schema(&op, &children);
        let stats = self.derive_stats(&op, &children, &schema);
        let dist = self.derive_dist(&op, &children);
        let gid = GroupId(self.groups.len() as u32);
        self.groups.push(Group {
            schema,
            stats,
            dist,
            lexprs: vec![MExpr {
                op,
                children,
                provenance,
            }],
            pexprs: Vec::new(),
            best: None,
        });
        self.index.insert(key, gid);
        self.lexpr_count += 1;
        gid
    }

    /// Add an equivalent expression to an existing group. Returns the index
    /// of the new expression, or `None` if it was already known (in this or
    /// any other group) or the group is at capacity.
    pub fn add_to_group(
        &mut self,
        gid: GroupId,
        op: LogicalOp,
        children: Vec<GroupId>,
        provenance: RuleBits,
        max_exprs_per_group: usize,
    ) -> Option<usize> {
        let key = Self::expr_key(&op, &children);
        if self.index.contains_key(&key) {
            return None;
        }
        if self.groups[gid.index()].lexprs.len() >= max_exprs_per_group {
            return None;
        }
        self.index.insert(key, gid);
        let group = &mut self.groups[gid.index()];
        group.lexprs.push(MExpr {
            op,
            children,
            provenance,
        });
        self.lexpr_count += 1;
        Some(group.lexprs.len() - 1)
    }

    /// Materialize a rewrite tree: intern interior nodes bottom-up and
    /// return the top operator ready to be added to the source group.
    pub fn materialize(&mut self, node: Node, provenance: RuleBits) -> (LogicalOp, Vec<GroupId>) {
        match node {
            Node::Group(_) => unreachable!("rewrite top must be an operator"),
            Node::Op(op, children) => {
                let child_groups = children
                    .into_iter()
                    .map(|c| self.materialize_child(c, provenance))
                    .collect();
                (op, child_groups)
            }
        }
    }

    fn materialize_child(&mut self, node: Node, provenance: RuleBits) -> GroupId {
        match node {
            Node::Group(g) => g,
            Node::Op(op, children) => {
                let child_groups: Vec<GroupId> = children
                    .into_iter()
                    .map(|c| self.materialize_child(c, provenance))
                    .collect();
                self.intern(op, child_groups, provenance)
            }
        }
    }

    /// Copy a logical plan into the memo; returns the root group per output.
    pub fn copy_in(&mut self, plan: &LogicalPlan) -> Vec<GroupId> {
        let mut mapping: FxHashMap<NodeId, GroupId> = FxHashMap::default();
        for id in plan.topo_order() {
            let node = plan.node(id);
            let children: Vec<GroupId> = node.children.iter().map(|c| mapping[c]).collect();
            let gid = self.intern(node.op.clone(), children, RuleBits::empty());
            mapping.insert(id, gid);
        }
        plan.outputs().iter().map(|o| mapping[o]).collect()
    }

    fn derive_schema(&self, op: &LogicalOp, children: &[GroupId]) -> Schema {
        let child = |i: usize| &self.groups[children[i].index()].schema;
        match op {
            LogicalOp::Extract { table } => table.schema.clone(),
            LogicalOp::Filter { .. }
            | LogicalOp::Sort { .. }
            | LogicalOp::Top { .. }
            | LogicalOp::Process { .. }
            | LogicalOp::Output { .. } => child(0).clone(),
            LogicalOp::Union => child(0).clone(),
            LogicalOp::Project { exprs } => {
                let input = child(0);
                Schema::new(
                    exprs
                        .iter()
                        .map(|(e, alias)| {
                            let ty = match e {
                                scope_ir::ScalarExpr::Column(i) => {
                                    input.column(*i).map_or(DataType::Int, |c| c.ty)
                                }
                                _ => DataType::Float,
                            };
                            Column::new(alias.clone(), ty)
                        })
                        .collect(),
                )
            }
            LogicalOp::Join {
                kind: JoinKind::LeftSemi,
                ..
            } => child(0).clone(),
            LogicalOp::Join { .. } => child(0).join(child(1)),
            LogicalOp::Aggregate { group_by, aggs, .. } => {
                let input = child(0);
                let mut cols: Vec<Column> = group_by
                    .iter()
                    .map(|&i| {
                        input
                            .column(i)
                            .cloned()
                            .unwrap_or_else(|| Column::new(format!("g{i}"), DataType::Int))
                    })
                    .collect();
                cols.extend(
                    aggs.iter()
                        .map(|a| Column::new(a.alias.clone(), DataType::Float)),
                );
                Schema::new(cols)
            }
            LogicalOp::Window { funcs, .. } => {
                let input = child(0);
                let mut cols = input.columns().to_vec();
                cols.extend(
                    funcs
                        .iter()
                        .map(|a| Column::new(a.alias.clone(), DataType::Float)),
                );
                Schema::new(cols)
            }
        }
    }

    fn derive_stats(&self, op: &LogicalOp, children: &[GroupId], schema: &Schema) -> NodeStats {
        let child = |i: usize| &self.groups[children[i].index()].stats;
        let row_len = f64::from(schema.avg_row_len());
        match op {
            LogicalOp::Extract { table } => {
                NodeStats::table(table.rows.actual, table.rows.estimated, row_len)
            }
            LogicalOp::Filter { selectivity, .. } => {
                child(0).filter(selectivity.actual, selectivity.estimated)
            }
            LogicalOp::Project { .. } => {
                let c = child(0);
                NodeStats {
                    rows: c.rows,
                    avg_row_len: row_len,
                    distinct: c.distinct,
                }
            }
            LogicalOp::Join {
                kind: JoinKind::LeftSemi,
                on: _,
                selectivity,
            } => {
                let (l, r) = (child(0), child(1));
                // P(a left row has a match) = min(1, sel * |R|).
                let match_p = |sel: f64, r_rows: f64| (sel * r_rows).clamp(0.0, 1.0);
                let rows = DualStats::new(
                    l.rows.actual * match_p(selectivity.actual, r.rows.actual),
                    l.rows.estimated * match_p(selectivity.estimated, r.rows.estimated),
                );
                NodeStats {
                    rows,
                    avg_row_len: row_len,
                    distinct: DualStats::new(
                        (rows.actual / 10.0).max(1.0),
                        (rows.estimated / 10.0).max(1.0),
                    ),
                }
            }
            LogicalOp::Join { selectivity, .. } => {
                let (l, r) = (child(0), child(1));
                let rows = DualStats::new(
                    (selectivity.actual * l.rows.actual * r.rows.actual).max(0.0),
                    (selectivity.estimated * l.rows.estimated * r.rows.estimated).max(0.0),
                );
                NodeStats {
                    rows,
                    avg_row_len: row_len,
                    distinct: DualStats::new(
                        (rows.actual / 10.0).max(1.0),
                        (rows.estimated / 10.0).max(1.0),
                    ),
                }
            }
            LogicalOp::Aggregate { group_ratio, .. } => {
                let c = child(0);
                let rows = DualStats::new(
                    (c.rows.actual * group_ratio.actual)
                        .max(1.0)
                        .min(c.rows.actual.max(1.0)),
                    (c.rows.estimated * group_ratio.estimated)
                        .max(1.0)
                        .min(c.rows.estimated.max(1.0)),
                );
                NodeStats {
                    rows,
                    avg_row_len: row_len,
                    distinct: rows,
                }
            }
            LogicalOp::Union => {
                let mut rows = DualStats::exact(0.0);
                for &c in children {
                    let s = &self.groups[c.index()].stats;
                    rows.actual += s.rows.actual;
                    rows.estimated += s.rows.estimated;
                }
                NodeStats {
                    rows,
                    avg_row_len: row_len,
                    distinct: DualStats::new(
                        (rows.actual / 10.0).max(1.0),
                        (rows.estimated / 10.0).max(1.0),
                    ),
                }
            }
            LogicalOp::Sort { .. } => *child(0),
            LogicalOp::Top { k, .. } => {
                let c = child(0);
                let kf = *k as f64;
                NodeStats {
                    rows: DualStats::new(c.rows.actual.min(kf), c.rows.estimated.min(kf)),
                    avg_row_len: row_len,
                    distinct: DualStats::new(
                        c.distinct.actual.min(kf),
                        c.distinct.estimated.min(kf),
                    ),
                }
            }
            LogicalOp::Window { .. } => {
                let c = child(0);
                NodeStats {
                    rows: c.rows,
                    avg_row_len: row_len,
                    distinct: c.distinct,
                }
            }
            LogicalOp::Process { out_ratio, .. } => {
                let c = child(0);
                NodeStats {
                    rows: DualStats::new(
                        c.rows.actual * out_ratio.actual,
                        c.rows.estimated * out_ratio.estimated,
                    ),
                    avg_row_len: row_len,
                    distinct: c.distinct,
                }
            }
            LogicalOp::Output { .. } => *child(0),
        }
    }

    fn derive_dist(&self, op: &LogicalOp, children: &[GroupId]) -> Dist {
        let child = |i: usize| &self.groups[children[i].index()].dist;
        match op {
            LogicalOp::Extract { .. } | LogicalOp::Union => Dist::Random,
            LogicalOp::Filter { .. } | LogicalOp::Process { .. } | LogicalOp::Output { .. } => {
                child(0).clone()
            }
            LogicalOp::Project { exprs } => {
                // Pure-column projections can remap a hash distribution.
                let mapping: Option<Vec<usize>> = exprs
                    .iter()
                    .map(|(e, _)| match e {
                        scope_ir::ScalarExpr::Column(i) => Some(*i),
                        _ => None,
                    })
                    .collect();
                match (child(0), mapping) {
                    (Dist::Hash(cols), Some(map)) => {
                        let remapped: Option<Vec<usize>> = cols
                            .iter()
                            .map(|c| map.iter().position(|m| m == c))
                            .collect();
                        remapped.map_or(Dist::Random, Dist::Hash)
                    }
                    (Dist::Single, _) => Dist::Single,
                    _ => Dist::Random,
                }
            }
            LogicalOp::Join {
                kind: JoinKind::LeftSemi,
                on,
                ..
            } => {
                // Semi-join output keeps left schema, partitioned on keys.
                Dist::Hash(on.iter().map(|(l, _)| *l).collect())
            }
            LogicalOp::Join { on, .. } => Dist::Hash(on.iter().map(|(l, _)| *l).collect()),
            LogicalOp::Aggregate { group_by, .. } => {
                if group_by.is_empty() {
                    Dist::Single
                } else {
                    Dist::Hash((0..group_by.len()).collect())
                }
            }
            LogicalOp::Sort { keys } => Dist::Sorted(keys.iter().map(|k| k.column).collect()),
            LogicalOp::Top { .. } => Dist::Single,
            LogicalOp::Window { partition_by, .. } => Dist::Hash(partition_by.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::expr::ScalarExpr;
    use scope_ir::logical::TableRef;
    use scope_ir::stats::DualStats;

    fn scan_op(name: &str, rows: f64, est: f64) -> LogicalOp {
        LogicalOp::Extract {
            table: TableRef::new(
                name,
                Schema::new(vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Int),
                ]),
                DualStats::new(rows, est),
            ),
        }
    }

    #[test]
    fn intern_dedups_identical_expressions() {
        let mut memo = Memo::new();
        let g1 = memo.intern(scan_op("t", 100.0, 100.0), vec![], RuleBits::empty());
        let g2 = memo.intern(scan_op("t", 100.0, 100.0), vec![], RuleBits::empty());
        assert_eq!(g1, g2);
        assert_eq!(memo.group_count(), 1);
        let g3 = memo.intern(scan_op("u", 100.0, 100.0), vec![], RuleBits::empty());
        assert_ne!(g1, g3);
    }

    #[test]
    fn group_stats_propagate_dual_values() {
        let mut memo = Memo::new();
        let scan = memo.intern(scan_op("t", 1000.0, 4000.0), vec![], RuleBits::empty());
        let filter = memo.intern(
            LogicalOp::Filter {
                predicate: ScalarExpr::lit_int(1),
                selectivity: DualStats::new(0.5, 0.1),
            },
            vec![scan],
            RuleBits::empty(),
        );
        let s = memo.group(filter).stats;
        assert!((s.rows.actual - 500.0).abs() < 1e-9);
        assert!((s.rows.estimated - 400.0).abs() < 1e-9);
    }

    #[test]
    fn join_stats_multiply_with_selectivity() {
        let mut memo = Memo::new();
        let a = memo.intern(scan_op("a", 1000.0, 1000.0), vec![], RuleBits::empty());
        let b = memo.intern(scan_op("b", 2000.0, 2000.0), vec![], RuleBits::empty());
        let j = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(0.001),
            },
            vec![a, b],
            RuleBits::empty(),
        );
        assert!((memo.group(j).stats.rows.actual - 2000.0).abs() < 1e-6);
        assert_eq!(memo.group(j).schema.len(), 4);
        assert_eq!(memo.group(j).dist, Dist::Hash(vec![0]));
    }

    #[test]
    fn semi_join_caps_match_probability() {
        let mut memo = Memo::new();
        let a = memo.intern(scan_op("a", 1000.0, 1000.0), vec![], RuleBits::empty());
        let b = memo.intern(scan_op("b", 10_000.0, 10_000.0), vec![], RuleBits::empty());
        let semi = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::LeftSemi,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(1.0), // match prob saturates at 1
            },
            vec![a, b],
            RuleBits::empty(),
        );
        assert!((memo.group(semi).stats.rows.actual - 1000.0).abs() < 1e-6);
        assert_eq!(memo.group(semi).schema.len(), 2, "semi keeps left schema");
    }

    #[test]
    fn add_to_group_respects_cap_and_dedup() {
        let mut memo = Memo::new();
        let scan = memo.intern(scan_op("t", 10.0, 10.0), vec![], RuleBits::empty());
        let g = memo.intern(
            LogicalOp::Filter {
                predicate: ScalarExpr::lit_int(1),
                selectivity: DualStats::exact(0.5),
            },
            vec![scan],
            RuleBits::empty(),
        );
        // Duplicate of existing expr -> rejected.
        assert!(memo
            .add_to_group(
                g,
                LogicalOp::Filter {
                    predicate: ScalarExpr::lit_int(1),
                    selectivity: DualStats::exact(0.5),
                },
                vec![scan],
                RuleBits::empty(),
                8,
            )
            .is_none());
        // Distinct expr accepted.
        assert!(memo
            .add_to_group(
                g,
                LogicalOp::Filter {
                    predicate: ScalarExpr::lit_int(2),
                    selectivity: DualStats::exact(0.5),
                },
                vec![scan],
                RuleBits::empty(),
                8,
            )
            .is_some());
        // Cap enforcement.
        assert!(memo
            .add_to_group(
                g,
                LogicalOp::Filter {
                    predicate: ScalarExpr::lit_int(3),
                    selectivity: DualStats::exact(0.5),
                },
                vec![scan],
                RuleBits::empty(),
                2,
            )
            .is_none());
    }

    #[test]
    fn copy_in_shares_dag_nodes() {
        use scope_ir::logical::LogicalPlan;
        let mut plan = LogicalPlan::new();
        let s = plan.add(scan_op("t", 100.0, 100.0), vec![]);
        let f = plan.add(
            LogicalOp::Filter {
                predicate: ScalarExpr::lit_int(1),
                selectivity: DualStats::exact(0.3),
            },
            vec![s],
        );
        plan.add_output("o1", f);
        plan.add_output("o2", f);
        let mut memo = Memo::new();
        let roots = memo.copy_in(&plan);
        assert_eq!(roots.len(), 2);
        // Scan, filter, two distinct outputs -> 4 groups.
        assert_eq!(memo.group_count(), 4);
    }

    #[test]
    fn materialize_interns_interior_nodes() {
        let mut memo = Memo::new();
        let a = memo.intern(scan_op("a", 10.0, 10.0), vec![], RuleBits::empty());
        let before = memo.group_count();
        let node = Node::Op(
            LogicalOp::Filter {
                predicate: ScalarExpr::lit_int(9),
                selectivity: DualStats::exact(0.9),
            },
            vec![Node::Op(
                LogicalOp::Filter {
                    predicate: ScalarExpr::lit_int(8),
                    selectivity: DualStats::exact(0.8),
                },
                vec![Node::Group(a)],
            )],
        );
        let (op, children) = memo.materialize(node, RuleBits::empty());
        assert!(matches!(op, LogicalOp::Filter { .. }));
        assert_eq!(children.len(), 1);
        assert_eq!(memo.group_count(), before + 1, "inner filter interned");
    }

    #[test]
    fn aggregate_dist_is_output_key_positions() {
        let mut memo = Memo::new();
        let s = memo.intern(scan_op("t", 100.0, 100.0), vec![], RuleBits::empty());
        let g = memo.intern(
            LogicalOp::Aggregate {
                group_by: vec![1],
                aggs: vec![],
                group_ratio: DualStats::exact(0.1),
            },
            vec![s],
            RuleBits::empty(),
        );
        assert_eq!(memo.group(g).dist, Dist::Hash(vec![0]));
    }
}

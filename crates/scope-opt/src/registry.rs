//! The 256-rule registry, mirroring the SCOPE optimizer's rule taxonomy
//! (§2.1): *required* rules (always enabled — normalization, fallback
//! implementations, exchange placement), *on-by-default* rules,
//! *off-by-default* rules (experimental or estimate-sensitive), and
//! *implementation* rules (logical → physical mappings).
//!
//! Roughly sixty ids are concrete rewrite/implementation/policy rules with
//! real semantics in [`crate::rules`] and [`crate::impls`]. The remaining ids
//! are **parametric physical-variant rules**: pattern-guarded alternatives
//! that implement a matching logical operator with non-identity
//! [`scope_ir::PhysicalTuning`] knobs. They model the long
//! tail of SCOPE rules the paper treats as opaque bits — each genuinely flows
//! through the memo search, can win or lose on estimated cost, and (for
//! experimental ones) can fail compilation for particular job templates.

use crate::config::{RuleBits, RuleConfig, RuleId, RULE_COUNT};
use scope_ir::ids::{
    mix64, stable_hash64, COMPRESSION_IO_SALT, DISABLE_UNSTABLE_SALT, FALLBACK_UNSTABLE_SALT,
    RULE_INSTABILITY_SALT, TUNING_NOISE_AXIS_FLIP,
};
use scope_ir::PhysicalTuning;
use serde::{Deserialize, Serialize};

/// Rule categories from the paper (§2.1). The category decides the default
/// state and how the span algorithm treats the rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleCategory {
    /// Must always be enabled to get valid plans. Never flipped.
    Required,
    /// Enabled by default; candidate for flipping off.
    OnByDefault,
    /// Disabled by default (experimental / estimate-sensitive); candidate
    /// for flipping on.
    OffByDefault,
    /// Logical → physical mapping rules; enabled by default.
    Implementation,
}

impl RuleCategory {
    /// Whether rules of this category are enabled in the default config.
    #[must_use]
    pub fn default_on(self) -> bool {
        !matches!(self, RuleCategory::OffByDefault)
    }

    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuleCategory::Required => "required",
            RuleCategory::OnByDefault => "on-by-default",
            RuleCategory::OffByDefault => "off-by-default",
            RuleCategory::Implementation => "implementation",
        }
    }
}

/// Concrete logical→logical rewrites. Implementations live in
/// [`crate::rules`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformKind {
    FilterPushProject,
    FilterPushJoinLeft,
    FilterPushJoinRight,
    FilterPushUnion,
    FilterMerge,
    FilterPushAggregate,
    FilterPushSort,
    JoinAssocLeft,
    ProjectMerge,
    SortRemoveRedundant,
    TopSortFuse,
    UnionFlatten,
    ProjectPushJoin,
    SemiJoinReduction,
    JoinAssocRight,
    FilterPushProcess,
    TopPushUnion,
    ProjectThroughUnion,
}

/// Concrete logical→physical implementation rules. Implementations live in
/// [`crate::impls`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImplKind {
    Scan,
    Filter,
    Project,
    HashJoin,
    MergeJoin,
    BroadcastJoin,
    NestedLoopJoin,
    HashAgg,
    StreamAgg,
    AggSplitLocalGlobal,
    Sort,
    TopN,
    Window,
    Process,
    UnionAll,
    Output,
}

/// Optimizer-wide policies gated by a rule bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Skip an exchange when the producer is already partitioned correctly.
    ShuffleElimination,
    /// Compress intermediate exchange data (claimed IO win, CPU cost).
    IntermediateCompression,
}

/// Parametric physical-variant rule: implement `target` (a logical operator
/// tag) with the default implementation flavor but non-identity tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct ParametricSpec {
    /// Logical operator tag this rule applies to (e.g. `"Join"`).
    pub target: &'static str,
    /// Tuning the optimizer *believes* (feeds estimated cost).
    pub claimed: PhysicalTuning,
    /// Probability mass of compile-time failure when this rule's variant is
    /// chosen for an incompatible job template (experimental rules only).
    pub instability: f64,
}

/// What a rule does.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleBehavior {
    /// Required normalization/bookkeeping passes; always fire.
    Normalization,
    /// Required fallback implementation covering every operator at a cost
    /// penalty, so disabling a specific implementation rule degrades the
    /// plan rather than breaking compilation.
    FallbackImpl,
    Transform(TransformKind),
    Implement(ImplKind),
    Policy(PolicyKind),
    Parametric(ParametricSpec),
}

/// One registry entry.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDef {
    pub id: RuleId,
    pub name: String,
    pub category: RuleCategory,
    pub behavior: RuleBehavior,
    /// Search priority: higher-promise rules are tried first; combined with
    /// the exploration budget this is one of the levers that makes the
    /// search heuristic (and therefore steerable).
    pub promise: f64,
}

impl RuleDef {
    /// True when flipping this rule is a legal steering action.
    #[must_use]
    pub fn flippable(&self) -> bool {
        self.category != RuleCategory::Required
    }
}

// Fixed id layout (documented so tests can rely on it):
//   0..=7     required
//   8..=20    on-by-default transforms
//   21..=25   off-by-default transforms
//   26..=41   implementation rules (32 = NestedLoopJoin is off-by-default)
//   42..=43   policies
//   44..=255  parametric physical-variant rules
pub const RULE_SCRIPT_STITCH: RuleId = RuleId(0);
pub const RULE_STATS_ANNOTATE: RuleId = RuleId(1);
pub const RULE_FALLBACK_EXEC: RuleId = RuleId(2);
pub const RULE_EXCHANGE_PLACEMENT: RuleId = RuleId(3);
pub const RULE_DEGREE_OF_PARALLELISM: RuleId = RuleId(4);
pub const RULE_PREDICATE_NORMALIZE: RuleId = RuleId(5);
pub const RULE_MEMO_DEDUP: RuleId = RuleId(6);
pub const RULE_PLAN_SERIALIZE: RuleId = RuleId(7);

pub const RULE_SHUFFLE_ELIMINATION: RuleId = RuleId(42);
pub const RULE_INTERMEDIATE_COMPRESSION: RuleId = RuleId(43);
pub const FIRST_PARAMETRIC: u16 = 44;

/// The full rule registry.
#[derive(Debug, Clone)]
pub struct RuleSet {
    rules: Vec<RuleDef>,
    default_config: RuleConfig,
    /// Implementation + parametric rule ids per logical operator tag, in
    /// registry order — precomputed because [`RuleSet::impls_for`] sits on
    /// the implementation pass's innermost loop (once per logical
    /// expression per compile, and again per dirty group per delta pass).
    impls_by_tag: rustc_hash::FxHashMap<&'static str, Vec<u16>>,
}

impl RuleSet {
    /// Build the standard 256-rule registry. Deterministic: parametric rule
    /// parameters derive from stable hashes of the rule id.
    #[must_use]
    pub fn standard() -> Self {
        let mut rules: Vec<RuleDef> = Vec::with_capacity(RULE_COUNT);
        let mut push =
            |name: &str, category: RuleCategory, behavior: RuleBehavior, promise: f64| {
                let id = RuleId(rules.len() as u16);
                rules.push(RuleDef {
                    id,
                    name: name.to_string(),
                    category,
                    behavior,
                    promise,
                });
            };

        // -- required (0..=7) --
        push(
            "ScriptStitch",
            RuleCategory::Required,
            RuleBehavior::Normalization,
            100.0,
        );
        push(
            "StatsAnnotate",
            RuleCategory::Required,
            RuleBehavior::Normalization,
            100.0,
        );
        push(
            "FallbackExec",
            RuleCategory::Required,
            RuleBehavior::FallbackImpl,
            0.1,
        );
        push(
            "ExchangePlacement",
            RuleCategory::Required,
            RuleBehavior::Normalization,
            100.0,
        );
        push(
            "DegreeOfParallelism",
            RuleCategory::Required,
            RuleBehavior::Normalization,
            100.0,
        );
        push(
            "PredicateNormalize",
            RuleCategory::Required,
            RuleBehavior::Normalization,
            100.0,
        );
        push(
            "MemoDedup",
            RuleCategory::Required,
            RuleBehavior::Normalization,
            100.0,
        );
        push(
            "PlanSerialize",
            RuleCategory::Required,
            RuleBehavior::Normalization,
            100.0,
        );

        // -- on-by-default transforms (8..=20) --
        use RuleBehavior::Transform as T;
        use TransformKind::*;
        push(
            "FilterPushProject",
            RuleCategory::OnByDefault,
            T(FilterPushProject),
            9.0,
        );
        push(
            "FilterPushJoinLeft",
            RuleCategory::OnByDefault,
            T(FilterPushJoinLeft),
            9.5,
        );
        push(
            "FilterPushJoinRight",
            RuleCategory::OnByDefault,
            T(FilterPushJoinRight),
            9.4,
        );
        push(
            "FilterPushUnion",
            RuleCategory::OnByDefault,
            T(FilterPushUnion),
            8.0,
        );
        push(
            "FilterMerge",
            RuleCategory::OnByDefault,
            T(FilterMerge),
            9.8,
        );
        push(
            "FilterPushAggregate",
            RuleCategory::OnByDefault,
            T(FilterPushAggregate),
            8.5,
        );
        push(
            "FilterPushSort",
            RuleCategory::OnByDefault,
            T(FilterPushSort),
            8.4,
        );
        push(
            "JoinAssocLeft",
            RuleCategory::OnByDefault,
            T(JoinAssocLeft),
            7.0,
        );
        push(
            "ProjectMerge",
            RuleCategory::OnByDefault,
            T(ProjectMerge),
            6.0,
        );
        push(
            "SortRemoveRedundant",
            RuleCategory::OnByDefault,
            T(SortRemoveRedundant),
            6.5,
        );
        push(
            "TopSortFuse",
            RuleCategory::OnByDefault,
            T(TopSortFuse),
            6.4,
        );
        push(
            "UnionFlatten",
            RuleCategory::OnByDefault,
            T(UnionFlatten),
            5.0,
        );
        push(
            "ProjectPushJoin",
            RuleCategory::OnByDefault,
            T(ProjectPushJoin),
            7.5,
        );

        // -- off-by-default transforms (21..=25) --
        push(
            "SemiJoinReduction",
            RuleCategory::OffByDefault,
            T(SemiJoinReduction),
            7.2,
        );
        push(
            "JoinAssocRight",
            RuleCategory::OffByDefault,
            T(JoinAssocRight),
            6.8,
        );
        push(
            "FilterPushProcess",
            RuleCategory::OffByDefault,
            T(FilterPushProcess),
            8.2,
        );
        push(
            "TopPushUnion",
            RuleCategory::OffByDefault,
            T(TopPushUnion),
            6.2,
        );
        push(
            "ProjectThroughUnion",
            RuleCategory::OffByDefault,
            T(ProjectThroughUnion),
            5.5,
        );

        // -- implementation rules (26..=41) --
        use ImplKind::*;
        use RuleBehavior::Implement as I;
        push("ScanImpl", RuleCategory::Implementation, I(Scan), 5.0);
        push("FilterImpl", RuleCategory::Implementation, I(Filter), 5.0);
        push("ProjectImpl", RuleCategory::Implementation, I(Project), 5.0);
        push(
            "HashJoinImpl",
            RuleCategory::Implementation,
            I(HashJoin),
            5.0,
        );
        push(
            "MergeJoinImpl",
            RuleCategory::Implementation,
            I(MergeJoin),
            4.5,
        );
        push(
            "BroadcastJoinImpl",
            RuleCategory::Implementation,
            I(BroadcastJoin),
            4.8,
        );
        push(
            "NestedLoopJoinImpl",
            RuleCategory::OffByDefault,
            I(NestedLoopJoin),
            1.0,
        );
        push("HashAggImpl", RuleCategory::Implementation, I(HashAgg), 5.0);
        push(
            "StreamAggImpl",
            RuleCategory::Implementation,
            I(StreamAgg),
            4.5,
        );
        push(
            "AggSplitLocalGlobal",
            RuleCategory::Implementation,
            I(AggSplitLocalGlobal),
            4.7,
        );
        push("SortImpl", RuleCategory::Implementation, I(Sort), 5.0);
        push("TopNImpl", RuleCategory::Implementation, I(TopN), 5.0);
        push("WindowImpl", RuleCategory::Implementation, I(Window), 5.0);
        push("ProcessImpl", RuleCategory::Implementation, I(Process), 5.0);
        push(
            "UnionAllImpl",
            RuleCategory::Implementation,
            I(UnionAll),
            5.0,
        );
        push("OutputImpl", RuleCategory::Implementation, I(Output), 5.0);

        // -- policies (42..=43) --
        push(
            "ShuffleElimination",
            RuleCategory::OnByDefault,
            RuleBehavior::Policy(PolicyKind::ShuffleElimination),
            3.0,
        );
        push(
            "IntermediateCompression",
            RuleCategory::OnByDefault,
            RuleBehavior::Policy(PolicyKind::IntermediateCompression),
            3.0,
        );

        // -- parametric physical-variant rules (44..=255) --
        const TARGETS: [&str; 11] = [
            "Join",
            "Aggregate",
            "Extract",
            "Filter",
            "Project",
            "Sort",
            "Top",
            "Window",
            "Process",
            "Union",
            "Output",
        ];
        const VARIANTS: [&str; 14] = [
            "Vectorized",
            "Prefetch",
            "SpillTuned",
            "Fused",
            "Batched",
            "Pipelined",
            "Adaptive",
            "Compressed",
            "Reordered",
            "Speculative",
            "Cached",
            "Inlined",
            "WidePartition",
            "Compact",
        ];
        for raw in FIRST_PARAMETRIC..RULE_COUNT as u16 {
            let k = (raw - FIRST_PARAMETRIC) as usize;
            let target = TARGETS[k % TARGETS.len()];
            let variant = VARIANTS[(k / TARGETS.len()) % VARIANTS.len()];
            let name = format!("{target}{variant}{raw}");
            let h = stable_hash64(name.as_bytes());
            // Claimed effects: log-uniform around 1 with one dominant axis so
            // rules are distinguishable (pure-CPU rules, pure-IO rules, and
            // parallelism rules).
            let unit = |salt: u64| (mix64(h, salt) >> 11) as f64 / (1u64 << 53) as f64;
            let axis = mix64(h, 0xA) % 100;
            let spread = |u: f64, lo: f64, hi: f64| lo * (hi / lo).powf(u);
            let off = unit(5) < 0.45;
            // Enabled-by-default long-tail rules have mild, well-understood
            // effects; the experimental (off-by-default) tail is where the
            // big claimed wins — and the big risks — live. This is exactly
            // why SCOPE ships them off by default.
            let (io_lo, io_hi, cpu_lo, cpu_hi) = if off {
                (0.45, 1.20, 0.60, 1.25)
            } else {
                (0.82, 1.10, 0.85, 1.12)
            };
            let mut claimed = PhysicalTuning::IDENTITY;
            if axis < 42 {
                // IO-axis rules are the plurality: SCOPE's long tail is full
                // of I/O-shape knobs, and data volume is what the validation
                // model keys on.
                claimed.io_mult = spread(unit(2), io_lo, io_hi);
            } else if axis < 78 {
                claimed.cpu_mult = spread(unit(1), cpu_lo, cpu_hi);
            } else {
                claimed.parallelism_mult = if unit(3) < 0.5 { 0.5 } else { 2.0 };
                claimed.cpu_mult = spread(unit(4), 0.92, 1.08);
            }
            let category = if off {
                RuleCategory::OffByDefault
            } else {
                RuleCategory::OnByDefault
            };
            // Only experimental (off-by-default) rules are unstable.
            let instability = if off { 0.08 + 0.35 * unit(6) } else { 0.0 };
            let promise = 2.0 + 2.0 * unit(7);
            let id = RuleId(raw);
            rules.push(RuleDef {
                id,
                name,
                category,
                behavior: RuleBehavior::Parametric(ParametricSpec {
                    target,
                    claimed,
                    instability,
                }),
                promise,
            });
        }

        debug_assert_eq!(rules.len(), RULE_COUNT);
        let default_bits: RuleBits = rules
            .iter()
            .filter(|r| r.category.default_on())
            .map(|r| r.id)
            .collect();
        let mut impls_by_tag: rustc_hash::FxHashMap<&'static str, Vec<u16>> =
            rustc_hash::FxHashMap::default();
        for r in &rules {
            let tag = match &r.behavior {
                RuleBehavior::Implement(kind) => impl_targets(*kind),
                RuleBehavior::Parametric(spec) => spec.target,
                _ => continue,
            };
            impls_by_tag.entry(tag).or_default().push(r.id.0);
        }
        Self {
            rules,
            default_config: RuleConfig::from_bits(default_bits),
            impls_by_tag,
        }
    }

    #[must_use]
    pub fn rule(&self, id: RuleId) -> &RuleDef {
        &self.rules[id.index()]
    }

    #[must_use]
    pub fn rules(&self) -> &[RuleDef] {
        &self.rules
    }

    /// The default SCOPE rule configuration.
    #[must_use]
    pub fn default_config(&self) -> RuleConfig {
        self.default_config
    }

    /// All rule ids whose category allows flipping.
    pub fn flippable(&self) -> impl Iterator<Item = RuleId> + '_ {
        self.rules.iter().filter(|r| r.flippable()).map(|r| r.id)
    }

    /// Transform rules in descending promise order (the deterministic order
    /// the search applies them in).
    #[must_use]
    pub fn transforms_by_promise(&self) -> Vec<&RuleDef> {
        let mut t: Vec<&RuleDef> = self
            .rules
            .iter()
            .filter(|r| matches!(r.behavior, RuleBehavior::Transform(_)))
            .collect();
        t.sort_by(|a, b| b.promise.total_cmp(&a.promise).then(a.id.0.cmp(&b.id.0)));
        t
    }

    /// Implementation + parametric rules applicable to a logical tag, in
    /// registry order (precomputed at construction — this is the
    /// implementation pass's innermost lookup).
    pub fn impls_for(&self, logical_tag: &str) -> impl Iterator<Item = &RuleDef> + '_ {
        self.impls_by_tag
            .get(logical_tag)
            .map(Vec::as_slice)
            .unwrap_or_default()
            .iter()
            .map(|&raw| &self.rules[raw as usize])
    }

    /// Deterministic instability draw for a (rule, template, configuration)
    /// triple: compilation fails when the rule is part of the chosen plan
    /// and this returns true. The configuration fingerprint participates
    /// because experimental-rule crashes depend on which *other* rules are
    /// active — which is also why the span-discovery passes (run under very
    /// different configurations) cannot pre-certify a rule as safe for the
    /// production single-flip configuration.
    #[must_use]
    pub fn unstable_for(&self, id: RuleId, template_seed: u64, config_fingerprint: u64) -> bool {
        let spec_instability = match &self.rule(id).behavior {
            RuleBehavior::Parametric(spec) => spec.instability,
            _ => 0.0,
        };
        if spec_instability <= 0.0 {
            return false;
        }
        let u = (mix64(
            mix64(template_seed, config_fingerprint),
            u64::from(id.0) | RULE_INSTABILITY_SALT,
        ) >> 11) as f64
            / (1u64 << 53) as f64;
        u < spec_instability
    }

    /// True ("actual") tuning of a parametric rule for a template: the
    /// claimed effect regressed toward 1 and perturbed per-template. The gap
    /// between claimed and actual is the controlled source of
    /// estimated-vs-real divergence for the rule long tail (paper §5.2).
    #[must_use]
    pub fn actual_tuning(&self, id: RuleId, template_seed: u64) -> PhysicalTuning {
        let RuleBehavior::Parametric(spec) = &self.rule(id).behavior else {
            return PhysicalTuning::IDENTITY;
        };
        let noise = |salt: u64, sigma: f64| -> f64 {
            // Log-normal-ish multiplicative noise from two uniform draws.
            let u1 = (mix64(template_seed, mix64(u64::from(id.0), salt)) >> 11) as f64
                / (1u64 << 53) as f64;
            let u2 = (mix64(
                template_seed,
                mix64(u64::from(id.0), salt ^ TUNING_NOISE_AXIS_FLIP),
            ) >> 11) as f64
                / (1u64 << 53) as f64;
            let n = (u1 + u2 - 1.0) * 2.0; // triangular on [-2, 2]
            (sigma * n).exp()
        };
        // True effects are weaker than claimed and noisy, and the two axes
        // regress differently: IO claims mostly materialize (bytes are easy
        // to reason about), CPU claims are largely cost-model optimism that
        // evaporates at runtime. This asymmetry is what makes estimated-cost
        // improvements a poor predictor of runtime improvements (Fig 6)
        // while DataRead/DataWritten deltas stay excellent predictors of
        // PNhours deltas (Figs 7/8).
        let regress = |claimed: f64, exponent: f64, salt: u64| {
            (claimed.powf(exponent) * noise(salt, 0.18)).max(0.05)
        };
        PhysicalTuning {
            cpu_mult: regress(spec.claimed.cpu_mult, 0.45, 1),
            io_mult: regress(spec.claimed.io_mult, 0.85, 2),
            // Parallelism is a deterministic plan property (vertex counts
            // must not be noisy), so actual == claimed.
            parallelism_mult: spec.claimed.parallelism_mult,
        }
    }
}

impl RuleSet {
    /// Whether forcing the *fallback* execution path (by disabling the
    /// specialized implementation rule an operator normally uses) crashes
    /// compilation for this template. The fallback path is rarely exercised
    /// in production, so it is the second major source of recompile
    /// failures besides experimental-rule instability.
    #[must_use]
    pub fn fallback_unstable_for(&self, template_seed: u64) -> bool {
        let u = (mix64(template_seed, FALLBACK_UNSTABLE_SALT) >> 11) as f64 / (1u64 << 53) as f64;
        u < 0.35
    }

    /// Whether *disabling* a default-on parametric rule crashes compilation
    /// for this (template, configuration): production code paths assume the
    /// default rule set, so turning long-tail rules off at job level
    /// exercises untested interactions (~10% of draws). Concrete rewrite and
    /// implementation rules are battle-tested and never fail this way.
    #[must_use]
    pub fn disable_unstable_for(
        &self,
        id: RuleId,
        template_seed: u64,
        config_fingerprint: u64,
    ) -> bool {
        let def = self.rule(id);
        if !matches!(def.behavior, RuleBehavior::Parametric(_)) || !def.category.default_on() {
            return false;
        }
        let u = (mix64(
            mix64(template_seed, config_fingerprint),
            u64::from(id.0) | DISABLE_UNSTABLE_SALT,
        ) >> 11) as f64
            / (1u64 << 53) as f64;
        u < 0.05
    }

    /// True IO multiplier of the intermediate-compression policy for a
    /// template (claimed is [`crate::cost::CostModel::compression_io`]; the
    /// realized ratio depends on how compressible the template's data is).
    #[must_use]
    pub fn compression_actual_io(&self, template_seed: u64) -> f64 {
        let u = (mix64(
            template_seed,
            u64::from(RULE_INTERMEDIATE_COMPRESSION.0) | COMPRESSION_IO_SALT,
        ) >> 11) as f64
            / (1u64 << 53) as f64;
        // Realized compression between 0.65 (very compressible) and 1.05
        // (incompressible, pure overhead).
        0.65 + 0.40 * u
    }
}

/// Logical tag each implementation kind applies to.
pub(crate) fn impl_targets(kind: ImplKind) -> &'static str {
    match kind {
        ImplKind::Scan => "Extract",
        ImplKind::Filter => "Filter",
        ImplKind::Project => "Project",
        ImplKind::HashJoin
        | ImplKind::MergeJoin
        | ImplKind::BroadcastJoin
        | ImplKind::NestedLoopJoin => "Join",
        ImplKind::HashAgg | ImplKind::StreamAgg | ImplKind::AggSplitLocalGlobal => "Aggregate",
        ImplKind::Sort => "Sort",
        ImplKind::TopN => "Top",
        ImplKind::Window => "Window",
        ImplKind::Process => "Process",
        ImplKind::UnionAll => "Union",
        ImplKind::Output => "Output",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_exactly_256_rules() {
        let rs = RuleSet::standard();
        assert_eq!(rs.rules().len(), RULE_COUNT);
        // Ids are dense and ordered.
        for (i, r) in rs.rules().iter().enumerate() {
            assert_eq!(r.id.index(), i);
        }
    }

    #[test]
    fn category_counts_are_sane() {
        let rs = RuleSet::standard();
        let count = |c: RuleCategory| rs.rules().iter().filter(|r| r.category == c).count();
        assert_eq!(count(RuleCategory::Required), 8);
        assert_eq!(count(RuleCategory::Implementation), 15); // NestedLoop is off-by-default
        let off = count(RuleCategory::OffByDefault);
        // 5 off transforms + NestedLoop + ~45% of 212 parametric.
        assert!(off > 60 && off < 140, "off-by-default count {off}");
    }

    #[test]
    fn default_config_enables_everything_but_off_rules() {
        let rs = RuleSet::standard();
        let cfg = rs.default_config();
        for r in rs.rules() {
            assert_eq!(cfg.enabled(r.id), r.category.default_on(), "{}", r.name);
        }
    }

    #[test]
    fn required_rules_are_not_flippable() {
        let rs = RuleSet::standard();
        for id in rs.flippable() {
            assert_ne!(rs.rule(id).category, RuleCategory::Required);
        }
        assert!(!rs.rule(RULE_FALLBACK_EXEC).flippable());
    }

    #[test]
    fn impls_for_join_include_all_flavors() {
        let rs = RuleSet::standard();
        let names: Vec<&str> = rs.impls_for("Join").map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"HashJoinImpl"));
        assert!(names.contains(&"MergeJoinImpl"));
        assert!(names.contains(&"BroadcastJoinImpl"));
        assert!(names.contains(&"NestedLoopJoinImpl"));
        // Plus a healthy number of parametric join variants.
        assert!(names.len() > 10, "{names:?}");
    }

    #[test]
    fn transforms_sorted_by_promise() {
        let rs = RuleSet::standard();
        let t = rs.transforms_by_promise();
        for pair in t.windows(2) {
            assert!(pair[0].promise >= pair[1].promise);
        }
        assert_eq!(t[0].name, "FilterMerge");
    }

    #[test]
    fn instability_is_deterministic_and_limited_to_experimental() {
        let rs = RuleSet::standard();
        for r in rs.rules() {
            let unstable = rs.unstable_for(r.id, 12345, 99);
            assert_eq!(unstable, rs.unstable_for(r.id, 12345, 99));
            if unstable {
                assert_eq!(r.category, RuleCategory::OffByDefault, "{}", r.name);
            }
        }
        // Some experimental rule must be unstable for some template.
        let any = rs
            .rules()
            .iter()
            .any(|r| (0..50u64).any(|seed| rs.unstable_for(r.id, seed, 7)));
        assert!(any);
    }

    #[test]
    fn actual_tuning_differs_from_claimed_but_is_deterministic() {
        let rs = RuleSet::standard();
        let id = RuleId(FIRST_PARAMETRIC);
        let RuleBehavior::Parametric(spec) = &rs.rule(id).behavior else {
            panic!()
        };
        let a1 = rs.actual_tuning(id, 7);
        let a2 = rs.actual_tuning(id, 7);
        assert_eq!(a1, a2);
        let other = rs.actual_tuning(id, 8);
        assert!(a1 != other || spec.claimed.is_identity());
        assert!((a1.parallelism_mult - spec.claimed.parallelism_mult).abs() < 1e-12);
    }

    #[test]
    fn parametric_rules_have_one_dominant_axis() {
        let rs = RuleSet::standard();
        for r in rs.rules() {
            if let RuleBehavior::Parametric(spec) = &r.behavior {
                let t = spec.claimed;
                let moved = [
                    (t.cpu_mult - 1.0).abs() > 1e-9,
                    (t.io_mult - 1.0).abs() > 1e-9,
                    (t.parallelism_mult - 1.0).abs() > 1e-9,
                ];
                assert!(moved.iter().any(|&m| m), "{} is identity", r.name);
            }
        }
    }
}

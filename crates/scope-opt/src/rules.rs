//! Logical→logical transformation rules.
//!
//! Each rule inspects one memo expression (and its children's expressions)
//! and returns zero or more rewrite trees ([`Node`]) whose leaves are
//! existing groups. The search materializes the trees back into the memo.
//! All rewrites are cardinality-preserving on the expression's output (the
//! memo group invariant); selectivities are redistributed so the dual
//! statistics stay consistent on both the true and estimated side.

use crate::memo::{GroupId, Memo, Node};
use crate::registry::TransformKind;
use scope_ir::expr::{BinOp, ScalarExpr};
use scope_ir::logical::{JoinKind, LogicalOp};
use scope_ir::stats::DualStats;

/// Apply `kind` to expression `eidx` of group `gid`, returning rewrite trees.
#[must_use]
pub fn apply_transform(kind: TransformKind, memo: &Memo, gid: GroupId, eidx: usize) -> Vec<Node> {
    let expr = &memo.group(gid).lexprs[eidx];
    match kind {
        TransformKind::FilterPushProject => filter_push_project(memo, gid, eidx),
        TransformKind::FilterPushJoinLeft => filter_push_join(memo, gid, eidx, true),
        TransformKind::FilterPushJoinRight => filter_push_join(memo, gid, eidx, false),
        TransformKind::FilterPushUnion => filter_push_union(memo, gid, eidx),
        TransformKind::FilterMerge => filter_merge(memo, gid, eidx),
        TransformKind::FilterPushAggregate => filter_push_aggregate(memo, gid, eidx),
        TransformKind::FilterPushSort => filter_push_sort(memo, gid, eidx),
        TransformKind::JoinAssocLeft => join_assoc_left(memo, gid, eidx),
        TransformKind::JoinAssocRight => join_assoc_right(memo, gid, eidx),
        TransformKind::ProjectMerge => project_merge(memo, gid, eidx),
        TransformKind::SortRemoveRedundant => sort_remove_redundant(memo, gid, eidx),
        TransformKind::TopSortFuse => top_sort_fuse(memo, gid, eidx),
        TransformKind::UnionFlatten => union_flatten(memo, gid, eidx),
        TransformKind::ProjectPushJoin => project_push_join(memo, gid, eidx),
        TransformKind::SemiJoinReduction => semi_join_reduction(memo, gid, eidx),
        TransformKind::FilterPushProcess => filter_push_process(memo, gid, eidx),
        TransformKind::TopPushUnion => top_push_union(memo, gid, eidx),
        TransformKind::ProjectThroughUnion => project_through_union(memo, gid, eidx),
    }
    .unwrap_or_default()
    .into_iter()
    .filter(|n| matches!(n, Node::Op(..)))
    .inspect(|_| {
        debug_assert!(!expr.children.is_empty() || matches!(expr.op, LogicalOp::Extract { .. }))
    })
    .collect()
}

/// Fetch the (op, children) of an expression without holding a borrow.
fn expr_parts(memo: &Memo, gid: GroupId, eidx: usize) -> (LogicalOp, Vec<GroupId>) {
    let e = &memo.group(gid).lexprs[eidx];
    (e.op.clone(), e.children.clone())
}

fn width(memo: &Memo, g: GroupId) -> usize {
    memo.group(g).schema.len()
}

fn filter_push_project(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Filter {
        predicate,
        selectivity,
    } = op
    else {
        return None;
    };
    let child = children[0];
    let mut out = Vec::new();
    for ce in &memo.group(child).lexprs {
        let LogicalOp::Project { exprs } = &ce.op else {
            continue;
        };
        // The predicate can move below the projection iff every referenced
        // output column is a pure column reference.
        let mut cols = Vec::new();
        predicate.collect_columns(&mut cols);
        let mapping: Option<Vec<(usize, usize)>> = cols
            .iter()
            .map(|&c| match exprs.get(c).map(|(e, _)| e) {
                Some(ScalarExpr::Column(j)) => Some((c, *j)),
                _ => None,
            })
            .collect();
        let Some(mapping) = mapping else { continue };
        let remapped = predicate.remap_columns(&|i| {
            mapping
                .iter()
                .find(|(from, _)| *from == i)
                .map_or(i, |(_, to)| *to)
        });
        out.push(Node::Op(
            LogicalOp::Project {
                exprs: exprs.clone(),
            },
            vec![Node::Op(
                LogicalOp::Filter {
                    predicate: remapped,
                    selectivity,
                },
                vec![Node::Group(ce.children[0])],
            )],
        ));
    }
    Some(out)
}

fn filter_push_join(memo: &Memo, gid: GroupId, eidx: usize, left: bool) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Filter {
        predicate,
        selectivity,
    } = op
    else {
        return None;
    };
    let child = children[0];
    let mut out = Vec::new();
    for ce in &memo.group(child).lexprs {
        let LogicalOp::Join {
            kind,
            on,
            selectivity: jsel,
        } = &ce.op
        else {
            continue;
        };
        let lw = width(memo, ce.children[0]);
        let mut cols = Vec::new();
        predicate.collect_columns(&mut cols);
        if left {
            // Left push is valid for all our join kinds.
            if !cols.iter().all(|&c| c < lw) {
                continue;
            }
            out.push(Node::Op(
                LogicalOp::Join {
                    kind: *kind,
                    on: on.clone(),
                    selectivity: *jsel,
                },
                vec![
                    Node::Op(
                        LogicalOp::Filter {
                            predicate: predicate.clone(),
                            selectivity,
                        },
                        vec![Node::Group(ce.children[0])],
                    ),
                    Node::Group(ce.children[1]),
                ],
            ));
        } else {
            // Right push only for inner joins (outer/semi change semantics).
            if *kind != JoinKind::Inner || !cols.iter().all(|&c| c >= lw) {
                continue;
            }
            let remapped = predicate.remap_columns(&|i| i - lw);
            out.push(Node::Op(
                LogicalOp::Join {
                    kind: *kind,
                    on: on.clone(),
                    selectivity: *jsel,
                },
                vec![
                    Node::Group(ce.children[0]),
                    Node::Op(
                        LogicalOp::Filter {
                            predicate: remapped,
                            selectivity,
                        },
                        vec![Node::Group(ce.children[1])],
                    ),
                ],
            ));
        }
    }
    Some(out)
}

fn filter_push_union(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Filter {
        predicate,
        selectivity,
    } = op
    else {
        return None;
    };
    let child = children[0];
    let mut out = Vec::new();
    for ce in &memo.group(child).lexprs {
        if !matches!(ce.op, LogicalOp::Union) {
            continue;
        }
        let branches: Vec<Node> = ce
            .children
            .iter()
            .map(|&c| {
                Node::Op(
                    LogicalOp::Filter {
                        predicate: predicate.clone(),
                        selectivity,
                    },
                    vec![Node::Group(c)],
                )
            })
            .collect();
        out.push(Node::Op(LogicalOp::Union, branches));
    }
    Some(out)
}

fn filter_merge(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Filter {
        predicate,
        selectivity,
    } = op
    else {
        return None;
    };
    let child = children[0];
    let mut out = Vec::new();
    for ce in &memo.group(child).lexprs {
        let LogicalOp::Filter {
            predicate: inner,
            selectivity: s2,
        } = &ce.op
        else {
            continue;
        };
        let merged = ScalarExpr::binary(BinOp::And, predicate.clone(), inner.clone());
        out.push(Node::Op(
            LogicalOp::Filter {
                predicate: merged,
                selectivity: DualStats::new(
                    selectivity.actual * s2.actual,
                    selectivity.estimated * s2.estimated,
                ),
            },
            vec![Node::Group(ce.children[0])],
        ));
    }
    Some(out)
}

fn filter_push_aggregate(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Filter {
        predicate,
        selectivity,
    } = op
    else {
        return None;
    };
    let child = children[0];
    let mut out = Vec::new();
    for ce in &memo.group(child).lexprs {
        let LogicalOp::Aggregate {
            group_by,
            aggs,
            group_ratio,
        } = &ce.op
        else {
            continue;
        };
        let mut cols = Vec::new();
        predicate.collect_columns(&mut cols);
        // Only predicates over grouping keys (output positions < |group_by|)
        // commute with the aggregation.
        if !cols.iter().all(|&c| c < group_by.len()) {
            continue;
        }
        let remapped = predicate.remap_columns(&|i| group_by[i]);
        out.push(Node::Op(
            LogicalOp::Aggregate {
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                group_ratio: *group_ratio,
            },
            vec![Node::Op(
                LogicalOp::Filter {
                    predicate: remapped,
                    selectivity,
                },
                vec![Node::Group(ce.children[0])],
            )],
        ));
    }
    Some(out)
}

fn filter_push_sort(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Filter {
        predicate,
        selectivity,
    } = op
    else {
        return None;
    };
    let child = children[0];
    let mut out = Vec::new();
    for ce in &memo.group(child).lexprs {
        let LogicalOp::Sort { keys } = &ce.op else {
            continue;
        };
        out.push(Node::Op(
            LogicalOp::Sort { keys: keys.clone() },
            vec![Node::Op(
                LogicalOp::Filter {
                    predicate: predicate.clone(),
                    selectivity,
                },
                vec![Node::Group(ce.children[0])],
            )],
        ));
    }
    Some(out)
}

fn join_assoc_left(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Join {
        kind: JoinKind::Inner,
        on: on2,
        selectivity: s2,
    } = op
    else {
        return None;
    };
    let (lg, cg) = (children[0], children[1]);
    let mut out = Vec::new();
    for ce in &memo.group(lg).lexprs {
        let LogicalOp::Join {
            kind: JoinKind::Inner,
            on: on1,
            selectivity: s1,
        } = &ce.op
        else {
            continue;
        };
        let (ag, bg) = (ce.children[0], ce.children[1]);
        let aw = width(memo, ag);
        let bw = width(memo, bg);
        // Partition the top join's conditions between A-vs-C (stay on the
        // new outer join) and B-vs-C (move to the new inner join).
        let mut inner_on = Vec::new();
        let mut outer_extra = Vec::new();
        for &(l, r) in &on2 {
            if l < aw {
                outer_extra.push((l, bw + r));
            } else {
                inner_on.push((l - aw, r));
            }
        }
        if inner_on.is_empty() {
            continue; // would create a cross join between B and C
        }
        let mut outer_on = on1.clone();
        outer_on.extend(outer_extra);
        let inner = Node::Op(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: inner_on,
                selectivity: s2,
            },
            vec![Node::Group(bg), Node::Group(cg)],
        );
        out.push(Node::Op(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: outer_on,
                selectivity: *s1,
            },
            vec![Node::Group(ag), inner],
        ));
    }
    Some(out)
}

fn join_assoc_right(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Join {
        kind: JoinKind::Inner,
        on: on2,
        selectivity: s2,
    } = op
    else {
        return None;
    };
    let (ag, rg) = (children[0], children[1]);
    let aw = width(memo, ag);
    let mut out = Vec::new();
    for ce in &memo.group(rg).lexprs {
        let LogicalOp::Join {
            kind: JoinKind::Inner,
            on: on1,
            selectivity: s1,
        } = &ce.op
        else {
            continue;
        };
        let (bg, cg) = (ce.children[0], ce.children[1]);
        let bw = width(memo, bg);
        let mut inner_on = Vec::new();
        let mut outer_extra = Vec::new();
        for &(l, r) in &on2 {
            if r < bw {
                inner_on.push((l, r)); // A vs B
            } else {
                outer_extra.push((l, r - bw)); // A vs C, in the new outer
            }
        }
        if inner_on.is_empty() {
            continue;
        }
        let mut outer_on: Vec<(usize, usize)> = on1.iter().map(|&(l, r)| (aw + l, r)).collect();
        outer_on.extend(outer_extra);
        let inner = Node::Op(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: inner_on,
                selectivity: s2,
            },
            vec![Node::Group(ag), Node::Group(bg)],
        );
        out.push(Node::Op(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: outer_on,
                selectivity: *s1,
            },
            vec![inner, Node::Group(cg)],
        ));
    }
    Some(out)
}

/// Substitute inner projection expressions into an outer expression.
fn substitute(expr: &ScalarExpr, inner: &[(ScalarExpr, String)]) -> ScalarExpr {
    match expr {
        ScalarExpr::Column(i) => inner
            .get(*i)
            .map_or_else(|| expr.clone(), |(e, _)| e.clone()),
        ScalarExpr::Literal(_) => expr.clone(),
        ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
            op: *op,
            left: Box::new(substitute(left, inner)),
            right: Box::new(substitute(right, inner)),
        },
        ScalarExpr::Udf {
            name,
            args,
            cpu_factor,
        } => ScalarExpr::Udf {
            name: name.clone(),
            args: args.iter().map(|a| substitute(a, inner)).collect(),
            cpu_factor: *cpu_factor,
        },
    }
}

fn project_merge(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Project { exprs } = op else {
        return None;
    };
    let child = children[0];
    let mut out = Vec::new();
    for ce in &memo.group(child).lexprs {
        let LogicalOp::Project { exprs: inner } = &ce.op else {
            continue;
        };
        let merged: Vec<(ScalarExpr, String)> = exprs
            .iter()
            .map(|(e, alias)| (substitute(e, inner), alias.clone()))
            .collect();
        out.push(Node::Op(
            LogicalOp::Project { exprs: merged },
            vec![Node::Group(ce.children[0])],
        ));
    }
    Some(out)
}

fn sort_remove_redundant(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Sort { keys } = op else {
        return None;
    };
    let child = children[0];
    let mut out = Vec::new();
    for ce in &memo.group(child).lexprs {
        if !matches!(ce.op, LogicalOp::Sort { .. }) {
            continue;
        }
        out.push(Node::Op(
            LogicalOp::Sort { keys: keys.clone() },
            vec![Node::Group(ce.children[0])],
        ));
    }
    Some(out)
}

fn top_sort_fuse(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Top { k, keys } = op else {
        return None;
    };
    let child = children[0];
    let mut out = Vec::new();
    for ce in &memo.group(child).lexprs {
        if !matches!(ce.op, LogicalOp::Sort { .. }) {
            continue;
        }
        out.push(Node::Op(
            LogicalOp::Top {
                k,
                keys: keys.clone(),
            },
            vec![Node::Group(ce.children[0])],
        ));
    }
    Some(out)
}

fn union_flatten(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    if !matches!(op, LogicalOp::Union) {
        return None;
    }
    // Splice the first nested union found (repeated application flattens
    // deeper nestings).
    for (i, &c) in children.iter().enumerate() {
        for ce in &memo.group(c).lexprs {
            if !matches!(ce.op, LogicalOp::Union) {
                continue;
            }
            let mut new_children: Vec<Node> = Vec::with_capacity(children.len() + 1);
            for (j, &other) in children.iter().enumerate() {
                if j == i {
                    new_children.extend(ce.children.iter().map(|&g| Node::Group(g)));
                } else {
                    new_children.push(Node::Group(other));
                }
            }
            return Some(vec![Node::Op(LogicalOp::Union, new_children)]);
        }
    }
    Some(vec![])
}

fn project_push_join(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Project { exprs } = op else {
        return None;
    };
    let child = children[0];
    // All projection expressions must be pure columns for positional
    // pruning.
    let used: Option<Vec<usize>> = exprs
        .iter()
        .map(|(e, _)| match e {
            ScalarExpr::Column(i) => Some(*i),
            _ => None,
        })
        .collect();
    let used = used?;
    let mut out = Vec::new();
    for ce in &memo.group(child).lexprs {
        let LogicalOp::Join {
            kind: JoinKind::Inner,
            on,
            selectivity,
        } = &ce.op
        else {
            continue;
        };
        let (lg, rg) = (ce.children[0], ce.children[1]);
        let (lw, rw) = (width(memo, lg), width(memo, rg));
        // Needed = projected columns plus join keys.
        let mut left_keep: Vec<usize> = Vec::new();
        let mut right_keep: Vec<usize> = Vec::new();
        let mut keep = |c: usize| {
            if c < lw {
                if !left_keep.contains(&c) {
                    left_keep.push(c);
                }
            } else if !right_keep.contains(&(c - lw)) {
                right_keep.push(c - lw);
            }
        };
        for &c in &used {
            keep(c);
        }
        for &(l, r) in on {
            keep(l);
            keep(lw + r);
        }
        left_keep.sort_unstable();
        right_keep.sort_unstable();
        if left_keep.len() == lw && right_keep.len() == rw {
            continue; // nothing to prune
        }
        let lschema = &memo.group(lg).schema;
        let rschema = &memo.group(rg).schema;
        let side_project = |keep: &[usize], schema: &scope_ir::Schema, g: GroupId| {
            Node::Op(
                LogicalOp::Project {
                    exprs: keep
                        .iter()
                        .map(|&c| {
                            (
                                ScalarExpr::Column(c),
                                schema
                                    .column(c)
                                    .map_or_else(|| format!("c{c}"), |col| col.name.to_string()),
                            )
                        })
                        .collect(),
                },
                vec![Node::Group(g)],
            )
        };
        let new_on: Vec<(usize, usize)> = on
            .iter()
            .map(|&(l, r)| {
                (
                    left_keep.iter().position(|&c| c == l).expect("kept"),
                    right_keep.iter().position(|&c| c == r).expect("kept"),
                )
            })
            .collect();
        let remap = |c: usize| {
            if c < lw {
                left_keep.iter().position(|&k| k == c).expect("kept")
            } else {
                left_keep.len() + right_keep.iter().position(|&k| k == c - lw).expect("kept")
            }
        };
        let new_exprs: Vec<(ScalarExpr, String)> = exprs
            .iter()
            .map(|(e, alias)| (e.remap_columns(&remap), alias.clone()))
            .collect();
        out.push(Node::Op(
            LogicalOp::Project { exprs: new_exprs },
            vec![Node::Op(
                LogicalOp::Join {
                    kind: JoinKind::Inner,
                    on: new_on,
                    selectivity: *selectivity,
                },
                vec![
                    side_project(&left_keep, lschema, lg),
                    side_project(&right_keep, rschema, rg),
                ],
            )],
        ));
    }
    Some(out)
}

fn semi_join_reduction(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Join {
        kind: JoinKind::Inner,
        on,
        selectivity,
    } = op
    else {
        return None;
    };
    let (lg, rg) = (children[0], children[1]);
    // Guard: do not re-reduce an already semi-reduced left side.
    let already = memo.group(lg).lexprs.iter().any(|e| {
        matches!(
            e.op,
            LogicalOp::Join {
                kind: JoinKind::LeftSemi,
                ..
            }
        )
    });
    if already {
        return Some(vec![]);
    }
    let r_stats = memo.group(rg).stats;
    // Residual selectivity keeps |out| invariant: the semi-filtered left has
    // l*min(1, sel*r) rows, so the outer join needs sel/min(1, sel*r).
    let residual = |sel: f64, r_rows: f64| {
        let p = (sel * r_rows).clamp(1e-12, 1.0);
        (sel / p).min(1.0)
    };
    let new_sel = DualStats::new(
        residual(selectivity.actual, r_stats.rows.actual),
        residual(selectivity.estimated, r_stats.rows.estimated),
    );
    let semi = Node::Op(
        LogicalOp::Join {
            kind: JoinKind::LeftSemi,
            on: on.clone(),
            selectivity,
        },
        vec![Node::Group(lg), Node::Group(rg)],
    );
    Some(vec![Node::Op(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            on,
            selectivity: new_sel,
        },
        vec![semi, Node::Group(rg)],
    )])
}

fn filter_push_process(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Filter {
        predicate,
        selectivity,
    } = op
    else {
        return None;
    };
    let child = children[0];
    let mut out = Vec::new();
    for ce in &memo.group(child).lexprs {
        let LogicalOp::Process {
            udf,
            cpu_factor,
            out_ratio,
        } = &ce.op
        else {
            continue;
        };
        out.push(Node::Op(
            LogicalOp::Process {
                udf: udf.clone(),
                cpu_factor: *cpu_factor,
                out_ratio: *out_ratio,
            },
            vec![Node::Op(
                LogicalOp::Filter {
                    predicate: predicate.clone(),
                    selectivity,
                },
                vec![Node::Group(ce.children[0])],
            )],
        ));
    }
    Some(out)
}

fn top_push_union(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Top { k, keys } = op else {
        return None;
    };
    let child = children[0];
    let mut out = Vec::new();
    for ce in &memo.group(child).lexprs {
        if !matches!(ce.op, LogicalOp::Union) {
            continue;
        }
        // Guard against unbounded re-application on our own output.
        let child_is_top = ce.children.iter().any(|&c| {
            memo.group(c)
                .lexprs
                .iter()
                .any(|e| matches!(e.op, LogicalOp::Top { .. }))
        });
        if child_is_top {
            continue;
        }
        let branches: Vec<Node> = ce
            .children
            .iter()
            .map(|&c| {
                Node::Op(
                    LogicalOp::Top {
                        k,
                        keys: keys.clone(),
                    },
                    vec![Node::Group(c)],
                )
            })
            .collect();
        out.push(Node::Op(
            LogicalOp::Top {
                k,
                keys: keys.clone(),
            },
            vec![Node::Op(LogicalOp::Union, branches)],
        ));
    }
    Some(out)
}

fn project_through_union(memo: &Memo, gid: GroupId, eidx: usize) -> Option<Vec<Node>> {
    let (op, children) = expr_parts(memo, gid, eidx);
    let LogicalOp::Project { exprs } = op else {
        return None;
    };
    if exprs
        .iter()
        .any(|(e, _)| !matches!(e, ScalarExpr::Column(_)))
    {
        return None;
    }
    let child = children[0];
    let mut out = Vec::new();
    for ce in &memo.group(child).lexprs {
        if !matches!(ce.op, LogicalOp::Union) {
            continue;
        }
        let child_is_project = ce.children.iter().any(|&c| {
            memo.group(c)
                .lexprs
                .iter()
                .any(|e| matches!(e.op, LogicalOp::Project { .. }))
        });
        if child_is_project {
            continue;
        }
        let branches: Vec<Node> = ce
            .children
            .iter()
            .map(|&c| {
                Node::Op(
                    LogicalOp::Project {
                        exprs: exprs.clone(),
                    },
                    vec![Node::Group(c)],
                )
            })
            .collect();
        out.push(Node::Op(LogicalOp::Union, branches));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleBits;
    use scope_ir::expr::{AggExpr, AggFunc};
    use scope_ir::logical::{SortKey, TableRef};
    use scope_ir::schema::{Column, DataType, Schema};

    fn scan(memo: &mut Memo, name: &str, cols: usize, rows: f64) -> GroupId {
        let schema = Schema::new(
            (0..cols)
                .map(|i| Column::new(format!("{name}_{i}"), DataType::Int))
                .collect(),
        );
        memo.intern(
            LogicalOp::Extract {
                table: TableRef::new(name, schema, DualStats::exact(rows)),
            },
            vec![],
            RuleBits::empty(),
        )
    }

    fn filter_over(memo: &mut Memo, g: GroupId, col: usize) -> GroupId {
        memo.intern(
            LogicalOp::Filter {
                predicate: ScalarExpr::binary(
                    BinOp::Gt,
                    ScalarExpr::col(col),
                    ScalarExpr::lit_int(5),
                ),
                selectivity: DualStats::exact(0.3),
            },
            vec![g],
            RuleBits::empty(),
        )
    }

    #[test]
    fn filter_pushes_below_left_join_side() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 100.0);
        let b = scan(&mut memo, "b", 2, 100.0);
        let j = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(0.01),
            },
            vec![a, b],
            RuleBits::empty(),
        );
        let f = filter_over(&mut memo, j, 1); // col 1 is in the left side
        let rewrites = apply_transform(TransformKind::FilterPushJoinLeft, &memo, f, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Join { .. }, children) = &rewrites[0] else {
            panic!()
        };
        assert!(matches!(children[0], Node::Op(LogicalOp::Filter { .. }, _)));
        // Right push should not fire for a left-side column.
        assert!(apply_transform(TransformKind::FilterPushJoinRight, &memo, f, 0).is_empty());
    }

    #[test]
    fn filter_pushes_below_right_join_side_with_remap() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 100.0);
        let b = scan(&mut memo, "b", 2, 100.0);
        let j = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(0.01),
            },
            vec![a, b],
            RuleBits::empty(),
        );
        let f = filter_over(&mut memo, j, 3); // col 3 = right side col 1
        let rewrites = apply_transform(TransformKind::FilterPushJoinRight, &memo, f, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Join { .. }, children) = &rewrites[0] else {
            panic!()
        };
        let Node::Op(LogicalOp::Filter { predicate, .. }, _) = &children[1] else {
            panic!()
        };
        let mut cols = Vec::new();
        predicate.collect_columns(&mut cols);
        assert_eq!(cols, vec![1], "column remapped into right frame");
    }

    #[test]
    fn filter_merge_multiplies_selectivities() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 100.0);
        let f1 = filter_over(&mut memo, a, 0);
        let f2 = memo.intern(
            LogicalOp::Filter {
                predicate: ScalarExpr::binary(
                    BinOp::Lt,
                    ScalarExpr::col(1),
                    ScalarExpr::lit_int(9),
                ),
                selectivity: DualStats::exact(0.5),
            },
            vec![f1],
            RuleBits::empty(),
        );
        let rewrites = apply_transform(TransformKind::FilterMerge, &memo, f2, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Filter { selectivity, .. }, _) = &rewrites[0] else {
            panic!()
        };
        assert!((selectivity.actual - 0.15).abs() < 1e-12);
    }

    #[test]
    fn join_assoc_left_rebalances_and_keeps_output_cardinality() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 1000.0);
        let b = scan(&mut memo, "b", 2, 2000.0);
        let c = scan(&mut memo, "c", 2, 3000.0);
        let ab = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(1e-3),
            },
            vec![a, b],
            RuleBits::empty(),
        );
        let abc = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(2, 0)], // B.col0 (global col 2) vs C.col0
                selectivity: DualStats::exact(1e-4),
            },
            vec![ab, c],
            RuleBits::empty(),
        );
        let original_rows = memo.group(abc).stats.rows.actual;
        let rewrites = apply_transform(TransformKind::JoinAssocLeft, &memo, abc, 0);
        assert_eq!(rewrites.len(), 1);
        // Materialize and verify the new expression lands in an equivalent
        // cardinality.
        let mut memo2 = memo;
        let (op, children) = memo2.materialize(rewrites[0].clone(), RuleBits::empty());
        let idx = memo2
            .add_to_group(abc, op, children, RuleBits::empty(), 16)
            .unwrap();
        let inner_group = memo2.group(abc).lexprs[idx].children[1];
        let inner_rows = memo2.group(inner_group).stats.rows.actual;
        // Inner B⋈C rows = 1e-4 * 2000 * 3000 = 600.
        assert!((inner_rows - 600.0).abs() < 1e-6);
        // New outer cardinality: s1 * |A| * |inner| = 1e-3*1000*600 = 600k?
        // No: group stats are fixed at creation from the original expr; the
        // invariant we check is the formula product equality.
        let s_product = 1e-3 * 1e-4 * 1000.0 * 2000.0 * 3000.0;
        assert!((original_rows - s_product).abs() / s_product < 1e-9);
    }

    #[test]
    fn join_assoc_skips_cross_join_shapes() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 1000.0);
        let b = scan(&mut memo, "b", 2, 2000.0);
        let c = scan(&mut memo, "c", 2, 3000.0);
        let ab = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(1e-3),
            },
            vec![a, b],
            RuleBits::empty(),
        );
        // Top join keys touch only A (col 1 < |A|): B-C would be a cross join.
        let abc = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(1, 0)],
                selectivity: DualStats::exact(1e-4),
            },
            vec![ab, c],
            RuleBits::empty(),
        );
        assert!(apply_transform(TransformKind::JoinAssocLeft, &memo, abc, 0).is_empty());
    }

    #[test]
    fn project_merge_composes_expressions() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 3, 100.0);
        let p1 = memo.intern(
            LogicalOp::Project {
                exprs: vec![
                    (ScalarExpr::col(2), "x".into()),
                    (ScalarExpr::col(0), "y".into()),
                ],
            },
            vec![a],
            RuleBits::empty(),
        );
        let p2 = memo.intern(
            LogicalOp::Project {
                exprs: vec![(ScalarExpr::col(1), "z".into())],
            },
            vec![p1],
            RuleBits::empty(),
        );
        let rewrites = apply_transform(TransformKind::ProjectMerge, &memo, p2, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Project { exprs }, children) = &rewrites[0] else {
            panic!()
        };
        assert_eq!(exprs.len(), 1);
        assert_eq!(exprs[0].0, ScalarExpr::col(0), "z = p1[1] = col 0");
        assert!(matches!(children[0], Node::Group(_)));
    }

    #[test]
    fn semi_join_reduction_builds_semi_then_join() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 100_000.0);
        let b = scan(&mut memo, "b", 2, 100.0);
        let j = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(1e-4),
            },
            vec![a, b],
            RuleBits::empty(),
        );
        let rewrites = apply_transform(TransformKind::SemiJoinReduction, &memo, j, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                ..
            },
            children,
        ) = &rewrites[0]
        else {
            panic!()
        };
        assert!(matches!(
            children[0],
            Node::Op(
                LogicalOp::Join {
                    kind: JoinKind::LeftSemi,
                    ..
                },
                _
            )
        ));
    }

    #[test]
    fn project_push_join_prunes_unused_columns() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 4, 1000.0);
        let b = scan(&mut memo, "b", 4, 1000.0);
        let j = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(1e-3),
            },
            vec![a, b],
            RuleBits::empty(),
        );
        // Keep only left col 1 and right col 6 (= b col 2).
        let p = memo.intern(
            LogicalOp::Project {
                exprs: vec![
                    (ScalarExpr::col(1), "x".into()),
                    (ScalarExpr::col(6), "y".into()),
                ],
            },
            vec![j],
            RuleBits::empty(),
        );
        let rewrites = apply_transform(TransformKind::ProjectPushJoin, &memo, p, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Project { exprs }, children) = &rewrites[0] else {
            panic!()
        };
        // Left keeps {0 (key), 1}; right keeps {0 (key), 2}. Remapped:
        // x = left pos 1; y = 2 + right pos 1 = 3.
        assert_eq!(exprs[0].0, ScalarExpr::col(1));
        assert_eq!(exprs[1].0, ScalarExpr::col(3));
        let Node::Op(LogicalOp::Join { on, .. }, sides) = &children[0] else {
            panic!()
        };
        assert_eq!(on, &vec![(0, 0)]);
        for side in sides {
            let Node::Op(LogicalOp::Project { exprs }, _) = side else {
                panic!()
            };
            assert_eq!(exprs.len(), 2);
        }
    }

    #[test]
    fn top_sort_fuse_removes_inner_sort() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 100.0);
        let s = memo.intern(
            LogicalOp::Sort {
                keys: vec![SortKey::asc(0)],
            },
            vec![a],
            RuleBits::empty(),
        );
        let t = memo.intern(
            LogicalOp::Top {
                k: 5,
                keys: vec![SortKey::asc(0)],
            },
            vec![s],
            RuleBits::empty(),
        );
        let rewrites = apply_transform(TransformKind::TopSortFuse, &memo, t, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Top { .. }, children) = &rewrites[0] else {
            panic!()
        };
        assert!(matches!(children[0], Node::Group(g) if g == a));
    }

    #[test]
    fn filter_push_aggregate_requires_key_columns() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 3, 1000.0);
        let g = memo.intern(
            LogicalOp::Aggregate {
                group_by: vec![2],
                aggs: vec![AggExpr::new(AggFunc::Count, None, "n")],
                group_ratio: DualStats::exact(0.1),
            },
            vec![a],
            RuleBits::empty(),
        );
        // Filter on output col 0 (the group key) -> pushable, remapped to 2.
        let f_ok = filter_over(&mut memo, g, 0);
        let rewrites = apply_transform(TransformKind::FilterPushAggregate, &memo, f_ok, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Aggregate { .. }, children) = &rewrites[0] else {
            panic!()
        };
        let Node::Op(LogicalOp::Filter { predicate, .. }, _) = &children[0] else {
            panic!()
        };
        let mut cols = Vec::new();
        predicate.collect_columns(&mut cols);
        assert_eq!(cols, vec![2]);
        // Filter on the aggregate output (col 1) -> not pushable.
        let f_bad = filter_over(&mut memo, g, 1);
        assert!(apply_transform(TransformKind::FilterPushAggregate, &memo, f_bad, 0).is_empty());
    }

    #[test]
    fn union_flatten_splices_nested_union() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 10.0);
        let b = scan(&mut memo, "b", 2, 10.0);
        let c = scan(&mut memo, "c", 2, 10.0);
        let inner = memo.intern(LogicalOp::Union, vec![a, b], RuleBits::empty());
        let outer = memo.intern(LogicalOp::Union, vec![inner, c], RuleBits::empty());
        let rewrites = apply_transform(TransformKind::UnionFlatten, &memo, outer, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Union, children) = &rewrites[0] else {
            panic!()
        };
        assert_eq!(children.len(), 3);
    }

    #[test]
    fn filter_push_union_replicates_to_branches() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 100.0);
        let b = scan(&mut memo, "b", 2, 100.0);
        let u = memo.intern(LogicalOp::Union, vec![a, b], RuleBits::empty());
        let f = filter_over(&mut memo, u, 0);
        let rewrites = apply_transform(TransformKind::FilterPushUnion, &memo, f, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Union, branches) = &rewrites[0] else {
            panic!()
        };
        assert_eq!(branches.len(), 2);
        for br in branches {
            assert!(matches!(br, Node::Op(LogicalOp::Filter { .. }, _)));
        }
    }

    #[test]
    fn filter_push_sort_commutes() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 100.0);
        let srt = memo.intern(
            LogicalOp::Sort {
                keys: vec![SortKey::asc(1)],
            },
            vec![a],
            RuleBits::empty(),
        );
        let f = filter_over(&mut memo, srt, 0);
        let rewrites = apply_transform(TransformKind::FilterPushSort, &memo, f, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Sort { .. }, children) = &rewrites[0] else {
            panic!()
        };
        assert!(matches!(children[0], Node::Op(LogicalOp::Filter { .. }, _)));
    }

    #[test]
    fn sort_remove_redundant_drops_inner_sort() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 100.0);
        let s1 = memo.intern(
            LogicalOp::Sort {
                keys: vec![SortKey::asc(0)],
            },
            vec![a],
            RuleBits::empty(),
        );
        let s2 = memo.intern(
            LogicalOp::Sort {
                keys: vec![SortKey::desc(1)],
            },
            vec![s1],
            RuleBits::empty(),
        );
        let rewrites = apply_transform(TransformKind::SortRemoveRedundant, &memo, s2, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Sort { keys }, children) = &rewrites[0] else {
            panic!()
        };
        assert!(keys[0].descending, "outer ordering kept");
        assert!(
            matches!(children[0], Node::Group(g) if g == a),
            "inner sort dropped"
        );
    }

    #[test]
    fn join_assoc_right_builds_left_deep_shape() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 1000.0);
        let b = scan(&mut memo, "b", 2, 2000.0);
        let c = scan(&mut memo, "c", 2, 3000.0);
        let bc = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(1e-3),
            },
            vec![b, c],
            RuleBits::empty(),
        );
        // A joins B on col 0 of the right side (which lives in B).
        let abc = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 1)],
                selectivity: DualStats::exact(1e-4),
            },
            vec![a, bc],
            RuleBits::empty(),
        );
        let rewrites = apply_transform(TransformKind::JoinAssocRight, &memo, abc, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Join { on, .. }, children) = &rewrites[0] else {
            panic!()
        };
        // New outer join: (A ⋈ B) vs C with B's original key shifted by |A|.
        assert!(matches!(children[0], Node::Op(LogicalOp::Join { .. }, _)));
        assert!(matches!(children[1], Node::Group(g) if g == c));
        assert!(
            on.iter().all(|&(l, _)| l >= 2),
            "B-side keys shifted by |A|: {on:?}"
        );
    }

    #[test]
    fn filter_push_process_commutes_with_udf() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 100.0);
        let p = memo.intern(
            LogicalOp::Process {
                udf: "Cleanse".into(),
                cpu_factor: 3.0,
                out_ratio: DualStats::exact(1.0),
            },
            vec![a],
            RuleBits::empty(),
        );
        let f = filter_over(&mut memo, p, 1);
        let rewrites = apply_transform(TransformKind::FilterPushProcess, &memo, f, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Process { cpu_factor, .. }, children) = &rewrites[0] else {
            panic!()
        };
        assert_eq!(*cpu_factor, 3.0);
        assert!(matches!(children[0], Node::Op(LogicalOp::Filter { .. }, _)));
    }

    #[test]
    fn top_push_union_adds_per_branch_tops_once() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 1000.0);
        let b = scan(&mut memo, "b", 2, 1000.0);
        let u = memo.intern(LogicalOp::Union, vec![a, b], RuleBits::empty());
        let t = memo.intern(
            LogicalOp::Top {
                k: 10,
                keys: vec![SortKey::desc(1)],
            },
            vec![u],
            RuleBits::empty(),
        );
        let rewrites = apply_transform(TransformKind::TopPushUnion, &memo, t, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Top { .. }, children) = &rewrites[0] else {
            panic!()
        };
        let Node::Op(LogicalOp::Union, branches) = &children[0] else {
            panic!()
        };
        assert!(branches
            .iter()
            .all(|b| matches!(b, Node::Op(LogicalOp::Top { .. }, _))));
        // Guard: materialize the rewrite, then re-application is suppressed
        // (the new union's children already contain Top expressions).
        let prov = RuleBits::empty();
        let (op, ch) = memo.materialize(rewrites[0].clone(), prov);
        memo.add_to_group(t, op, ch, prov, 8).unwrap();
        assert!(apply_transform(TransformKind::TopPushUnion, &memo, t, 1).is_empty());
    }

    #[test]
    fn project_through_union_distributes_pure_columns_only() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 3, 1000.0);
        let b = scan(&mut memo, "b", 3, 1000.0);
        let u = memo.intern(LogicalOp::Union, vec![a, b], RuleBits::empty());
        let pure = memo.intern(
            LogicalOp::Project {
                exprs: vec![(ScalarExpr::col(1), "x".into())],
            },
            vec![u],
            RuleBits::empty(),
        );
        let rewrites = apply_transform(TransformKind::ProjectThroughUnion, &memo, pure, 0);
        assert_eq!(rewrites.len(), 1);
        let Node::Op(LogicalOp::Union, branches) = &rewrites[0] else {
            panic!()
        };
        assert_eq!(branches.len(), 2);
        // Computed projections do not distribute.
        let computed = memo.intern(
            LogicalOp::Project {
                exprs: vec![(
                    ScalarExpr::binary(BinOp::Add, ScalarExpr::col(0), ScalarExpr::col(1)),
                    "s".into(),
                )],
            },
            vec![u],
            RuleBits::empty(),
        );
        assert!(apply_transform(TransformKind::ProjectThroughUnion, &memo, computed, 0).is_empty());
    }

    #[test]
    fn semi_join_reduction_does_not_reapply_to_reduced_side() {
        let mut memo = Memo::new();
        let a = scan(&mut memo, "a", 2, 100_000.0);
        let b = scan(&mut memo, "b", 2, 100.0);
        let j = memo.intern(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                on: vec![(0, 0)],
                selectivity: DualStats::exact(1e-4),
            },
            vec![a, b],
            RuleBits::empty(),
        );
        let rewrites = apply_transform(TransformKind::SemiJoinReduction, &memo, j, 0);
        let prov = RuleBits::empty();
        let (op, ch) = memo.materialize(rewrites[0].clone(), prov);
        let idx = memo.add_to_group(j, op, ch, prov, 8).unwrap();
        // The new expression's left side is the semi-reduced group; the rule
        // must refuse to reduce again.
        assert!(apply_transform(TransformKind::SemiJoinReduction, &memo, j, idx).is_empty());
    }
}

//! Rule configurations: 256-bit vectors of enabled optimizer rules.
//!
//! The SCOPE optimizer has 256 rules; a *rule configuration* decides which
//! are available during optimization. QO-Advisor only ever deploys
//! configurations at edit distance 1 from the default (a single
//! [`RuleFlip`]), which is the paper's central "simplicity first" design
//! decision (§2.4).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Total number of optimizer rules, as in SCOPE (§2.1).
pub const RULE_COUNT: usize = 256;

/// Identifier of one optimizer rule: a bit position in 0..256.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RuleId(pub u16);

impl RuleId {
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{:03}", self.0)
    }
}

/// A fixed 256-bit set over rule ids. Used for both rule *configurations*
/// (which rules may fire) and rule *signatures* (which rules did fire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct RuleBits {
    words: [u64; RULE_COUNT / 64],
}

impl RuleBits {
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    #[must_use]
    pub fn contains(&self, id: RuleId) -> bool {
        let i = id.index();
        debug_assert!(i < RULE_COUNT);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    pub fn insert(&mut self, id: RuleId) {
        let i = id.index();
        debug_assert!(i < RULE_COUNT);
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub fn remove(&mut self, id: RuleId) {
        let i = id.index();
        debug_assert!(i < RULE_COUNT);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    pub fn set(&mut self, id: RuleId, value: bool) {
        if value {
            self.insert(id);
        } else {
            self.remove(id);
        }
    }

    pub fn toggle(&mut self, id: RuleId) {
        let i = id.index();
        self.words[i / 64] ^= 1 << (i % 64);
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The raw bit words (snapshot serialization; `scope-state`).
    #[must_use]
    pub fn words(&self) -> [u64; RULE_COUNT / 64] {
        self.words
    }

    /// Rebuild from raw bit words ([`RuleBits::words`] round-trip).
    #[must_use]
    pub fn from_words(words: [u64; RULE_COUNT / 64]) -> Self {
        Self { words }
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = RuleId> + '_ {
        (0..RULE_COUNT as u16)
            .map(RuleId)
            .filter(move |id| self.contains(*id))
    }

    #[must_use]
    pub fn union(&self, other: &RuleBits) -> RuleBits {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
        RuleBits { words }
    }

    #[must_use]
    pub fn difference(&self, other: &RuleBits) -> RuleBits {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words.iter()) {
            *w &= !o;
        }
        RuleBits { words }
    }

    #[must_use]
    pub fn intersection(&self, other: &RuleBits) -> RuleBits {
        let mut words = self.words;
        for (w, o) in words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
        RuleBits { words }
    }

    /// Stable 64-bit fingerprint of the bit set (used to make experimental-
    /// rule instability configuration-dependent).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xdead_beef_cafe_f00du64;
        for (i, w) in self.words.iter().enumerate() {
            h = scope_ir::ids::mix64(h, w.wrapping_add(i as u64));
        }
        h
    }

    /// Render as the paper's bit-vector notation, lowest rule id first,
    /// truncated to the first `n` bits (e.g. `1100000000`).
    #[must_use]
    pub fn bitstring(&self, n: usize) -> String {
        (0..n.min(RULE_COUNT))
            .map(|i| {
                if self.contains(RuleId(i as u16)) {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }
}

impl FromIterator<RuleId> for RuleBits {
    fn from_iter<T: IntoIterator<Item = RuleId>>(iter: T) -> Self {
        let mut bits = RuleBits::empty();
        for id in iter {
            bits.insert(id);
        }
        bits
    }
}

/// A single rule flip relative to the default configuration: turn `rule` on
/// (`enable == true`) or off. The paper's action space is exactly
/// {no-op} ∪ {one flip in the job span}.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RuleFlip {
    pub rule: RuleId,
    pub enable: bool,
}

impl fmt::Display for RuleFlip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.enable { "+" } else { "-" }, self.rule)
    }
}

/// A rule configuration: the set of rules the optimizer may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RuleConfig {
    bits: RuleBits,
}

impl RuleConfig {
    #[must_use]
    pub fn from_bits(bits: RuleBits) -> Self {
        Self { bits }
    }

    #[must_use]
    pub fn enabled(&self, id: RuleId) -> bool {
        self.bits.contains(id)
    }

    #[must_use]
    pub fn bits(&self) -> &RuleBits {
        &self.bits
    }

    /// Apply one flip, returning the new configuration.
    #[must_use]
    pub fn with_flip(&self, flip: RuleFlip) -> RuleConfig {
        let mut bits = self.bits;
        bits.set(flip.rule, flip.enable);
        RuleConfig { bits }
    }

    /// Apply several flips (used by the Negi-et-al.-2021 baseline which
    /// samples arbitrary configurations over the span).
    #[must_use]
    pub fn with_flips(&self, flips: &[RuleFlip]) -> RuleConfig {
        let mut bits = self.bits;
        for f in flips {
            bits.set(f.rule, f.enable);
        }
        RuleConfig { bits }
    }

    /// The flip that transforms `self` into `other`, if they differ by
    /// exactly one bit.
    #[must_use]
    pub fn single_flip_to(&self, other: &RuleConfig) -> Option<RuleFlip> {
        let mut flip = None;
        for id in (0..RULE_COUNT as u16).map(RuleId) {
            match (self.enabled(id), other.enabled(id)) {
                (false, true) => {
                    if flip.is_some() {
                        return None;
                    }
                    flip = Some(RuleFlip {
                        rule: id,
                        enable: true,
                    });
                }
                (true, false) => {
                    if flip.is_some() {
                        return None;
                    }
                    flip = Some(RuleFlip {
                        rule: id,
                        enable: false,
                    });
                }
                _ => {}
            }
        }
        flip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_insert_remove_contains() {
        let mut b = RuleBits::empty();
        assert!(b.is_empty());
        b.insert(RuleId(0));
        b.insert(RuleId(63));
        b.insert(RuleId(64));
        b.insert(RuleId(255));
        assert_eq!(b.len(), 4);
        assert!(b.contains(RuleId(63)));
        assert!(b.contains(RuleId(64)));
        assert!(!b.contains(RuleId(1)));
        b.remove(RuleId(63));
        assert!(!b.contains(RuleId(63)));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn bitstring_matches_paper_notation() {
        // "if only the first and the second rule were used ... 1100000000"
        let b: RuleBits = [RuleId(0), RuleId(1)].into_iter().collect();
        assert_eq!(b.bitstring(10), "1100000000");
    }

    #[test]
    fn set_operations() {
        let a: RuleBits = [RuleId(1), RuleId(2), RuleId(200)].into_iter().collect();
        let b: RuleBits = [RuleId(2), RuleId(3)].into_iter().collect();
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).len(), 1);
        assert_eq!(a.difference(&b).len(), 2);
        let ids: Vec<u16> = a.iter().map(|r| r.0).collect();
        assert_eq!(ids, vec![1, 2, 200]);
    }

    #[test]
    fn config_flip_roundtrip() {
        let base = RuleConfig::from_bits([RuleId(5)].into_iter().collect());
        let flipped = base.with_flip(RuleFlip {
            rule: RuleId(9),
            enable: true,
        });
        assert!(flipped.enabled(RuleId(9)));
        assert_eq!(
            base.single_flip_to(&flipped),
            Some(RuleFlip {
                rule: RuleId(9),
                enable: true
            })
        );
        assert_eq!(
            flipped.single_flip_to(&base),
            Some(RuleFlip {
                rule: RuleId(9),
                enable: false
            })
        );
        assert_eq!(base.single_flip_to(&base), None);
        // Two flips apart -> not a single flip.
        let two = flipped.with_flip(RuleFlip {
            rule: RuleId(5),
            enable: false,
        });
        assert_eq!(base.single_flip_to(&two), None);
    }

    #[test]
    fn toggle_flips_bit() {
        let mut b = RuleBits::empty();
        b.toggle(RuleId(100));
        assert!(b.contains(RuleId(100)));
        b.toggle(RuleId(100));
        assert!(!b.contains(RuleId(100)));
    }

    #[test]
    fn serde_roundtrip() {
        let b: RuleBits = [RuleId(7), RuleId(70), RuleId(170)].into_iter().collect();
        let json = serde_json::to_string(&b).unwrap();
        let back: RuleBits = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}

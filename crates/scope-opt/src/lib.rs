//! A Cascades-style, budgeted query optimizer for the SCOPE-like engine,
//! with the full machinery the QO-Advisor paper steers:
//!
//! * a **256-rule registry** in the paper's four categories
//!   ([`registry::RuleSet`]);
//! * **rule configurations** as 256-bit vectors and single-rule-flip
//!   steering actions ([`config`]);
//! * a **memo-based search** whose exploration budget, per-group caps, and
//!   promise ordering make it heuristic — and therefore steerable
//!   ([`search::Optimizer`]);
//! * **rule signatures** via provenance tracking (which rules directly
//!   contributed to the chosen plan);
//! * the **job-span fixpoint** heuristic ([`span::compute_span`]);
//! * per-template **compile-time hints** ([`hints::HintSet`]);
//! * a **sharded compile-result cache** exploiting deterministic
//!   compilation, so repeated `(plan, configuration)` compiles — the
//!   pipeline's span/recommendation/flighting recompiles *and* the
//!   production view's daily compiles of recurring scripts — are looked up
//!   instead of re-searched ([`cache::CompileCache`] /
//!   [`cache::CachingOptimizer`], both behind the [`search::Compiler`]
//!   trait);
//! * an **anytime task-queue engine** ([`tasks`]): exploration runs as an
//!   explicit ExploreGroup/ExploreExpr/ApplyRule/ImplementGroup cascade
//!   under a [`tasks::CompileBudget`], so every compile is interruptible —
//!   at budget exhaustion the best plan so far is extracted from the
//!   partial memo and tagged [`tasks::BudgetOutcome::Truncated`]; at
//!   unlimited budget the cascade is byte-identical to the recursive
//!   reference engine ([`search::Optimizer::compile_recursive`]);
//! * **delta treatment compilation** ([`delta`]): a plan's default
//!   compilation is frozen as a shareable [`delta::BaseMemo`], and each
//!   rule-flip treatment is priced as an incremental pass over it
//!   (re-implementing only the groups the flip touches, replaying provable
//!   no-ops) — byte-identical to from-scratch compiles, and the engine
//!   behind [`search::Compiler::compile_slate`];
//! * a cost model that prices plans from *estimated* statistics and
//!   *claimed* tuning only, reproducing SCOPE's estimated-vs-real divergence
//!   ([`cost::CostModel`]).
//!
//! # Quick start
//!
//! ```
//! use scope_lang::{bind_script, Catalog};
//! use scope_opt::Optimizer;
//!
//! let plan = bind_script(
//!     r#"
//!     d = EXTRACT k:int, v:float FROM "data/t";
//!     f = SELECT k, v FROM d WHERE v > 10;
//!     a = SELECT k, SUM(v) AS s FROM f GROUP BY k;
//!     OUTPUT a TO "out/a";
//! "#,
//!     &Catalog::default(),
//! )
//! .unwrap();
//! let optimizer = Optimizer::default();
//! let compiled = optimizer.compile(&plan, &optimizer.default_config()).unwrap();
//! assert!(compiled.est_cost > 0.0);
//! assert!(!compiled.signature.is_empty());
//! ```

pub mod cache;
pub mod config;
pub mod cost;
pub mod delta;
pub mod hints;
pub mod impls;
pub mod memo;
pub mod registry;
pub mod rules;
pub mod search;
pub mod span;
pub mod tasks;

pub use cache::{BudgetedCompiler, CacheConfig, CacheStats, CachingOptimizer, CompileCache};
pub use config::{RuleBits, RuleConfig, RuleFlip, RuleId, RULE_COUNT};
pub use cost::CostModel;
pub use delta::{BaseMemo, DeltaCompiler, DeltaConfig, DeltaStats, PricedTreatment};
pub use hints::{Hint, HintSet};
pub use registry::{RuleCategory, RuleDef, RuleSet};
pub use search::{CompileError, Compiled, Compiler, Optimizer, SearchOptions};
pub use span::{compute_span, SpanResult};
pub use tasks::{BudgetCounters, BudgetOutcome, BudgetStats, BudgetedCompile, CompileBudget};
